//! TC-GNN edge-feature computation — Algorithm 3 / Listing 3 of the paper.
//!
//! Reuses the *same* SGT translation as SpMM. The sparse tile is now the
//! `16×16` **output** of the MMA (so two SpMM-width block columns fuse into
//! one SDDMM block, Listing 3 line 9), `sparse_A` stores *edge indices*
//! rather than values, and the kernel iterates along the embedding
//! dimension in `K = 8` slabs, accumulating `X · Yᵀ` before a final
//! dense-to-sparse conversion writes each edge's scalar back to
//! `edgeValList`.

use tcg_gpusim::wmma::{
    mma_sync, FragmentA, FragmentAcc, FragmentB, FRAG_A_SMEM_TRANSACTIONS,
    FRAG_B_SMEM_TRANSACTIONS, WMMA_K, WMMA_N,
};
use tcg_gpusim::{GridConfig, KernelReport, Launcher};
use tcg_graph::CsrGraph;
use tcg_sgt::{Sgt, TranslatedGraph, TC_BLK_H};
use tcg_tensor::DenseMatrix;

use crate::common::TcgError;
use crate::sddmm::SddmmKernel;

/// The TC-GNN SDDMM kernel, bound to a translated graph.
#[derive(Debug, Clone)]
pub struct TcgnnSddmm {
    translated: TranslatedGraph,
}

impl TcgnnSddmm {
    /// Builds the kernel by running SGT on `csr`.
    pub fn new(csr: &CsrGraph) -> Self {
        TcgnnSddmm {
            translated: Sgt::builder()
                .translate(csr)
                .expect("default SGT geometry is valid"),
        }
    }

    /// Builds the kernel from a pre-computed translation (shared with the
    /// SpMM kernel — SGT runs once per graph).
    pub fn from_translated(translated: TranslatedGraph) -> Self {
        TcgnnSddmm { translated }
    }

    /// The translation this kernel runs over.
    pub fn translated(&self) -> &TranslatedGraph {
        &self.translated
    }
}

impl SddmmKernel for TcgnnSddmm {
    fn name(&self) -> &'static str {
        "tc-gnn-sddmm"
    }

    fn execute(
        &self,
        launcher: &mut Launcher,
        csr: &CsrGraph,
        xa: &DenseMatrix,
        xb: &DenseMatrix,
    ) -> Result<(Vec<f32>, KernelReport), TcgError> {
        let t = &self.translated;
        if t.edge_to_col.len() != csr.num_edges() {
            return Err(TcgError::DimMismatch {
                what: "translation edge count vs graph",
                expected: csr.num_edges(),
                actual: t.edge_to_col.len(),
            });
        }
        if xa.rows() != csr.num_nodes() || xb.rows() != csr.num_nodes() {
            return Err(TcgError::DimMismatch {
                what: "feature rows vs graph nodes",
                expected: csr.num_nodes(),
                actual: xa.rows().min(xb.rows()),
            });
        }
        if xa.cols() != xb.cols() {
            return Err(TcgError::DimMismatch {
                what: "xa cols vs xb cols",
                expected: xa.cols(),
                actual: xb.cols(),
            });
        }
        let n = csr.num_nodes();
        let d = xa.cols();
        let dim_iterations = d.div_ceil(WMMA_K);
        let mut out = vec![0.0f32; csr.num_edges()];

        let buf_ptr = launcher.try_alloc(csr.node_pointer().len() * 8)?;
        let buf_pack = launcher.try_alloc(csr.num_edges())?;
        let buf_atox = launcher.try_alloc(t.block_atox.len() * 4)?;
        let buf_porig = launcher.try_alloc(csr.num_edges() * 4)?;
        let buf_xa = launcher.try_alloc_f32(xa.len())?;
        let buf_xb = launcher.try_alloc_f32(xb.len())?;
        let buf_out = launcher.try_alloc_f32(csr.num_edges())?;

        // Listing 3 shared layout: sparse_A 16×16 (edge ids), AToX 16,
        // dense_X 16×8, dense_Y 8×16.
        let smem_bytes = (TC_BLK_H * TC_BLK_H + TC_BLK_H) * 4 + 2 * (TC_BLK_H * WMMA_K) * 4;
        let cfg = GridConfig {
            block_size: 128,
            shared_mem_bytes: smem_bytes,
            regs_per_thread: 72,
        };

        const SDDMM_W: usize = TC_BLK_H; // 16 condensed columns per block

        // A window's edges are exactly its rows' CSR edges — the contiguous
        // range [ptr[row_lo], ptr[row_hi]) — so blocks write disjoint output
        // slices and the body runs on the parallel path.
        let out_slices = tcg_gpusim::DisjointSlices::new(&mut out);

        launcher.preflight("tc-gnn-sddmm", &cfg)?;
        let stats = launcher.launch_par(cfg, t.num_row_windows as u64, |ctx| {
            let w = ctx.block_id as usize;
            // Listing 3 line 9: SDDMM block count from the SpMM partition.
            let num_tc_blocks = (t.win_partition[w] as usize * t.blk_w).div_ceil(SDDMM_W);
            if num_tc_blocks == 0 {
                return;
            }
            let row_lo = w * TC_BLK_H;
            let row_hi = (row_lo + TC_BLK_H).min(n);
            ctx.ld_global_scalar(buf_ptr.addr(row_lo, 8));
            ctx.ld_global_scalar(buf_ptr.addr(row_hi, 8));
            let b_lo = t.win_block_start[w];
            let b_hi = t.win_block_start[w + 1];

            // Per-block scratch (bodies run concurrently on the parallel
            // path, so nothing mutable is captured from the outer scope).
            let mut edge_map = vec![usize::MAX; TC_BLK_H * SDDMM_W];
            let mut atox = [u32::MAX; SDDMM_W];
            let mut a_tile = vec![0.0f32; TC_BLK_H * WMMA_K];
            let mut b_tile = vec![0.0f32; WMMA_K * WMMA_N];
            let mut store_addrs: Vec<u64> = Vec::with_capacity(64);
            let e_lo = csr.node_pointer()[row_lo];
            let e_hi = csr.node_pointer()[row_hi];
            // SAFETY: window `w` owns the edge range [e_lo, e_hi) exclusively.
            let out_win = unsafe { out_slices.range_mut(e_lo, e_hi - e_lo) };

            for i in 0..num_tc_blocks {
                // Stage sparse_A (edge-index map) + AToX for this 16-wide
                // condensed column frame: the frame fuses two SpMM-width
                // chunks, which are adjacent in the sorted permutation
                // (Algorithm 3's GetChunk over the reused translation).
                let cb_lo = b_lo + 2 * i;
                let cb_hi = (cb_lo + 2).min(b_hi);
                let c_lo = t.block_ptr[cb_lo];
                let c_hi = t.block_ptr[cb_hi];
                let chunk = c_hi - c_lo;
                // Packed coordinates (1 B/nnz), original edge ids (for the
                // sparse output scatter), and per-block AToX lists.
                ctx.ld_global_contiguous(buf_pack.addr(c_lo, 1), chunk, 1);
                ctx.ld_global_contiguous(buf_porig.addr(c_lo, 4), chunk, 4);
                ctx.ld_global_contiguous(
                    buf_atox.addr(t.block_atox_ptr[cb_lo], 4),
                    t.block_atox_ptr[cb_hi] - t.block_atox_ptr[cb_lo],
                    4,
                );
                edge_map.iter_mut().for_each(|v| *v = usize::MAX);
                atox.iter_mut().for_each(|v| *v = u32::MAX);
                let nnz_blk = chunk as u64;
                for (half, cb) in (cb_lo..cb_hi).enumerate() {
                    let (h_lo, h_hi) = t.block_chunk(cb);
                    for pos in h_lo..h_hi {
                        let (r, c8) = t.unpack(t.perm_pack[pos]);
                        let c = c8 + half * t.blk_w;
                        edge_map[r * SDDMM_W + c] = t.perm_orig[pos] as usize;
                    }
                    for (c8, &nid) in t.block_atox(cb).iter().enumerate() {
                        if nid != u32::MAX {
                            atox[c8 + half * t.blk_w] = nid;
                        }
                    }
                }
                ctx.shared_access(((TC_BLK_H * SDDMM_W) as u64).div_ceil(32));
                ctx.shared_access(nnz_blk.div_ceil(32).max(1));
                ctx.shared_access(1);

                let mut acc = FragmentAcc::default();
                for di in 0..dim_iterations {
                    let dim0 = di * WMMA_K;
                    let kw = (d - dim0).min(WMMA_K);

                    // dense_X: the window's own rows (contiguous block of X).
                    let x_bases: Vec<u64> = (row_lo..row_hi)
                        .map(|r| buf_xa.f32_addr(r * d + dim0))
                        .collect();
                    ctx.ld_global_gather_rows(&x_bases, kw, 4);
                    ctx.shared_access(((TC_BLK_H * WMMA_K) as u64).div_ceil(32));
                    a_tile.iter_mut().for_each(|v| *v = 0.0);
                    for (ri, r) in (row_lo..row_hi).enumerate() {
                        let xr = xa.row(r);
                        for k in 0..kw {
                            a_tile[ri * WMMA_K + k] = xr[dim0 + k];
                        }
                    }

                    // dense_Y: the frame's condensed neighbors (gather).
                    let y_bases: Vec<u64> = atox
                        .iter()
                        .filter(|&&u| u != u32::MAX)
                        .map(|&u| buf_xb.f32_addr(u as usize * d + dim0))
                        .collect();
                    ctx.ld_global_gather_rows(&y_bases, kw, 4);
                    ctx.shared_access(((WMMA_K * TC_BLK_H) as u64).div_ceil(32));
                    b_tile.iter_mut().for_each(|v| *v = 0.0);
                    for (c, &u) in atox.iter().enumerate() {
                        if u == u32::MAX {
                            continue;
                        }
                        let yr = xb.row(u as usize);
                        for k in 0..kw {
                            b_tile[k * WMMA_N + c] = yr[dim0 + k];
                        }
                    }

                    let mut fa = FragmentA::default();
                    let mut fb = FragmentB::default();
                    fa.load(&a_tile, WMMA_K);
                    fb.load(&b_tile, WMMA_N);
                    ctx.shared_access(FRAG_A_SMEM_TRANSACTIONS + FRAG_B_SMEM_TRANSACTIONS);
                    mma_sync(&mut acc, &fa, &fb, ctx);
                }

                // Dense-to-sparse conversion: scatter edge scalars.
                store_addrs.clear();
                for r in 0..TC_BLK_H {
                    for c in 0..SDDMM_W {
                        let e = edge_map[r * SDDMM_W + c];
                        if e != usize::MAX {
                            out_win[e - e_lo] = acc.get(r, c);
                            store_addrs.push(buf_out.f32_addr(e));
                        }
                    }
                }
                for chunk in store_addrs.chunks(32) {
                    ctx.st_global_warp(chunk);
                }
            }
            ctx.syncthreads();
        });
        let report = tcg_gpusim::cost::analyze(launcher.device(), &stats);
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::reference_sddmm;
    use crate::sddmm::cuda_core::CudaCoreSddmm;
    use tcg_graph::gen;
    use tcg_tensor::init;

    fn check(g: &CsrGraph, x: &DenseMatrix, tol: f32) -> KernelReport {
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (vals, report) = TcgnnSddmm::new(g).execute(&mut l, g, x, x).unwrap();
        let reference = reference_sddmm(g, x, x);
        for (i, (a, b)) in vals.iter().zip(&reference).enumerate() {
            assert!((a - b).abs() < tol, "edge {i}: {a} vs {b}");
        }
        report
    }

    #[test]
    fn matches_reference_basic() {
        let g = gen::rmat_default(300, 2500, 1).unwrap();
        let x = init::uniform(300, 16, -1.0, 1.0, 2);
        let report = check(&g, &x, 0.05);
        assert!(report.stats.tcu_mma_instructions > 0);
    }

    #[test]
    fn matches_reference_non_multiple_dims() {
        // d = 13 exercises the ragged final K slab.
        let g = gen::citation(200, 1500, 3).unwrap();
        let x = init::uniform(200, 13, -1.0, 1.0, 4);
        check(&g, &x, 0.05);
    }

    #[test]
    fn matches_reference_wide_dims() {
        let g = gen::erdos_renyi(150, 1200, 5).unwrap();
        let x = init::uniform(150, 64, -1.0, 1.0, 6);
        check(&g, &x, 0.2);
    }

    #[test]
    fn mma_count_uses_fused_blocks() {
        let g = gen::rmat_default(1024, 8000, 7).unwrap();
        let x = init::uniform(1024, 32, -1.0, 1.0, 8);
        let kernel = TcgnnSddmm::new(&g);
        let expected = kernel.translated().total_sddmm_blocks() * (32 / WMMA_K) as u64;
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (_, report) = kernel.execute(&mut l, &g, &x, &x).unwrap();
        assert_eq!(report.stats.tcu_mma_instructions, expected);
    }

    #[test]
    fn faster_than_cuda_core_when_neighbors_are_shared() {
        // SGT condenses shared neighbors; dense intra-window communities are
        // where the TCU formulation pays off (the paper's Type II/III
        // datasets all have strong clustering).
        let g = gen::community(20_000, 400_000, 16, 48, 9).unwrap();
        let x = init::uniform(20_000, 32, -1.0, 1.0, 10);
        let mut l1 = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (_, r_tc) = TcgnnSddmm::new(&g).execute(&mut l1, &g, &x, &x).unwrap();
        let mut l2 = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (_, r_cc) = CudaCoreSddmm.execute(&mut l2, &g, &x, &x).unwrap();
        assert!(
            r_tc.time_ms < r_cc.time_ms,
            "TC-GNN SDDMM {} ms vs CUDA core {} ms",
            r_tc.time_ms,
            r_cc.time_ms
        );
    }

    #[test]
    fn competitive_with_cuda_core_on_scattered_graph() {
        // With little intra-window sharing the two formulations move similar
        // bytes; TC-GNN must at least not lose badly.
        let g = gen::rmat_default(8192, 80_000, 9).unwrap();
        let x = init::uniform(8192, 32, -1.0, 1.0, 10);
        let mut l1 = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (_, r_tc) = TcgnnSddmm::new(&g).execute(&mut l1, &g, &x, &x).unwrap();
        let mut l2 = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (_, r_cc) = CudaCoreSddmm.execute(&mut l2, &g, &x, &x).unwrap();
        assert!(r_tc.time_ms < 1.3 * r_cc.time_ms);
    }

    #[test]
    fn rejects_mismatched_inputs() {
        let g1 = gen::erdos_renyi(100, 800, 11).unwrap();
        let g2 = gen::erdos_renyi(100, 700, 12).unwrap();
        let x = init::uniform(100, 8, -1.0, 1.0, 13);
        let kernel = TcgnnSddmm::new(&g1);
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        assert!(kernel.execute(&mut l, &g2, &x, &x).is_err());
        let x_bad = init::uniform(99, 8, -1.0, 1.0, 14);
        assert!(kernel.execute(&mut l, &g1, &x_bad, &x_bad).is_err());
    }
}
