//! Per-edge SDDMM on CUDA cores — the DGL/cuSPARSE-class baseline.
//!
//! One warp per row: for each outgoing edge the warp loads the source row
//! (reused across the row's edges via L1) and the destination row
//! (scattered gather), multiplies element-wise and tree-reduces. This is
//! the "much more intensive computations and memory access" pattern the
//! paper says makes SDDMM especially sensitive to graph irregularity.

use tcg_gpusim::{GridConfig, KernelReport, Launcher};
use tcg_graph::CsrGraph;
use tcg_tensor::DenseMatrix;

use crate::common::TcgError;
use crate::sddmm::SddmmKernel;

/// CUDA-core per-edge SDDMM.
#[derive(Debug, Clone, Default)]
pub struct CudaCoreSddmm;

/// Rows per thread block (4 warps × 1 row).
const ROWS_PER_BLOCK: usize = 4;

impl SddmmKernel for CudaCoreSddmm {
    fn name(&self) -> &'static str {
        "cuda-core-sddmm"
    }

    fn execute(
        &self,
        launcher: &mut Launcher,
        csr: &CsrGraph,
        xa: &DenseMatrix,
        xb: &DenseMatrix,
    ) -> Result<(Vec<f32>, KernelReport), TcgError> {
        if xa.rows() != csr.num_nodes() || xb.rows() != csr.num_nodes() {
            return Err(TcgError::DimMismatch {
                what: "feature rows vs graph nodes",
                expected: csr.num_nodes(),
                actual: xa.rows().min(xb.rows()),
            });
        }
        if xa.cols() != xb.cols() {
            return Err(TcgError::DimMismatch {
                what: "xa cols vs xb cols",
                expected: xa.cols(),
                actual: xb.cols(),
            });
        }
        let n = csr.num_nodes();
        let d = xa.cols();
        let mut out = vec![0.0f32; csr.num_edges()];

        let buf_ptr = launcher.try_alloc(csr.node_pointer().len() * 8)?;
        let buf_edges = launcher.try_alloc(csr.num_edges() * 4)?;
        let buf_xa = launcher.try_alloc_f32(xa.len())?;
        let buf_xb = launcher.try_alloc_f32(xb.len())?;
        let buf_out = launcher.try_alloc_f32(csr.num_edges())?;

        let num_blocks = n.div_ceil(ROWS_PER_BLOCK) as u64;
        let cfg = GridConfig {
            block_size: (ROWS_PER_BLOCK * 32) as u32,
            shared_mem_bytes: 0,
            regs_per_thread: 40,
        };

        // Each block's rows own the contiguous edge range
        // [ptr[row0], ptr[row1]): disjoint output slices across blocks.
        let out_slices = tcg_gpusim::DisjointSlices::new(&mut out);
        launcher.preflight("cuda-core-sddmm", &cfg)?;
        let stats = launcher.launch_par(cfg, num_blocks, |ctx| {
            let mut bases: Vec<u64> = Vec::with_capacity(64);
            let row0 = ctx.block_id as usize * ROWS_PER_BLOCK;
            let row1 = (row0 + ROWS_PER_BLOCK).min(n);
            for v in row0..row1 {
                let lo = csr.node_pointer()[v];
                let hi = csr.node_pointer()[v + 1];
                ctx.ld_global_scalar(buf_ptr.addr(v, 8));
                ctx.ld_global_scalar(buf_ptr.addr(v + 1, 8));
                if hi == lo {
                    continue;
                }
                ctx.ld_global_contiguous(buf_edges.addr(lo, 4), hi - lo, 4);
                // Source row: loaded once, reused per edge via registers.
                ctx.ld_global_contiguous(buf_xa.f32_addr(v * d), d, 4);
                // Destination rows: scattered gather.
                bases.clear();
                bases.extend(
                    csr.neighbors(v)
                        .iter()
                        .map(|&u| buf_xb.f32_addr(u as usize * d)),
                );
                ctx.ld_global_gather_rows(&bases, d, 4);
                // Multiply + warp tree reduction per edge: the dot product
                // needs log2(lanes) shuffle steps per edge, unavoidable in
                // the per-edge formulation.
                let deg = hi - lo;
                ctx.fma_warps(((deg * d) as u64).div_ceil(32));
                let shuffle_steps = (d.min(32) as f64).log2().ceil() as u64;
                ctx.fp32_warps(deg as u64 * shuffle_steps.max(1));
                // Scattered-ish store of edge values (contiguous per row).
                ctx.st_global_contiguous(buf_out.f32_addr(lo), deg, 4);

                let xrow = xa.row(v);
                // SAFETY: row `v`'s edge slice belongs to this block alone.
                let orow = unsafe { out_slices.range_mut(lo, hi - lo) };
                for (i, &u) in csr.neighbors(v).iter().enumerate() {
                    let urow = xb.row(u as usize);
                    let mut s = 0.0f32;
                    for (a, b) in xrow.iter().zip(urow) {
                        s += a * b;
                    }
                    orow[i] = s;
                }
            }
        });
        let report = tcg_gpusim::cost::analyze(launcher.device(), &stats);
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::reference_sddmm;
    use tcg_graph::gen;
    use tcg_tensor::init;

    #[test]
    fn matches_reference() {
        let g = gen::rmat_default(400, 3500, 1).unwrap();
        let x = init::uniform(400, 24, -1.0, 1.0, 2);
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (vals, report) = CudaCoreSddmm.execute(&mut l, &g, &x, &x).unwrap();
        let reference = reference_sddmm(&g, &x, &x);
        for (a, b) in vals.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        assert_eq!(report.stats.tcu_flops, 0);
    }

    #[test]
    fn rejects_wrong_feature_rows() {
        let g = gen::erdos_renyi(50, 300, 3).unwrap();
        let x = init::uniform(49, 8, -1.0, 1.0, 4);
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        assert!(CudaCoreSddmm.execute(&mut l, &g, &x, &x).is_err());
    }
}
