//! Edge-feature computation (SDDMM) kernels.

pub mod cuda_core;
pub mod hybrid;
pub mod tcgnn;

pub use cuda_core::CudaCoreSddmm;
pub use hybrid::HybridSddmm;
pub use tcgnn::TcgnnSddmm;

use tcg_gpusim::{KernelReport, Launcher};
use tcg_graph::CsrGraph;
use tcg_tensor::DenseMatrix;

use crate::common::TcgError;

/// An SDDMM kernel: computes `f[e] = xa[src(e)] · xb[dst(e)]` for every
/// edge (the paper's Equation 3 without the optional post-scaling; with
/// `xa == xb` this is exactly `X·Xᵀ ⊙ A`), returning values in `edge_list`
/// order plus the simulated report. The two-operand form is what backward
/// passes need (`dP = (dY · Xᵀ) ⊙ A`).
pub trait SddmmKernel {
    /// Kernel name for report tables.
    fn name(&self) -> &'static str;

    /// Executes the kernel on the simulated device.
    fn execute(
        &self,
        launcher: &mut Launcher,
        csr: &CsrGraph,
        xa: &DenseMatrix,
        xb: &DenseMatrix,
    ) -> Result<(Vec<f32>, KernelReport), TcgError>;
}
