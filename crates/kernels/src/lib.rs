//! GPU kernels for sparse GNN computation, on the simulated device.
//!
//! This crate contains the paper's contribution — the TC-GNN neighbor
//! aggregation ([`spmm::tcgnn`], Algorithm 2 / Listing 2) and edge-feature
//! computation ([`sddmm::tcgnn`], Algorithm 3 / Listing 3) kernels running
//! on simulated tensor cores — *and* every baseline its evaluation compares
//! against:
//!
//! | Paper baseline            | Module                      |
//! |---------------------------|-----------------------------|
//! | cuSPARSE CSR SpMM (DGL)   | [`spmm::cusparse`]          |
//! | GE-SpMM                   | [`spmm::gespmm`]            |
//! | torch-scatter (PyG)       | [`spmm::scatter`]           |
//! | Dense GEMM (cuBLAS)       | [`spmm::dense`]             |
//! | cuSPARSE Blocked-ELL      | [`spmm::bspmm`]             |
//! | tSparse                   | [`spmm::tsparse`]           |
//! | Triton block-sparse       | [`spmm::triton`]            |
//! | per-edge SDDMM (DGL)      | [`sddmm::cuda_core`]        |
//!
//! Every kernel executes *functionally* (tests compare its output against
//! the CPU references in [`common`]) while charging the gpusim cost model,
//! so each returns both a result matrix and a [`tcg_gpusim::KernelReport`].

pub mod common;
pub mod fused;
pub mod hybrid;
pub mod sddmm;
pub mod softmax;
pub mod spmm;

pub use common::{reference_sddmm, reference_spmm, KernelError, SpmmProblem, TcgError};
pub use hybrid::{render_mask, DispatchPolicy, KernelClass, WindowBackend, WindowGeometry};
