//! Shared problem types, CPU references and the kernel trait.

use std::fmt;

use tcg_gpusim::{KernelReport, Launcher};
use tcg_graph::CsrGraph;
use tcg_tensor::DenseMatrix;

pub use tcg_fault::TcgError;

/// One neighbor-aggregation problem instance: `X̂ = (F ⊙ A) · X`.
///
/// `edge_values` (the paper's **F**, aligned with `csr.edge_list()` order)
/// is `None` for plain adjacency aggregation (GCN-style with external
/// normalization) and `Some` for weighted aggregation (AGNN attention).
#[derive(Clone, Copy)]
pub struct SpmmProblem<'a> {
    /// Adjacency in CSR.
    pub csr: &'a CsrGraph,
    /// Optional per-edge multipliers aligned with `csr.edge_list()`.
    pub edge_values: Option<&'a [f32]>,
    /// Dense node matrix `N × D`.
    pub x: &'a DenseMatrix,
}

impl<'a> SpmmProblem<'a> {
    /// Creates a problem, validating dimensions.
    pub fn new(
        csr: &'a CsrGraph,
        edge_values: Option<&'a [f32]>,
        x: &'a DenseMatrix,
    ) -> Result<Self, KernelError> {
        if x.rows() != csr.num_nodes() {
            return Err(KernelError::DimMismatch {
                what: "x rows vs graph nodes",
                expected: csr.num_nodes(),
                actual: x.rows(),
            });
        }
        if let Some(v) = edge_values {
            if v.len() != csr.num_edges() {
                return Err(KernelError::DimMismatch {
                    what: "edge value count vs edges",
                    expected: csr.num_edges(),
                    actual: v.len(),
                });
            }
        }
        Ok(SpmmProblem {
            csr,
            edge_values,
            x,
        })
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.x.cols()
    }

    /// The multiplier of edge `e` (1.0 when unweighted).
    #[inline]
    pub fn value(&self, e: usize) -> f32 {
        self.edge_values.map_or(1.0, |v| v[e])
    }
}

/// Errors from kernel setup or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// Operand dimensions disagree.
    DimMismatch {
        /// What was compared.
        what: &'static str,
        /// Expected size.
        expected: usize,
        /// Actual size.
        actual: usize,
    },
    /// The kernel's working set exceeds device memory (dense-GEMM baseline
    /// on large graphs — the Table 2 failure mode).
    MemoryExceeded {
        /// Bytes the kernel would need.
        required_bytes: u128,
        /// Device capacity used for the check.
        capacity_bytes: u128,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::DimMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch ({what}): expected {expected}, got {actual}"
            ),
            KernelError::MemoryExceeded {
                required_bytes,
                capacity_bytes,
            } => write!(
                f,
                "working set of {required_bytes} bytes exceeds device capacity {capacity_bytes}"
            ),
        }
    }
}

impl std::error::Error for KernelError {}

/// Kernel setup errors fold into the unified taxonomy, so `?` composes
/// `SpmmProblem::new` with the fault-aware launcher calls.
impl From<KernelError> for TcgError {
    fn from(e: KernelError) -> Self {
        match e {
            KernelError::DimMismatch {
                what,
                expected,
                actual,
            } => TcgError::DimMismatch {
                what,
                expected,
                actual,
            },
            KernelError::MemoryExceeded {
                required_bytes,
                capacity_bytes,
            } => TcgError::MemoryExceeded {
                required_bytes,
                capacity_bytes,
            },
        }
    }
}

/// A neighbor-aggregation kernel: takes the problem, returns the aggregated
/// matrix and the simulated performance report.
pub trait SpmmKernel {
    /// Kernel name for report tables.
    fn name(&self) -> &'static str;

    /// Executes the kernel on the simulated device. Besides the setup
    /// errors, any device fault injected by the launcher's
    /// [`tcg_fault::FaultPlan`] surfaces here as its [`TcgError`] variant.
    fn execute(
        &self,
        launcher: &mut Launcher,
        prob: &SpmmProblem<'_>,
    ) -> Result<(DenseMatrix, KernelReport), TcgError>;
}

/// CPU reference SpMM: `out[v] = Σ_{u ∈ N(v)} w(v,u) · x[u]`, f64-accumulated.
pub fn reference_spmm(prob: &SpmmProblem<'_>) -> DenseMatrix {
    let n = prob.csr.num_nodes();
    let d = prob.dim();
    let mut out = DenseMatrix::zeros(n, d);
    let mut acc = vec![0.0f64; d];
    for v in 0..n {
        acc.iter_mut().for_each(|a| *a = 0.0);
        let lo = prob.csr.node_pointer()[v];
        for (i, &u) in prob.csr.neighbors(v).iter().enumerate() {
            let w = prob.value(lo + i) as f64;
            let row = prob.x.row(u as usize);
            for (a, &xv) in acc.iter_mut().zip(row) {
                *a += w * xv as f64;
            }
        }
        for (o, &a) in out.row_mut(v).iter_mut().zip(acc.iter()) {
            *o = a as f32;
        }
    }
    out
}

/// CPU reference SDDMM: `f[e] = x[src(e)] · x_b[dst(e)]` for every edge,
/// f64-accumulated, in `edge_list` order.
pub fn reference_sddmm(csr: &CsrGraph, xa: &DenseMatrix, xb: &DenseMatrix) -> Vec<f32> {
    let mut out = Vec::with_capacity(csr.num_edges());
    for v in 0..csr.num_nodes() {
        let arow = xa.row(v);
        for &u in csr.neighbors(v) {
            let brow = xb.row(u as usize);
            let s: f64 = arow
                .iter()
                .zip(brow)
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum();
            out.push(s as f32);
        }
    }
    out
}

/// Tolerance for comparing a TF-32 kernel against the f64 reference, scaled
/// by reduction length and value magnitude.
pub fn kernel_tolerance(max_degree: usize, dim: usize, magnitude: f32) -> f32 {
    let k = max_degree.max(dim).max(1);
    tcg_tensor::tf32::tf32_rel_tolerance(k) * magnitude.max(1.0) * 8.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcg_graph::gen;
    use tcg_tensor::init;

    #[test]
    fn problem_validates_dims() {
        let g = gen::erdos_renyi(50, 300, 1).unwrap();
        let x_ok = DenseMatrix::zeros(50, 8);
        let x_bad = DenseMatrix::zeros(49, 8);
        assert!(SpmmProblem::new(&g, None, &x_ok).is_ok());
        assert!(SpmmProblem::new(&g, None, &x_bad).is_err());
        let vals = vec![1.0; g.num_edges() + 1];
        assert!(SpmmProblem::new(&g, Some(&vals), &x_ok).is_err());
    }

    #[test]
    fn reference_spmm_identity_weights() {
        // Path graph 0-1-2; X = identity-ish rows.
        let g = CsrGraph::from_raw(3, vec![0, 1, 3, 4], vec![1, 0, 2, 1]).unwrap();
        let x = DenseMatrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 2.0, 2.0]).unwrap();
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let out = reference_spmm(&prob);
        // Row 0 = x[1]; row 1 = x[0] + x[2]; row 2 = x[1].
        assert_eq!(out.row(0), &[0.0, 1.0]);
        assert_eq!(out.row(1), &[3.0, 2.0]);
        assert_eq!(out.row(2), &[0.0, 1.0]);
    }

    #[test]
    fn reference_spmm_respects_edge_values() {
        let g = CsrGraph::from_raw(2, vec![0, 1, 2], vec![1, 0]).unwrap();
        let x = DenseMatrix::from_vec(2, 1, vec![3.0, 5.0]).unwrap();
        let vals = vec![2.0, 10.0];
        let prob = SpmmProblem::new(&g, Some(&vals), &x).unwrap();
        let out = reference_spmm(&prob);
        assert_eq!(out.get(0, 0), 10.0); // 2 * x[1]
        assert_eq!(out.get(1, 0), 30.0); // 10 * x[0]
    }

    #[test]
    fn reference_sddmm_simple_dots() {
        let g = CsrGraph::from_raw(2, vec![0, 1, 2], vec![1, 0]).unwrap();
        let x = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let f = reference_sddmm(&g, &x, &x);
        // Edge (0,1): 1*3+2*4 = 11; edge (1,0): same by symmetry.
        assert_eq!(f, vec![11.0, 11.0]);
    }

    #[test]
    fn sddmm_matches_dense_masked_product() {
        let g = gen::erdos_renyi(40, 300, 2).unwrap();
        let x = init::uniform(40, 12, -1.0, 1.0, 3);
        let f = reference_sddmm(&g, &x, &x);
        let full = tcg_tensor::gemm::gemm_a_bt(&x, &x).unwrap();
        let mut i = 0usize;
        for (s, d) in g.iter_edges() {
            assert!((f[i] - full.get(s as usize, d as usize)).abs() < 1e-4);
            i += 1;
        }
    }
}
