//! Fused attention pipeline: SDDMM → row softmax → weighted SpMM in one
//! kernel launch.
//!
//! An extension beyond the paper (its §5 pipelines the three stages as
//! separate kernels). The fusion is possible because SGT's row windows make
//! each thread block the owner of *all* edges of its 16 rows: the block can
//! compute the window's attention logits with the SDDMM tile loop, softmax
//! them entirely in shared memory (each row's edges are block-local), and
//! immediately run the weighted SpMM accumulation — no `edgeValList`
//! round-trips through global memory and two fewer kernel launches per
//! layer. Exactly the AGNN forward pipeline
//! `P = softmax(β·cos(x̂, x̂)); Y = P·X`.

use tcg_gpusim::wmma::{
    mma_sync, FragmentA, FragmentAcc, FragmentB, FRAG_A_SMEM_TRANSACTIONS,
    FRAG_B_SMEM_TRANSACTIONS, WMMA_K, WMMA_N,
};
use tcg_gpusim::{GridConfig, KernelReport, Launcher};
use tcg_graph::CsrGraph;
use tcg_sgt::{TranslatedGraph, TC_BLK_H, TC_BLK_W};
use tcg_tensor::DenseMatrix;

use crate::common::TcgError;

/// Output of the fused attention kernel.
pub struct FusedAttentionOutput {
    /// Aggregated node features `Y = P·Xv`.
    pub y: DenseMatrix,
    /// Raw cosine logits per edge (needed by the backward pass).
    pub cos: Vec<f32>,
    /// Softmaxed attention values per edge.
    pub p: Vec<f32>,
    /// Simulated performance report (one launch).
    pub report: KernelReport,
}

/// Runs the fused pipeline: logits from `xa·xaᵀ` (SDDMM over edges), scale
/// by `beta`, row softmax, then `Y = P·xv` — one simulated kernel.
///
/// `xa` supplies the attention operands (AGNN passes the L2-normalized
/// features), `xv` the aggregated values (AGNN passes the raw features).
pub fn fused_attention(
    launcher: &mut Launcher,
    csr: &CsrGraph,
    t: &TranslatedGraph,
    xa: &DenseMatrix,
    xv: &DenseMatrix,
    beta: f32,
) -> Result<FusedAttentionOutput, TcgError> {
    if t.edge_to_col.len() != csr.num_edges() {
        return Err(TcgError::DimMismatch {
            what: "translation edge count vs graph",
            expected: csr.num_edges(),
            actual: t.edge_to_col.len(),
        });
    }
    if xa.rows() != csr.num_nodes() || xv.rows() != csr.num_nodes() {
        return Err(TcgError::DimMismatch {
            what: "feature rows vs graph nodes",
            expected: csr.num_nodes(),
            actual: xa.rows().min(xv.rows()),
        });
    }
    let n = csr.num_nodes();
    let da = xa.cols();
    let dv = xv.cols();
    let slabs = dv.div_ceil(WMMA_N);
    let dim_iterations = da.div_ceil(WMMA_K);
    let mut y = DenseMatrix::zeros(n, dv);
    let mut cos = vec![0.0f32; csr.num_edges()];
    let mut p = vec![0.0f32; csr.num_edges()];

    let buf_ptr = launcher.try_alloc(csr.node_pointer().len() * 8)?;
    let buf_pack = launcher.try_alloc(csr.num_edges())?;
    let buf_atox = launcher.try_alloc(t.block_atox.len() * 4 + 4)?;
    let buf_porig = launcher.try_alloc(csr.num_edges() * 4)?;
    let buf_xa = launcher.try_alloc_f32(xa.len())?;
    let buf_xv = launcher.try_alloc_f32(xv.len())?;
    let buf_out = launcher.try_alloc_f32(y.len())?;
    let buf_cos = launcher.try_alloc_f32(csr.num_edges())?;
    let buf_p = launcher.try_alloc_f32(csr.num_edges())?;

    // Shared memory: the SDDMM staging of Listing 3 plus a window-local
    // edge-value buffer (the fusion's working set) and the SpMM dense_X.
    let warps = slabs.clamp(4, 8);
    let max_win_edges = (0..t.num_row_windows)
        .map(|w| {
            let (lo, hi) = t.window_edge_range(csr, w).expect("window in range");
            hi - lo
        })
        .max()
        .unwrap_or(0);
    let smem_bytes = (TC_BLK_H * TC_BLK_H + TC_BLK_H) * 4
        + 2 * (TC_BLK_H * WMMA_K) * 4
        + max_win_edges.min(4096) * 4
        + warps * TC_BLK_W * WMMA_N * 4;
    let cfg = GridConfig {
        block_size: (warps * 32) as u32,
        shared_mem_bytes: smem_bytes,
        regs_per_thread: 96,
    };

    // Each block owns all edges and output rows of its row window, so the
    // three output buffers split into disjoint per-block slices and the
    // body runs on the parallel path.
    let y_slices = tcg_gpusim::DisjointSlices::new(y.as_mut_slice());
    let cos_slices = tcg_gpusim::DisjointSlices::new(&mut cos);
    let p_slices = tcg_gpusim::DisjointSlices::new(&mut p);

    launcher.preflight("fused-attention", &cfg)?;
    let stats = launcher.launch_par(cfg, t.num_row_windows as u64, |ctx| {
        let w = ctx.block_id as usize;
        let num_spmm_blocks = t.win_partition[w] as usize;
        if num_spmm_blocks == 0 {
            return;
        }
        let row_lo = w * TC_BLK_H;
        let row_hi = (row_lo + TC_BLK_H).min(n);
        ctx.ld_global_scalar(buf_ptr.addr(row_lo, 8));
        ctx.ld_global_scalar(buf_ptr.addr(row_hi, 8));
        let b_lo = t.win_block_start[w];
        let b_hi = t.win_block_start[w + 1];

        // Per-block scratch (bodies run concurrently on the parallel path,
        // so nothing mutable is captured from the outer scope).
        let mut a_tile = vec![0.0f32; TC_BLK_H * WMMA_K];
        let mut b_tile = vec![0.0f32; WMMA_K * WMMA_N];
        let mut spmm_a = vec![0.0f32; TC_BLK_H * TC_BLK_W];
        let mut accs: Vec<FragmentAcc> = (0..slabs).map(|_| FragmentAcc::default()).collect();
        let (e_lo, e_hi) = t.window_edge_range(csr, w).expect("window in range");
        // SAFETY: window `w` exclusively owns rows [row_lo, row_hi) and the
        // edge range [e_lo, e_hi).
        let y_win = unsafe { y_slices.range_mut(row_lo * dv, (row_hi - row_lo) * dv) };
        let cos_win = unsafe { cos_slices.range_mut(e_lo, e_hi - e_lo) };
        let p_win = unsafe { p_slices.range_mut(e_lo, e_hi - e_lo) };

        // --- Stage 1: SDDMM over the window's edges (16-wide frames). ----
        let num_sddmm_blocks = (num_spmm_blocks * t.blk_w).div_ceil(TC_BLK_H);
        for i in 0..num_sddmm_blocks {
            let cb_lo = b_lo + 2 * i;
            let cb_hi = (cb_lo + 2).min(b_hi);
            let c_lo = t.block_ptr[cb_lo];
            let c_hi = t.block_ptr[cb_hi];
            ctx.ld_global_contiguous(buf_pack.addr(c_lo, 1), c_hi - c_lo, 1);
            ctx.ld_global_contiguous(buf_porig.addr(c_lo, 4), c_hi - c_lo, 4);
            ctx.ld_global_contiguous(
                buf_atox.addr(t.block_atox_ptr[cb_lo], 4),
                t.block_atox_ptr[cb_hi] - t.block_atox_ptr[cb_lo],
                4,
            );
            let mut acc = FragmentAcc::default();
            for di in 0..dim_iterations {
                let dim0 = di * WMMA_K;
                let kw = (da - dim0).min(WMMA_K);
                let x_bases: Vec<u64> = (row_lo..row_hi)
                    .map(|r| buf_xa.f32_addr(r * da + dim0))
                    .collect();
                ctx.ld_global_gather_rows(&x_bases, kw, 4);
                a_tile.iter_mut().for_each(|v| *v = 0.0);
                for (ri, r) in (row_lo..row_hi).enumerate() {
                    let xr = xa.row(r);
                    for k in 0..kw {
                        a_tile[ri * WMMA_K + k] = xr[dim0 + k];
                    }
                }
                b_tile.iter_mut().for_each(|v| *v = 0.0);
                let mut y_bases: Vec<u64> = Vec::with_capacity(TC_BLK_H);
                for (half, cb) in (cb_lo..cb_hi).enumerate() {
                    for (c8, &nid) in t.block_atox(cb).iter().enumerate() {
                        if nid == u32::MAX {
                            continue;
                        }
                        y_bases.push(buf_xa.f32_addr(nid as usize * da + dim0));
                        let yr = xa.row(nid as usize);
                        let c = c8 + half * t.blk_w;
                        for k in 0..kw {
                            b_tile[k * WMMA_N + c] = yr[dim0 + k];
                        }
                    }
                }
                ctx.ld_global_gather_rows(&y_bases, kw, 4);
                ctx.shared_access(FRAG_A_SMEM_TRANSACTIONS + FRAG_B_SMEM_TRANSACTIONS + 8);
                let mut fa = FragmentA::default();
                let mut fb = FragmentB::default();
                fa.load(&a_tile, WMMA_K);
                fb.load(&b_tile, WMMA_N);
                mma_sync(&mut acc, &fa, &fb, ctx);
            }
            // Scatter logits into the window-local shared buffer (stays in
            // shared memory — the fusion's point; charged as shared traffic).
            for (half, cb) in (cb_lo..cb_hi).enumerate() {
                let (h_lo, h_hi) = t.block_chunk(cb);
                for pos in h_lo..h_hi {
                    let (r, c8) = t.unpack(t.perm_pack[pos]);
                    let c = c8 + half * t.blk_w;
                    cos_win[t.perm_orig[pos] as usize - e_lo] = acc.get(r, c);
                }
            }
            ctx.shared_access(((c_hi - c_lo) as u64).div_ceil(32).max(1));
        }

        // --- Stage 2: row softmax, entirely in shared memory. ------------
        for r in row_lo..row_hi {
            let lo = csr.node_pointer()[r] - e_lo;
            let hi = csr.node_pointer()[r + 1] - e_lo;
            if hi == lo {
                continue;
            }
            let m = cos_win[lo..hi]
                .iter()
                .map(|c| beta * c)
                .fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for e in lo..hi {
                p_win[e] = (beta * cos_win[e] - m).exp();
                sum += p_win[e];
            }
            for pe in &mut p_win[lo..hi] {
                *pe /= sum;
            }
        }
        // max/exp-sum/divide passes over the window's edges.
        ctx.shared_access((((e_hi - e_lo) as u64) * 3).div_ceil(32).max(1));
        ctx.fp32_warps((((e_hi - e_lo) * 3) as u64).div_ceil(32).max(1));
        // The attention values are also persisted for the backward pass.
        ctx.st_global_contiguous(buf_p.f32_addr(e_lo), e_hi - e_lo, 4);
        ctx.st_global_contiguous(buf_cos.f32_addr(e_lo), e_hi - e_lo, 4);

        // --- Stage 3: weighted SpMM over the same translation. -----------
        for acc in accs.iter_mut() {
            acc.zero();
        }
        for i in 0..num_spmm_blocks {
            let b = b_lo + i;
            let (c_lo, c_hi) = t.block_chunk(b);
            // pack/atox are already block-resident from stage 1 (L1 hits).
            ctx.ld_global_contiguous(buf_pack.addr(c_lo, 1), c_hi - c_lo, 1);
            let atox = t.block_atox(b);
            spmm_a.iter_mut().for_each(|v| *v = 0.0);
            for pos in c_lo..c_hi {
                let (r, c) = t.unpack(t.perm_pack[pos]);
                spmm_a[r * TC_BLK_W + c] = p_win[t.perm_orig[pos] as usize - e_lo];
            }
            ctx.shared_access(((TC_BLK_H * TC_BLK_W) as u64).div_ceil(32) + 1);
            for (s, acc) in accs.iter_mut().enumerate() {
                let dim0 = s * WMMA_N;
                let width = (dv - dim0).min(WMMA_N);
                let bases: Vec<u64> = atox
                    .iter()
                    .filter(|&&u| u != u32::MAX)
                    .map(|&u| buf_xv.f32_addr(u as usize * dv + dim0))
                    .collect();
                ctx.ld_global_gather_rows(&bases, width, 4);
                ctx.shared_access(((TC_BLK_W * WMMA_N) as u64).div_ceil(32));
                b_tile.iter_mut().for_each(|v| *v = 0.0);
                for (k, &u) in atox.iter().enumerate() {
                    if u == u32::MAX {
                        continue;
                    }
                    let xrow = xv.row(u as usize);
                    for c in 0..width {
                        b_tile[k * WMMA_N + c] = xrow[dim0 + c];
                    }
                }
                let mut fa = FragmentA::default();
                let mut fb = FragmentB::default();
                fa.load(&spmm_a, TC_BLK_W);
                fb.load(&b_tile, WMMA_N);
                ctx.shared_access(FRAG_A_SMEM_TRANSACTIONS + FRAG_B_SMEM_TRANSACTIONS);
                mma_sync(acc, &fa, &fb, ctx);
            }
        }
        ctx.syncthreads();
        for (s, acc) in accs.iter().enumerate() {
            let dim0 = s * WMMA_N;
            let width = (dv - dim0).min(WMMA_N);
            let bases: Vec<u64> = (row_lo..row_hi)
                .map(|r| buf_out.f32_addr(r * dv + dim0))
                .collect();
            ctx.st_global_gather_rows(&bases, width, 4);
            for ri in 0..(row_hi - row_lo) {
                let orow = &mut y_win[ri * dv..(ri + 1) * dv];
                for c in 0..width {
                    orow[dim0 + c] = acc.get(ri, c);
                }
            }
        }
    });
    let report = tcg_gpusim::cost::analyze(launcher.device(), &stats);
    Ok(FusedAttentionOutput { y, cos, p, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{reference_sddmm, reference_spmm, SpmmProblem};
    use tcg_graph::gen;
    use tcg_tensor::init;

    fn check(g: &CsrGraph, da: usize, dv: usize, beta: f32) -> FusedAttentionOutput {
        let t = tcg_sgt::Sgt::builder()
            .translate(g)
            .expect("default SGT geometry is valid");
        let xa = init::uniform(g.num_nodes(), da, -1.0, 1.0, 3);
        let xv = init::uniform(g.num_nodes(), dv, -1.0, 1.0, 4);
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let out = fused_attention(&mut l, g, &t, &xa, &xv, beta).unwrap();

        // Reference: unfused pipeline in f64-backed steps.
        let cos_ref = reference_sddmm(g, &xa, &xa);
        for (a, b) in out.cos.iter().zip(&cos_ref) {
            assert!((a - b).abs() < 0.05, "cos {a} vs {b}");
        }
        let mut p_ref = vec![0.0f32; g.num_edges()];
        for v in 0..g.num_nodes() {
            let (lo, hi) = (g.node_pointer()[v], g.node_pointer()[v + 1]);
            if hi == lo {
                continue;
            }
            let m = cos_ref[lo..hi]
                .iter()
                .map(|c| beta * c)
                .fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for e in lo..hi {
                p_ref[e] = (beta * cos_ref[e] - m).exp();
                sum += p_ref[e];
            }
            for e in lo..hi {
                p_ref[e] /= sum;
            }
        }
        for (a, b) in out.p.iter().zip(&p_ref) {
            assert!((a - b).abs() < 0.03, "p {a} vs {b}");
        }
        let prob = SpmmProblem::new(g, Some(&p_ref), &xv).unwrap();
        let y_ref = reference_spmm(&prob);
        assert!(out.y.max_abs_diff(&y_ref).unwrap() < 0.05);
        out
    }

    #[test]
    fn fused_matches_unfused_pipeline() {
        let g = gen::citation(300, 2400, 1).unwrap();
        let out = check(&g, 16, 32, 0.8);
        assert!(out.report.stats.tcu_mma_instructions > 0);
    }

    #[test]
    fn fused_handles_ragged_dims() {
        let g = gen::erdos_renyi(150, 1200, 2).unwrap();
        check(&g, 13, 20, 1.5);
    }

    #[test]
    fn fused_is_one_launch_and_cheaper_than_three() {
        let g = gen::community(4096, 40_000, 16, 48, 5).unwrap();
        let t = tcg_sgt::Sgt::builder().translate(&g).unwrap();
        let xa = init::uniform(g.num_nodes(), 32, -1.0, 1.0, 6);
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let fused = fused_attention(&mut l, &g, &t, &xa, &xa, 1.0).unwrap();

        // Unfused: SDDMM + softmax + SpMM as separate launches.
        use crate::common::SpmmKernel;
        use crate::sddmm::{SddmmKernel, TcgnnSddmm};
        use crate::softmax::sparse_row_softmax;
        use crate::spmm::TcgnnSpmm;
        let mut l2 = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (cosv, r1) = TcgnnSddmm::from_translated(t.clone())
            .execute(&mut l2, &g, &xa, &xa)
            .unwrap();
        let (pv, r2) = sparse_row_softmax(&mut l2, &g, &cosv).unwrap();
        let prob = SpmmProblem::new(&g, Some(&pv), &xa).unwrap();
        let (_, r3) = TcgnnSpmm::from_translated(t)
            .execute(&mut l2, &prob)
            .unwrap();
        let unfused_ms = r1.time_ms + r2.time_ms + r3.time_ms;
        assert!(
            fused.report.time_ms < unfused_ms,
            "fused {} ms vs unfused {} ms",
            fused.report.time_ms,
            unfused_ms
        );
    }

    #[test]
    fn rejects_mismatched_inputs() {
        let g = gen::erdos_renyi(100, 800, 7).unwrap();
        let t = tcg_sgt::Sgt::builder().translate(&g).unwrap();
        let xa = init::uniform(99, 8, -1.0, 1.0, 8);
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        assert!(fused_attention(&mut l, &g, &t, &xa, &xa, 1.0).is_err());
    }
}
