//! Per-row-window hybrid TCU/CUDA-core dispatch (HC-SpMM direction).
//!
//! Neither core type wins everywhere: sparse/thin row windows waste TCU
//! tiles on mostly-zero `16×8` operands (the MMA still costs its full 4096
//! FLOPs plus staging traffic), while dense hub windows amortize that
//! staging across many non-zeros and starve a scalar CUDA-core walk. The
//! dispatcher here scores each SGT row window from its geometry — nnz,
//! distinct condensed columns, TC-block count, window occupancy — and
//! routes it to whichever kernel class the `tcg_gpusim` cost model predicts
//! is cheaper. [`crate::spmm::HybridSpmm`] / [`crate::sddmm::HybridSddmm`]
//! then execute a *single mixed launch* whose per-window work (both the
//! modeled memory/pipe charges and the functional arithmetic) is exactly
//! the chosen pure kernel's, so per-window outputs are bitwise identical to
//! the pure backend that window was dispatched to.
//!
//! The decision is a pure function of window geometry, the embedding
//! dimension, and the kernel class: the cost model is evaluated on a pinned
//! reference device, so there is no runtime device state, no RNG, no
//! thread-count dependence. That is what makes mixed launches deterministic
//! under the parallel launcher and reproducible across runs — the property
//! the conformance matrix and the dispatch proptests pin down.
//!
//! The crossover sits in a different place for the two sparse kernels. SpMM
//! condensation deduplicates neighbor-row gathers, so the TCU formulation
//! moves less memory on almost every window and only loses on very thin
//! ones at narrow dims; SDDMM re-gathers the window's own rows per fused
//! block *and* pays the full MMA for tiles holding a handful of edges, so
//! scattered windows flip to CUDA cores much earlier. The [`score`] is the
//! cost model's cycle log-ratio for the window's two formulations, with a
//! per-kernel-class decision threshold fitted by `tcgnn tune`.

use tcg_gpusim::cost::{self, LAUNCH_OVERHEAD_CYCLES};
use tcg_gpusim::wmma::{WMMA_K, WMMA_M, WMMA_N};
use tcg_gpusim::{DeviceSpec, KernelStats};
use tcg_graph::CsrGraph;
use tcg_sgt::{TranslatedGraph, TC_BLK_H, TC_BLK_W};

/// Which kernel class a row window is dispatched to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowBackend {
    /// TC-GNN tensor-core path: staged sparse tile + `m16n16k8` MMAs.
    Tcu,
    /// Scalar CUDA-core path: cuSPARSE-style row walk (SpMM) or per-edge
    /// dot products (SDDMM), scoped to the window's rows.
    CudaCore,
}

impl WindowBackend {
    /// Stable one-character tag used when printing dispatch masks.
    pub fn tag(self) -> char {
        match self {
            WindowBackend::Tcu => 'T',
            WindowBackend::CudaCore => 'c',
        }
    }
}

/// Which sparse kernel the dispatch decision is for. The score is shared;
/// the fitted threshold is not (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Neighbor aggregation (`A·X`).
    Spmm,
    /// Edge-feature computation (`(X·Yᵀ) ⊙ A`).
    Sddmm,
}

impl KernelClass {
    /// Lowercase label for reports and env-var suffixes.
    pub fn label(self) -> &'static str {
        match self {
            KernelClass::Spmm => "spmm",
            KernelClass::Sddmm => "sddmm",
        }
    }
}

/// The dispatch-relevant geometry of one SGT row window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowGeometry {
    /// Rows in the window (16, except a ragged final window).
    pub rows: usize,
    /// Non-zeros (CSR edges) owned by the window's rows.
    pub nnz: usize,
    /// Distinct condensed columns (unique neighbors) after SGT.
    pub distinct_cols: usize,
    /// TC blocks the window condenses to (`ceil(distinct_cols / 8)`).
    pub tc_blocks: usize,
}

impl WindowGeometry {
    /// Reads window `w`'s geometry from a translation.
    pub fn from_translation(t: &TranslatedGraph, csr: &CsrGraph, w: usize) -> WindowGeometry {
        let (e_lo, e_hi) = t.window_edge_range(csr, w).expect("window in range");
        let row_lo = w * t.win_size;
        let row_hi = ((w + 1) * t.win_size).min(csr.num_nodes());
        WindowGeometry {
            rows: row_hi - row_lo,
            nnz: e_hi - e_lo,
            distinct_cols: t.win_unique[w] as usize,
            tc_blocks: t.win_partition[w] as usize,
        }
    }

    /// Fraction of staged TCU tile slots holding a non-zero: `nnz /
    /// (tc_blocks · 16·8)`. Dense hub windows approach 1; scattered windows
    /// sit near `1/8` (every non-zero its own condensed column). Zero for
    /// empty windows.
    pub fn occupancy(&self) -> f64 {
        if self.tc_blocks == 0 {
            return 0.0;
        }
        self.nnz as f64 / (self.tc_blocks * TC_BLK_H * TC_BLK_W) as f64
    }
}

/// Reference device the dispatch [`score`] is evaluated on — the paper's
/// RTX 3090. Pinning the device keeps the score a pure function of
/// `(geometry, dim, class)` — no runtime device state, no RNG, no thread
/// dependence — while making the decision agree exactly with
/// [`predict_cycles`] on the reference device.
fn ref_device() -> &'static DeviceSpec {
    static REF: std::sync::OnceLock<DeviceSpec> = std::sync::OnceLock::new();
    REF.get_or_init(DeviceSpec::rtx3090)
}

/// Floor for the cycle ratio so empty-ish windows stay finite.
const MIN_CYCLES: f64 = 1e-6;

/// Dispatch score for one window at embedding dimension `dim`:
/// `log2(tcu_cycles / cuda_cycles)` under the `tcg_gpusim` roofline on the
/// reference device. Negative ⇒ the TCU formulation is predicted cheaper,
/// positive ⇒ the CUDA-core walk is. A pure deterministic function of
/// `(geometry, dim, class)`, so the dispatch decision inherits purity.
pub fn score(geom: &WindowGeometry, dim: usize, class: KernelClass) -> f64 {
    let dev = ref_device();
    let tcu = predict_cycles(dev, geom, dim, class, WindowBackend::Tcu);
    let cuda = predict_cycles(dev, geom, dim, class, WindowBackend::CudaCore);
    (tcu.max(MIN_CYCLES) / cuda.max(MIN_CYCLES)).log2()
}

/// SpMM decision threshold fitted by `tcgnn tune` (minimum total
/// predicted-cycle regret over the adversarial families + fig7b suite; see
/// [`fit_threshold`]). A window runs on the TCU iff its [`score`] is at or
/// below the class threshold. The fit places the cut in the widest gap
/// separating TCU-cheaper from CUDA-cheaper windows, so it sits near — but
/// not exactly at — zero.
pub const DEFAULT_SPMM_THRESHOLD: f64 = -0.0192;

/// SDDMM decision threshold (same fit). Scattered windows flip to CUDA
/// cores far more often here — the fused 16×16 blocks re-gather the
/// window's rows per block and waste whole MMAs on near-empty tiles.
pub const DEFAULT_SDDMM_THRESHOLD: f64 = -0.0023;

/// The per-window dispatcher: a fitted threshold on the class's [`score`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatchPolicy {
    /// Which sparse kernel the policy dispatches for (the score's cycle
    /// predictions are class-specific).
    pub class: KernelClass,
    /// TCU iff `score(geom, dim, class) <= threshold`.
    pub threshold: f64,
}

impl Default for DispatchPolicy {
    /// The SpMM-fitted default.
    fn default() -> Self {
        DispatchPolicy::default_for(KernelClass::Spmm)
    }
}

impl DispatchPolicy {
    /// A policy with an explicit threshold (what `tcgnn tune` emits).
    pub fn with_threshold(class: KernelClass, threshold: f64) -> Self {
        DispatchPolicy { class, threshold }
    }

    /// The fitted default threshold for a kernel class.
    pub fn default_for(class: KernelClass) -> Self {
        DispatchPolicy {
            class,
            threshold: match class {
                KernelClass::Spmm => DEFAULT_SPMM_THRESHOLD,
                KernelClass::Sddmm => DEFAULT_SDDMM_THRESHOLD,
            },
        }
    }

    /// Reads `TCG_HYBRID_THRESHOLD_{SPMM,SDDMM}` (then the class-agnostic
    /// `TCG_HYBRID_THRESHOLD`, then the fitted default) so a tuned
    /// threshold can be pinned for reproducible runs.
    pub fn from_env(class: KernelClass) -> Self {
        let parse = |key: &str| std::env::var(key).ok().and_then(|v| v.parse::<f64>().ok());
        let specific = match class {
            KernelClass::Spmm => parse("TCG_HYBRID_THRESHOLD_SPMM"),
            KernelClass::Sddmm => parse("TCG_HYBRID_THRESHOLD_SDDMM"),
        };
        match specific.or_else(|| parse("TCG_HYBRID_THRESHOLD")) {
            Some(t) => DispatchPolicy {
                class,
                threshold: t,
            },
            None => DispatchPolicy::default_for(class),
        }
    }

    /// Dispatches one window. Empty windows go to the TCU path (both
    /// kernels skip them; choosing TCU keeps an all-TCU mask identical to
    /// the pure kernel on empty graphs). Pure in `(geom, dim)`.
    pub fn decide(&self, geom: &WindowGeometry, dim: usize) -> WindowBackend {
        if geom.nnz == 0 {
            return WindowBackend::Tcu;
        }
        if score(geom, dim, self.class) <= self.threshold {
            WindowBackend::Tcu
        } else {
            WindowBackend::CudaCore
        }
    }

    /// The full dispatch mask for a translated graph at dimension `dim`.
    pub fn mask(&self, t: &TranslatedGraph, csr: &CsrGraph, dim: usize) -> Vec<WindowBackend> {
        (0..t.num_row_windows)
            .map(|w| self.decide(&WindowGeometry::from_translation(t, csr, w), dim))
            .collect()
    }

    /// Delta counterpart of [`DispatchPolicy::mask`]: re-decides only the
    /// `touched` windows of an existing mask after an incremental
    /// retranslation. Because [`score`] is a pure function of one window's
    /// geometry, untouched entries are exactly what a full recompute would
    /// produce, so the refreshed mask is identical to
    /// `self.mask(t, csr, dim)` at a cost proportional to the edit.
    ///
    /// # Panics
    ///
    /// If `mask` does not cover `t.num_row_windows` windows or a touched
    /// index is out of range — both indicate the caller paired the mask
    /// with the wrong translation generation.
    pub fn refresh_mask(
        &self,
        mask: &mut [WindowBackend],
        t: &TranslatedGraph,
        csr: &CsrGraph,
        dim: usize,
        touched: &[usize],
    ) {
        assert_eq!(
            mask.len(),
            t.num_row_windows,
            "dispatch mask length must match the translation's window count"
        );
        for &w in touched {
            mask[w] = self.decide(&WindowGeometry::from_translation(t, csr, w), dim);
        }
    }
}

/// Renders a dispatch mask as a compact run-length string, e.g.
/// `Tx12 cx3 Tx1` — what fuzz repros and trace markers print.
pub fn render_mask(mask: &[WindowBackend]) -> String {
    let mut out = String::new();
    let mut i = 0;
    while i < mask.len() {
        let mut j = i;
        while j < mask.len() && mask[j] == mask[i] {
            j += 1;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        out.push(mask[i].tag());
        out.push_str(&format!("x{}", j - i));
        i = j;
    }
    if out.is_empty() {
        out.push_str("(no windows)");
    }
    out
}

/// How many copies of a window [`predict_cycles`] replicates across the
/// device. A one-block launch is occupancy-starved and its exposed-latency
/// term swamps every real pipe difference; a window's *marginal* cost in a
/// real mixed launch is its share of a saturated grid, so we model `4 ×
/// num_sms` identical windows and divide.
fn replicas(device: &DeviceSpec) -> u64 {
    4 * device.num_sms as u64
}

/// Memory sectors (32 B) one gathered feature-row slab occupies.
fn row_sectors(width: usize) -> u64 {
    (width * 4).div_ceil(32).max(1) as u64
}

/// Per-window charges for the TCU SpMM formulation — the window's share of
/// what `TcgnnSpmm` issues (condensed gathers per dim slab, staging smem
/// traffic, one MMA per TC block per slab).
fn tcu_spmm_stats(geom: &WindowGeometry, dim: usize) -> KernelStats {
    let slabs = dim.div_ceil(WMMA_N);
    let warps = slabs.clamp(4, 8);
    let smem = TC_BLK_H * TC_BLK_W * 4 + TC_BLK_W * 4 + warps * TC_BLK_W * WMMA_N * 4;
    let mma = (geom.tc_blocks * slabs) as u64;
    let gathers = geom.distinct_cols as u64 * slabs as u64 * row_sectors(dim.min(WMMA_N));
    // Packed coords (1 B/nnz), AToX lists, per-block ptr scalars.
    let aux = (geom.nnz as u64).div_ceil(32)
        + (geom.distinct_cols as u64).div_ceil(8)
        + geom.tc_blocks as u64
        + 2;
    let loads = gathers + aux;
    let stores = (geom.rows * dim).div_ceil(8) as u64;
    KernelStats {
        num_blocks: 1,
        block_size: (warps * 32) as u32,
        shared_mem_per_block: smem,
        regs_per_thread: 64,
        tcu_flops: mma * (2 * WMMA_M * WMMA_N * WMMA_K) as u64,
        tcu_mma_instructions: mma,
        warp_instructions: mma * 4 + loads + stores,
        shared_transactions: geom.tc_blocks as u64 * (8 + slabs as u64 * 12),
        gl_load_transactions: loads,
        gl_store_transactions: stores,
        l2_hits: loads / 2,
        l2_misses: loads - loads / 2,
        dram_read_bytes: (loads - loads / 2) * 32,
        dram_write_bytes: (geom.rows * dim * 4) as u64,
        ..Default::default()
    }
}

/// Per-window charges for the CUDA-core SpMM walk over the same rows
/// (cuSPARSE lockstep scoped to ≤16 rows: per-edge 4-column register tiles,
/// no gather dedup). Same block shape as the mixed launch so occupancy —
/// and therefore the latency term — compares like for like.
fn cuda_spmm_stats(geom: &WindowGeometry, dim: usize) -> KernelStats {
    let slabs = dim.div_ceil(WMMA_N);
    let warps = slabs.clamp(4, 8);
    let smem = TC_BLK_H * TC_BLK_W * 4 + TC_BLK_W * 4 + warps * TC_BLK_W * WMMA_N * 4;
    let dim_tiles = dim.div_ceil(4) as u64;
    let iters = (geom.nnz as u64).div_ceil(geom.rows.max(1) as u64);
    // Per edge per tile: one 16 B gather from the neighbor row (its own
    // sector — no condensation), plus edge-id loads and ptr scalars.
    let loads = geom.nnz as u64 * dim_tiles + (geom.nnz as u64).div_ceil(8) + iters + 2;
    let stores = geom.rows as u64 * dim_tiles;
    let fma = geom.nnz as u64 * dim_tiles;
    KernelStats {
        num_blocks: 1,
        block_size: (warps * 32) as u32,
        shared_mem_per_block: smem,
        regs_per_thread: 64,
        fp32_flops: geom.nnz as u64 * dim as u64 * 2,
        int_ops: loads,
        warp_instructions: loads + stores + fma,
        gl_load_transactions: loads,
        gl_store_transactions: stores,
        l2_hits: loads / 2,
        l2_misses: loads - loads / 2,
        dram_read_bytes: (loads - loads / 2) * 32,
        dram_write_bytes: (geom.rows * dim * 4) as u64,
        ..Default::default()
    }
}

/// Per-window charges for the fused TCU SDDMM blocks: per 16-wide block
/// per K-slab the kernel re-gathers the window's own 16 rows *and* the
/// frame's condensed neighbors, then pays a full MMA however few edges the
/// tile holds — the overhead that flips scattered windows to CUDA cores.
fn tcu_sddmm_stats(geom: &WindowGeometry, dim: usize) -> KernelStats {
    let smem = (TC_BLK_H * TC_BLK_H + TC_BLK_H) * 4 + 2 * (TC_BLK_H * WMMA_K) * 4;
    let sddmm_blocks = geom.tc_blocks.div_ceil(2).max(1) as u64;
    let kslabs = dim.div_ceil(WMMA_K) as u64;
    let mma = sddmm_blocks * kslabs;
    let x_gathers = geom.rows as u64 * sddmm_blocks * kslabs * row_sectors(dim.min(WMMA_K));
    let y_gathers = geom.distinct_cols as u64 * kslabs * row_sectors(dim.min(WMMA_K));
    let aux = (geom.nnz as u64).div_ceil(32)
        + (geom.nnz as u64).div_ceil(8)
        + (geom.distinct_cols as u64).div_ceil(8)
        + 2;
    let loads = x_gathers + y_gathers + aux;
    let stores = (geom.nnz as u64).div_ceil(8).max(1);
    KernelStats {
        num_blocks: 1,
        block_size: 128,
        shared_mem_per_block: smem,
        regs_per_thread: 72,
        tcu_flops: mma * (2 * WMMA_M * WMMA_N * WMMA_K) as u64,
        tcu_mma_instructions: mma,
        warp_instructions: mma * 4 + loads + stores,
        shared_transactions: sddmm_blocks * (10 + kslabs * 14),
        gl_load_transactions: loads,
        gl_store_transactions: stores,
        l2_hits: loads / 2,
        l2_misses: loads - loads / 2,
        dram_read_bytes: (loads - loads / 2) * 32,
        dram_write_bytes: geom.nnz as u64 * 4,
        ..Default::default()
    }
}

/// Per-window charges for per-edge CUDA-core SDDMM over the same rows: one
/// pass over each source row, one full-row gather per edge, a warp tree
/// reduction per dot product.
fn cuda_sddmm_stats(geom: &WindowGeometry, dim: usize) -> KernelStats {
    let smem = (TC_BLK_H * TC_BLK_H + TC_BLK_H) * 4 + 2 * (TC_BLK_H * WMMA_K) * 4;
    let row_secs = row_sectors(dim);
    let loads = geom.rows as u64 * row_secs
        + geom.nnz as u64 * row_secs
        + (geom.nnz as u64).div_ceil(8)
        + 2;
    let stores = (geom.nnz as u64).div_ceil(8).max(1);
    let shuffle = (dim.min(32) as f64).log2().ceil().max(1.0) as u64;
    KernelStats {
        num_blocks: 1,
        block_size: 128,
        shared_mem_per_block: smem,
        regs_per_thread: 72,
        fp32_flops: geom.nnz as u64 * dim as u64 * 2 + geom.nnz as u64 * shuffle * 32,
        int_ops: loads,
        warp_instructions: loads + stores + (geom.nnz as u64 * dim as u64).div_ceil(32),
        gl_load_transactions: loads,
        gl_store_transactions: stores,
        l2_hits: loads / 2,
        l2_misses: loads - loads / 2,
        dram_read_bytes: (loads - loads / 2) * 32,
        dram_write_bytes: geom.nnz as u64 * 4,
        ..Default::default()
    }
}

/// Predicted marginal device cycles for running one window on `backend` in
/// a saturated mixed launch: the per-window stats are replicated across the
/// device (see [`replicas`]), analyzed by the `tcg_gpusim` roofline, and
/// the per-window share returned with launch overhead stripped (the mixed
/// launch pays it once, not per window).
pub fn predict_cycles(
    device: &DeviceSpec,
    geom: &WindowGeometry,
    dim: usize,
    class: KernelClass,
    backend: WindowBackend,
) -> f64 {
    if geom.nnz == 0 {
        return 0.0;
    }
    let one = match (class, backend) {
        (KernelClass::Spmm, WindowBackend::Tcu) => tcu_spmm_stats(geom, dim),
        (KernelClass::Spmm, WindowBackend::CudaCore) => cuda_spmm_stats(geom, dim),
        (KernelClass::Sddmm, WindowBackend::Tcu) => tcu_sddmm_stats(geom, dim),
        (KernelClass::Sddmm, WindowBackend::CudaCore) => cuda_sddmm_stats(geom, dim),
    };
    let r = replicas(device);
    let scaled = KernelStats {
        num_blocks: r,
        block_size: one.block_size,
        shared_mem_per_block: one.shared_mem_per_block,
        regs_per_thread: one.regs_per_thread,
        fp32_flops: one.fp32_flops * r,
        int_ops: one.int_ops * r,
        tcu_flops: one.tcu_flops * r,
        tcu_mma_instructions: one.tcu_mma_instructions * r,
        warp_instructions: one.warp_instructions * r,
        shared_transactions: one.shared_transactions * r,
        gl_load_transactions: one.gl_load_transactions * r,
        gl_store_transactions: one.gl_store_transactions * r,
        l2_hits: one.l2_hits * r,
        l2_misses: one.l2_misses * r,
        dram_read_bytes: one.dram_read_bytes * r,
        dram_write_bytes: one.dram_write_bytes * r,
        ..Default::default()
    };
    ((cost::analyze(device, &scaled).cycles - LAUNCH_OVERHEAD_CYCLES) / r as f64).max(0.0)
}

/// One window's tune observation: its score and the cost model's verdicts.
#[derive(Debug, Clone, Copy)]
pub struct TuneSample {
    /// [`score`] of the window.
    pub score: f64,
    /// Predicted cycles on the TCU path.
    pub tcu_cycles: f64,
    /// Predicted cycles on the CUDA-core path.
    pub cuda_cycles: f64,
}

/// Sweeps every non-empty window of `csr` at dimension `dim`, recording
/// score + cost-model cycle predictions for both paths of `class`.
pub fn tune_samples(
    device: &DeviceSpec,
    t: &TranslatedGraph,
    csr: &CsrGraph,
    dim: usize,
    class: KernelClass,
) -> Vec<TuneSample> {
    (0..t.num_row_windows)
        .filter_map(|w| {
            let geom = WindowGeometry::from_translation(t, csr, w);
            if geom.nnz == 0 {
                return None;
            }
            Some(TuneSample {
                score: score(&geom, dim, class),
                tcu_cycles: predict_cycles(device, &geom, dim, class, WindowBackend::Tcu),
                cuda_cycles: predict_cycles(device, &geom, dim, class, WindowBackend::CudaCore),
            })
        })
        .collect()
}

/// A fitted threshold plus its regret accounting.
#[derive(Debug, Clone, Copy)]
pub struct TuneFit {
    /// The regret-minimizing threshold.
    pub threshold: f64,
    /// Total predicted cycles left on the table vs the per-window oracle
    /// (0 = the threshold reproduces every oracle decision's cost).
    pub regret_cycles: f64,
    /// Total predicted cycles of the per-window oracle itself.
    pub oracle_cycles: f64,
    /// Fraction of samples the threshold dispatches like the oracle.
    pub agreement: f64,
}

/// Regresses the decision threshold from cost-model sweeps: evaluates every
/// candidate cut between adjacent sample scores and keeps the one with the
/// least total predicted-cycle regret against the per-window oracle
/// (midpoints of separating gaps, so the cut is stable under small score
/// perturbations).
pub fn fit_threshold(samples: &[TuneSample]) -> TuneFit {
    let oracle_cycles: f64 = samples
        .iter()
        .map(|s| s.tcu_cycles.min(s.cuda_cycles))
        .sum();
    if samples.is_empty() {
        return TuneFit {
            threshold: DEFAULT_SPMM_THRESHOLD,
            regret_cycles: 0.0,
            oracle_cycles: 0.0,
            agreement: 1.0,
        };
    }
    let mut scores: Vec<f64> = samples.iter().map(|s| s.score).collect();
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
    scores.dedup();
    // Candidate cuts: below the minimum, between each adjacent pair, above
    // the maximum.
    let mut candidates = Vec::with_capacity(scores.len() + 1);
    candidates.push(scores[0] - 1.0);
    for pair in scores.windows(2) {
        candidates.push((pair[0] + pair[1]) / 2.0);
    }
    candidates.push(scores[scores.len() - 1] + 1.0);

    let cost_at = |thr: f64| -> f64 {
        samples
            .iter()
            .map(|s| {
                if s.score <= thr {
                    s.tcu_cycles
                } else {
                    s.cuda_cycles
                }
            })
            .sum()
    };
    let (best_thr, best_cost) = candidates
        .iter()
        .map(|&thr| (thr, cost_at(thr)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    let agree = samples
        .iter()
        .filter(|s| (s.score <= best_thr) == (s.tcu_cycles <= s.cuda_cycles))
        .count();
    TuneFit {
        threshold: best_thr,
        regret_cycles: best_cost - oracle_cycles,
        oracle_cycles,
        agreement: agree as f64 / samples.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcg_graph::gen;
    use tcg_sgt::Sgt;

    fn geoms(csr: &CsrGraph) -> Vec<WindowGeometry> {
        let t = Sgt::builder().translate(csr).unwrap();
        (0..t.num_row_windows)
            .map(|w| WindowGeometry::from_translation(&t, csr, w))
            .collect()
    }

    #[test]
    fn geometry_totals_reconcile_with_translation() {
        let g = gen::rmat_default(512, 5000, 1).unwrap();
        let t = Sgt::builder().translate(&g).unwrap();
        let gs = geoms(&g);
        assert_eq!(gs.iter().map(|g| g.nnz).sum::<usize>(), g.num_edges());
        assert_eq!(
            gs.iter().map(|g| g.tc_blocks as u64).sum::<u64>(),
            t.total_tc_blocks()
        );
        for g in &gs {
            assert_eq!(g.tc_blocks, g.distinct_cols.div_ceil(TC_BLK_W));
            let occ = g.occupancy();
            assert!((0.0..=1.0 + 1e-9).contains(&occ), "occupancy {occ}");
        }
    }

    #[test]
    fn decision_is_pure_and_threshold_monotone() {
        let g = gen::community(600, 6000, 8, 24, 3).unwrap();
        let policy = DispatchPolicy::default();
        for geom in geoms(&g) {
            let d1 = policy.decide(&geom, 32);
            let d2 = policy.decide(&geom, 32);
            assert_eq!(d1, d2, "same geometry, same decision");
            // Raising the threshold can only move windows toward the TCU.
            let looser = DispatchPolicy::with_threshold(policy.class, policy.threshold + 10.0);
            if d1 == WindowBackend::Tcu {
                assert_eq!(looser.decide(&geom, 32), WindowBackend::Tcu);
            }
        }
    }

    #[test]
    fn empty_window_dispatches_to_tcu() {
        let geom = WindowGeometry {
            rows: 16,
            nnz: 0,
            distinct_cols: 0,
            tc_blocks: 0,
        };
        assert_eq!(
            DispatchPolicy::with_threshold(KernelClass::Spmm, -100.0).decide(&geom, 16),
            WindowBackend::Tcu
        );
        let dev = DeviceSpec::rtx3090();
        assert_eq!(
            predict_cycles(&dev, &geom, 16, KernelClass::Spmm, WindowBackend::Tcu),
            0.0
        );
    }

    #[test]
    fn dense_window_prefers_tcu_on_both_kernels() {
        // A hub window: 16 rows sharing the same 8 neighbors — condensation
        // collapses 128 edges into one TC block.
        let dense = WindowGeometry {
            rows: 16,
            nnz: 128,
            distinct_cols: 8,
            tc_blocks: 1,
        };
        let dev = DeviceSpec::rtx3090();
        for class in [KernelClass::Spmm, KernelClass::Sddmm] {
            assert!(
                predict_cycles(&dev, &dense, 32, class, WindowBackend::Tcu)
                    < predict_cycles(&dev, &dense, 32, class, WindowBackend::CudaCore),
                "hub window should favor the TCU ({})",
                class.label()
            );
        }
    }

    #[test]
    fn scattered_window_prefers_cuda_on_sddmm() {
        // Degree-1 rows, every edge its own condensed column: the fused
        // SDDMM block re-gathers all 16 window rows per K-slab and pays the
        // whole MMA for 16 scattered edges.
        let sparse = WindowGeometry {
            rows: 16,
            nnz: 16,
            distinct_cols: 16,
            tc_blocks: 2,
        };
        let dense = WindowGeometry {
            rows: 16,
            nnz: 128,
            distinct_cols: 8,
            tc_blocks: 1,
        };
        assert!(score(&dense, 32, KernelClass::Sddmm) < score(&sparse, 32, KernelClass::Sddmm));
        let dev = DeviceSpec::rtx3090();
        assert!(
            predict_cycles(
                &dev,
                &sparse,
                32,
                KernelClass::Sddmm,
                WindowBackend::CudaCore
            ) < predict_cycles(&dev, &sparse, 32, KernelClass::Sddmm, WindowBackend::Tcu),
            "scattered window should favor CUDA cores on SDDMM"
        );
        // SpMM condensation still wins the same geometry: its gathers are
        // deduplicated, the CUDA walk's are not.
        assert!(
            predict_cycles(&dev, &sparse, 32, KernelClass::Spmm, WindowBackend::Tcu)
                < predict_cycles(
                    &dev,
                    &sparse,
                    32,
                    KernelClass::Spmm,
                    WindowBackend::CudaCore
                )
        );
    }

    #[test]
    fn score_sign_matches_cost_model_on_reference_device() {
        // The score is the cost model's own cycle log-ratio on the pinned
        // reference device, so a zero threshold reproduces the per-window
        // oracle there exactly.
        let g = gen::rmat_default(1024, 9000, 3).unwrap();
        let dev = DeviceSpec::rtx3090();
        for class in [KernelClass::Spmm, KernelClass::Sddmm] {
            for geom in geoms(&g) {
                if geom.nnz == 0 {
                    continue;
                }
                let s = score(&geom, 32, class);
                let tcu = predict_cycles(&dev, &geom, 32, class, WindowBackend::Tcu);
                let cuda = predict_cycles(&dev, &geom, 32, class, WindowBackend::CudaCore);
                assert_eq!(
                    s <= 0.0,
                    tcu <= cuda,
                    "score {s} disagrees with cycles {tcu} vs {cuda} ({})",
                    class.label()
                );
            }
        }
    }

    #[test]
    fn fit_threshold_separates_synthetic_samples() {
        // Oracle: cheap-on-TCU below score 0, cheap-on-CUDA above.
        let samples: Vec<TuneSample> = (-10..10)
            .map(|i| {
                let s = i as f64 / 2.0;
                TuneSample {
                    score: s,
                    tcu_cycles: if s <= 0.0 { 10.0 } else { 100.0 },
                    cuda_cycles: if s <= 0.0 { 100.0 } else { 10.0 },
                }
            })
            .collect();
        let fit = fit_threshold(&samples);
        assert!(
            fit.regret_cycles.abs() < 1e-9,
            "regret {}",
            fit.regret_cycles
        );
        assert!(
            (-0.5..=0.5).contains(&fit.threshold),
            "thr {}",
            fit.threshold
        );
        assert_eq!(fit.agreement, 1.0);
    }

    #[test]
    fn fitted_threshold_on_real_graphs_is_finite() {
        let g = gen::rmat_default(2048, 20_000, 7).unwrap();
        let t = Sgt::builder().translate(&g).unwrap();
        for class in [KernelClass::Spmm, KernelClass::Sddmm] {
            let samples = tune_samples(&DeviceSpec::rtx3090(), &t, &g, 32, class);
            assert!(!samples.is_empty());
            let fit = fit_threshold(&samples);
            assert!(fit.threshold.is_finite());
            assert!(fit.regret_cycles >= -1e-6);
            assert!(fit.oracle_cycles > 0.0);
        }
    }

    #[test]
    fn refresh_mask_matches_full_recompute_after_delta() {
        let g = gen::rmat_default(512, 5_000, 11).unwrap();
        let mut t = Sgt::builder().translate(&g).unwrap();
        let policy = DispatchPolicy::default();
        let mut mask = policy.mask(&t, &g, 32);

        // Rewire one window heavily so its geometry (and likely its
        // dispatch decision) changes, then refresh only that window.
        let mut delta = tcg_sgt::EdgeDelta::new();
        for src in 32u32..40 {
            for &d in g.neighbors(src as usize) {
                delta.push_delete(src, d);
            }
        }
        let g2 = delta.apply_to(&g).unwrap();
        let report = t.apply_delta(&g2, &delta).unwrap();
        policy.refresh_mask(&mut mask, &t, &g2, 32, &report.touched_windows);
        assert_eq!(
            mask,
            policy.mask(&t, &g2, 32),
            "refreshed mask must equal a full recompute"
        );
    }

    #[test]
    fn render_mask_run_length_encodes() {
        use WindowBackend::{CudaCore as C, Tcu as T};
        assert_eq!(render_mask(&[T, T, C, C, C, T]), "Tx2 cx3 Tx1");
        assert_eq!(render_mask(&[]), "(no windows)");
    }

    #[test]
    fn env_override_parses() {
        // `from_env` falls back to the fitted defaults when unset.
        std::env::remove_var("TCG_HYBRID_THRESHOLD");
        std::env::remove_var("TCG_HYBRID_THRESHOLD_SPMM");
        std::env::remove_var("TCG_HYBRID_THRESHOLD_SDDMM");
        assert_eq!(
            DispatchPolicy::from_env(KernelClass::Spmm).threshold,
            DEFAULT_SPMM_THRESHOLD
        );
        assert_eq!(
            DispatchPolicy::from_env(KernelClass::Sddmm).threshold,
            DEFAULT_SDDMM_THRESHOLD
        );
    }
}
