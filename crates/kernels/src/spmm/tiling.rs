//! Shared 2D-tiling helper for the hybrid sparse-dense baselines.
//!
//! bSpMM, tSparse and Triton all view the raw adjacency as a grid of
//! `blk × blk` tiles (no SGT condensation). This module groups a block
//! row's edges by column block, which is the unit those kernels process.

use tcg_graph::CsrGraph;

/// One non-empty `blk × blk` tile of the raw adjacency.
#[derive(Debug, Clone)]
pub(crate) struct Tile {
    /// Column-block index (`neighbor_id / blk`).
    pub col_block: u32,
    /// Entries as `(row_in_tile, col_in_tile, global_edge_index)`.
    pub entries: Vec<(u8, u8, usize)>,
}

/// Collects the non-empty tiles of block row `br` (rows
/// `[br·blk, (br+1)·blk)`), sorted by column block.
pub(crate) fn block_row_tiles(csr: &CsrGraph, br: usize, blk: usize) -> Vec<Tile> {
    let n = csr.num_nodes();
    let row_lo = br * blk;
    let row_hi = (row_lo + blk).min(n);
    // (col_block, r, c, edge) tuples, then group.
    let mut tuples: Vec<(u32, u8, u8, usize)> = Vec::new();
    for v in row_lo..row_hi {
        let e_lo = csr.node_pointer()[v];
        for (i, &u) in csr.neighbors(v).iter().enumerate() {
            let cb = u / blk as u32;
            tuples.push(((cb), (v - row_lo) as u8, (u as usize % blk) as u8, e_lo + i));
        }
    }
    tuples.sort_unstable_by_key(|t| t.0);
    let mut tiles: Vec<Tile> = Vec::new();
    for (cb, r, c, e) in tuples {
        match tiles.last_mut() {
            Some(t) if t.col_block == cb => t.entries.push((r, c, e)),
            _ => tiles.push(Tile {
                col_block: cb,
                entries: vec![(r, c, e)],
            }),
        }
    }
    tiles
}

/// Number of block rows for a `blk`-sized tiling.
pub(crate) fn num_block_rows(csr: &CsrGraph, blk: usize) -> usize {
    csr.num_nodes().div_ceil(blk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcg_graph::gen;

    #[test]
    fn tiles_cover_all_edges_exactly_once() {
        let g = gen::rmat_default(500, 4000, 1).unwrap();
        let blk = 16;
        let mut seen = vec![false; g.num_edges()];
        for br in 0..num_block_rows(&g, blk) {
            for tile in block_row_tiles(&g, br, blk) {
                for &(r, c, e) in &tile.entries {
                    assert!(!seen[e], "edge {e} appeared twice");
                    seen[e] = true;
                    // Consistency with the CSR.
                    let src = br * blk + r as usize;
                    let dst = tile.col_block as usize * blk + c as usize;
                    assert!(g.has_edge(src, dst as u32));
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "every edge must be tiled");
    }

    #[test]
    fn tiles_sorted_and_disjoint() {
        let g = gen::erdos_renyi(300, 2500, 2).unwrap();
        for br in 0..num_block_rows(&g, 16) {
            let tiles = block_row_tiles(&g, br, 16);
            for w in tiles.windows(2) {
                assert!(w[0].col_block < w[1].col_block);
            }
        }
    }

    #[test]
    fn ragged_last_block_row() {
        let g = gen::erdos_renyi(23, 100, 3).unwrap();
        assert_eq!(num_block_rows(&g, 16), 2);
        // No panics, rows within bounds.
        for br in 0..2 {
            for t in block_row_tiles(&g, br, 16) {
                for &(r, _, _) in &t.entries {
                    assert!(br * 16 + (r as usize) < 23);
                }
            }
        }
    }
}
