//! GE-SpMM (Huang et al., SC'20): CUDA-core SpMM with coalesced row caching
//! and coarse-grained warp merging.
//!
//! Two improvements over the plain CSR-vector kernel: the row's column
//! indices are staged once into shared memory by a coalesced load and then
//! read from there by all lanes (Coalesced Row Caching), and each warp
//! processes two rows (Coarse-grained Warp Merging) to amortize index
//! loads and raise ILP. The dense-row gather remains irregular — GE-SpMM
//! improves over cuSPARSE but stays CUDA-core-bound, which is exactly
//! where the paper positions it (§3.1).

use tcg_gpusim::{GridConfig, KernelReport, Launcher};
use tcg_tensor::DenseMatrix;

use crate::common::{SpmmKernel, SpmmProblem, TcgError};

/// GE-SpMM-style kernel: row caching + warp merging.
#[derive(Debug, Clone, Default)]
pub struct GeSpmm;

/// Rows merged per warp.
const MERGE: usize = 2;
/// Warps per block.
const WARPS: usize = 4;
/// Rows per thread block.
const ROWS_PER_BLOCK: usize = MERGE * WARPS;

impl SpmmKernel for GeSpmm {
    fn name(&self) -> &'static str {
        "ge-spmm"
    }

    fn execute(
        &self,
        launcher: &mut Launcher,
        prob: &SpmmProblem<'_>,
    ) -> Result<(DenseMatrix, KernelReport), TcgError> {
        let csr = prob.csr;
        let n = csr.num_nodes();
        let d = prob.dim();
        let mut out = DenseMatrix::zeros(n, d);

        let buf_ptr = launcher.try_alloc(csr.node_pointer().len() * 8)?;
        let buf_edges = launcher.try_alloc(csr.num_edges() * 4)?;
        let buf_vals = launcher.try_alloc(csr.num_edges() * 4)?;
        let buf_x = launcher.try_alloc_f32(prob.x.len())?;
        let buf_out = launcher.try_alloc_f32(out.len())?;

        let num_blocks = n.div_ceil(ROWS_PER_BLOCK) as u64;
        let cfg = GridConfig {
            block_size: (WARPS * 32) as u32,
            // Row cache: 32 column indices (+ values) per warp.
            shared_mem_bytes: WARPS * 32 * 8,
            regs_per_thread: 48,
        };

        let mut row_bases: Vec<u64> = Vec::with_capacity(64);
        launcher.preflight("ge-spmm", &cfg)?;
        let stats = launcher.launch(cfg, num_blocks, |ctx| {
            let row0 = ctx.block_id as usize * ROWS_PER_BLOCK;
            let row1 = (row0 + ROWS_PER_BLOCK).min(n);
            // Row pointers for the whole block: one coalesced load.
            ctx.ld_global_contiguous(buf_ptr.addr(row0, 8), row1 - row0 + 1, 8);
            for pair0 in (row0..row1).step_by(MERGE) {
                let pair1 = (pair0 + MERGE).min(row1);
                // Merged rows share index-staging instructions.
                for v in pair0..pair1 {
                    let lo = csr.node_pointer()[v];
                    let hi = csr.node_pointer()[v + 1];
                    if hi == lo {
                        continue;
                    }
                    // Coalesced Row Caching: indices through shared memory.
                    ctx.ld_global_contiguous(buf_edges.addr(lo, 4), hi - lo, 4);
                    ctx.shared_access(((hi - lo) as u64).div_ceil(32));
                    if prob.edge_values.is_some() {
                        ctx.ld_global_contiguous(buf_vals.addr(lo, 4), hi - lo, 4);
                    }
                    row_bases.clear();
                    row_bases.extend(
                        csr.neighbors(v)
                            .iter()
                            .map(|&u| buf_x.f32_addr(u as usize * d)),
                    );
                    ctx.ld_global_gather_rows(&row_bases, d, 4);
                    // Warp merging halves per-row FMA instruction overhead.
                    ctx.fma_warps(
                        (((hi - lo) * d) as u64)
                            .div_ceil((32 * MERGE) as u64)
                            .max(1),
                    );

                    let orow = out.row_mut(v);
                    for (i, &u) in csr.neighbors(v).iter().enumerate() {
                        let w = prob.value(lo + i);
                        let xrow = prob.x.row(u as usize);
                        for (o, &xv) in orow.iter_mut().zip(xrow) {
                            *o += w * xv;
                        }
                    }
                    ctx.st_global_contiguous(buf_out.f32_addr(v * d), d, 4);
                }
            }
        });
        let report = tcg_gpusim::cost::analyze(launcher.device(), &stats);
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{kernel_tolerance, reference_spmm};
    use crate::spmm::cusparse::CusparseCsrSpmm;
    use tcg_graph::gen;
    use tcg_tensor::init;

    #[test]
    fn matches_reference() {
        let g = gen::citation(300, 2500, 1).unwrap();
        let x = init::uniform(300, 20, -1.0, 1.0, 2);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (out, _) = GeSpmm.execute(&mut l, &prob).unwrap();
        let reference = reference_spmm(&prob);
        assert!(out.max_abs_diff(&reference).unwrap() < kernel_tolerance(64, 20, 4.0));
    }

    #[test]
    fn fewer_instructions_than_cusparse() {
        let g = gen::rmat_default(4096, 40_000, 3).unwrap();
        let x = init::uniform(4096, 32, -1.0, 1.0, 4);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut l1 = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (_, r_ge) = GeSpmm.execute(&mut l1, &prob).unwrap();
        let mut l2 = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (_, r_cu) = CusparseCsrSpmm.execute(&mut l2, &prob).unwrap();
        assert!(
            r_ge.stats.warp_instructions < r_cu.stats.warp_instructions,
            "GE-SpMM {} vs cuSPARSE {}",
            r_ge.stats.warp_instructions,
            r_cu.stats.warp_instructions
        );
    }

    #[test]
    fn weighted_aggregation_correct() {
        let g = gen::erdos_renyi(200, 1500, 5).unwrap();
        let x = init::uniform(200, 16, -1.0, 1.0, 6);
        let vals: Vec<f32> = (0..g.num_edges()).map(|e| (e % 5) as f32 * 0.3).collect();
        let prob = SpmmProblem::new(&g, Some(&vals), &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (out, _) = GeSpmm.execute(&mut l, &prob).unwrap();
        assert!(out.max_abs_diff(&reference_spmm(&prob)).unwrap() < 1e-2);
    }
}
