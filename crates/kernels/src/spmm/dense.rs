//! Dense-GEMM aggregation (§3.2): treat the adjacency as a dense `N×N`
//! matrix and call a cuBLAS-class GEMM on CUDA cores or tensor cores.
//!
//! Works only when `N²` floats fit on the device — the paper's Table 2
//! shows this failing by orders of magnitude on medium graphs (OVCAR-8H
//! would need 14.3 TB), with effective compute below 0.4%. The kernel
//! reproduces both failure modes: [`TcgError::MemoryExceeded`] on large
//! graphs, and wasted work (FLOPs on zeros) accounted on feasible ones.

use tcg_gpusim::{cost, KernelReport, Launcher};
use tcg_tensor::DenseMatrix;

use crate::common::{reference_spmm, SpmmKernel, SpmmProblem, TcgError};

/// Dense-GEMM aggregation baseline.
#[derive(Debug, Clone)]
pub struct DenseGemmSpmm {
    /// Run the GEMM on tensor cores (cublasSgemmEx/TF-32) vs CUDA cores.
    pub on_tcu: bool,
    /// Device memory capacity for the feasibility check (bytes).
    pub memory_capacity_bytes: u128,
    /// Materialize the dense adjacency and really multiply when
    /// `N ≤ dense_exec_limit` (tests); above it, the result is computed via
    /// the mathematically identical sparse path while the *cost* remains
    /// the dense GEMM's.
    pub dense_exec_limit: usize,
}

impl Default for DenseGemmSpmm {
    fn default() -> Self {
        DenseGemmSpmm {
            on_tcu: false,
            // RTX 3090: 24 GB.
            memory_capacity_bytes: 24 * 1024 * 1024 * 1024,
            dense_exec_limit: 4096,
        }
    }
}

impl DenseGemmSpmm {
    /// Tensor-core variant.
    pub fn tcu() -> Self {
        DenseGemmSpmm {
            on_tcu: true,
            ..Default::default()
        }
    }

    /// Bytes the dense adjacency requires — Table 2's "Memory" column.
    pub fn dense_memory_bytes(num_nodes: usize) -> u128 {
        num_nodes as u128 * num_nodes as u128 * 4
    }
}

impl SpmmKernel for DenseGemmSpmm {
    fn name(&self) -> &'static str {
        if self.on_tcu {
            "dense-gemm-tcu"
        } else {
            "dense-gemm-cuda"
        }
    }

    fn execute(
        &self,
        launcher: &mut Launcher,
        prob: &SpmmProblem<'_>,
    ) -> Result<(DenseMatrix, KernelReport), TcgError> {
        let n = prob.csr.num_nodes();
        let d = prob.dim();
        let required = Self::dense_memory_bytes(n) + (n * d * 8) as u128;
        if required > self.memory_capacity_bytes {
            return Err(TcgError::MemoryExceeded {
                required_bytes: required,
                capacity_bytes: self.memory_capacity_bytes,
            });
        }

        let out = if n <= self.dense_exec_limit {
            // Really materialize A and multiply.
            let mut a = DenseMatrix::zeros(n, n);
            let mut e = 0usize;
            for v in 0..n {
                for &u in prob.csr.neighbors(v) {
                    a.set(v, u as usize, prob.value(e));
                    e += 1;
                }
            }
            if self.on_tcu {
                tcg_tensor::gemm::gemm_tf32(&a, prob.x).expect("shapes agree")
            } else {
                tcg_tensor::gemm::gemm(&a, prob.x).expect("shapes agree")
            }
        } else {
            // Identical result without the N² host allocation.
            reference_spmm(prob)
        };

        let report = cost::dense_gemm_report(launcher.device(), n, n, d, self.on_tcu);
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{kernel_tolerance, reference_spmm};
    use tcg_graph::gen;
    use tcg_tensor::init;

    #[test]
    fn matches_reference_when_feasible() {
        let g = gen::erdos_renyi(300, 3000, 1).unwrap();
        let x = init::uniform(300, 16, -1.0, 1.0, 2);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (out, report) = DenseGemmSpmm::default().execute(&mut l, &prob).unwrap();
        assert!(out.max_abs_diff(&reference_spmm(&prob)).unwrap() < kernel_tolerance(64, 16, 4.0));
        assert!(report.time_ms > 0.0);
    }

    #[test]
    fn tcu_variant_matches_with_tf32_tolerance() {
        let g = gen::erdos_renyi(200, 1500, 3).unwrap();
        let x = init::uniform(200, 16, -1.0, 1.0, 4);
        let vals: Vec<f32> = (0..g.num_edges()).map(|e| 0.2 + (e % 4) as f32).collect();
        let prob = SpmmProblem::new(&g, Some(&vals), &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (out, report) = DenseGemmSpmm::tcu().execute(&mut l, &prob).unwrap();
        assert!(out.max_abs_diff(&reference_spmm(&prob)).unwrap() < kernel_tolerance(200, 16, 8.0));
        assert!(report.stats.tcu_flops > 0);
    }

    #[test]
    fn rejects_large_graphs() {
        // Table 2's point: 334,925-node DD would need 448 GB.
        let g = tcg_graph::CsrGraph::from_raw(334_925, vec![0; 334_926], vec![]).unwrap();
        let x = DenseMatrix::zeros(334_925, 4);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let err = DenseGemmSpmm::default().execute(&mut l, &prob).unwrap_err();
        match err {
            TcgError::MemoryExceeded { required_bytes, .. } => {
                // 448.70 GB in the paper.
                let gb = required_bytes as f64 / 1e9;
                assert!((400.0..500.0).contains(&gb), "{gb} GB");
            }
            other => panic!("expected MemoryExceeded, got {other}"),
        }
    }

    #[test]
    fn dense_memory_matches_table2() {
        // OVCAR-8H: 1,890,931 nodes → paper reports 14302.48 GB (GiB-based).
        let bytes = DenseGemmSpmm::dense_memory_bytes(1_890_931);
        let gib = bytes as f64 / (1024.0 * 1024.0 * 1024.0);
        assert!((gib - 13320.0).abs() / 13320.0 < 0.15, "{gib} GiB");
    }

    #[test]
    fn wasted_work_dwarfs_sparse_flops() {
        let g = gen::erdos_renyi(1024, 4000, 5).unwrap();
        let x = init::uniform(1024, 16, -1.0, 1.0, 6);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (_, report) = DenseGemmSpmm::default().execute(&mut l, &prob).unwrap();
        let useful = 2 * g.num_edges() as u64 * 16;
        assert!(
            report.stats.fp32_flops > 50 * useful,
            "dense path must burn much more than the sparse work"
        );
    }
}
