//! cuSPARSE Blocked-ELL SpMM (`bSpMM`) — the TCU hybrid baseline of
//! Figure 6(c).
//!
//! Blocked-ELL requires every block row to store the *same* number of
//! column blocks (`ell_cols = max over block rows`), padding the rest with
//! all-zero blocks. On irregular graphs the hub block-row dictates massive
//! padding — the "redundant computations on padding those non-structural
//! zero blocks" the paper credits for TC-GNN's 1.76× advantage. Padding
//! blocks are traversed, loaded and MMA'd like real ones (that is the
//! format's semantics) but contribute nothing to the output.

use tcg_gpusim::wmma::MMA_FLOPS;
use tcg_gpusim::{GridConfig, KernelReport, Launcher};
use tcg_tensor::DenseMatrix;

use crate::common::{SpmmKernel, SpmmProblem, TcgError};
use crate::spmm::tiling::{block_row_tiles, num_block_rows};

/// Blocked-ELL block edge (cuSPARSE supports powers of two; the paper's TCU
/// geometry makes 16 the natural choice).
pub const ELL_BLK: usize = 16;

/// Blocked-ELL SpMM baseline.
#[derive(Debug, Clone)]
pub struct BlockedEllSpmm {
    /// Device capacity for the materialized values array (bytes).
    pub memory_capacity_bytes: u128,
}

impl Default for BlockedEllSpmm {
    fn default() -> Self {
        BlockedEllSpmm {
            memory_capacity_bytes: 24 * 1024 * 1024 * 1024,
        }
    }
}

impl BlockedEllSpmm {
    /// `(ell_cols, total_slots)` for a graph: the padded width and the
    /// total number of stored blocks.
    pub fn ell_shape(csr: &tcg_graph::CsrGraph) -> (usize, usize) {
        let brs = num_block_rows(csr, ELL_BLK);
        let mut ell_cols = 0usize;
        for br in 0..brs {
            ell_cols = ell_cols.max(block_row_tiles(csr, br, ELL_BLK).len());
        }
        (ell_cols, ell_cols * brs)
    }

    /// Bytes of the Blocked-ELL values array.
    pub fn memory_bytes(csr: &tcg_graph::CsrGraph) -> u128 {
        let (_, slots) = Self::ell_shape(csr);
        slots as u128 * (ELL_BLK * ELL_BLK * 4) as u128
    }
}

impl SpmmKernel for BlockedEllSpmm {
    fn name(&self) -> &'static str {
        "blocked-ell"
    }

    fn execute(
        &self,
        launcher: &mut Launcher,
        prob: &SpmmProblem<'_>,
    ) -> Result<(DenseMatrix, KernelReport), TcgError> {
        let csr = prob.csr;
        let n = csr.num_nodes();
        let d = prob.dim();
        let required = Self::memory_bytes(csr);
        if required > self.memory_capacity_bytes {
            return Err(TcgError::MemoryExceeded {
                required_bytes: required,
                capacity_bytes: self.memory_capacity_bytes,
            });
        }
        let (ell_cols, slots) = Self::ell_shape(csr);
        let mut out = DenseMatrix::zeros(n, d);
        // Heavily padded layouts (power-law block rows) would spend minutes
        // cache-simulating billions of identical all-zero-block accesses;
        // above this slot count the padding traffic is batch-charged
        // analytically (streamed values array → DRAM; X tile → L2-resident)
        // while real tiles still run through the full simulation.
        const FAST_PATH_SLOTS: usize = 1_000_000;
        let fast_padding = slots > FAST_PATH_SLOTS;

        let buf_colind = launcher.try_alloc(num_block_rows(csr, ELL_BLK) * ell_cols * 4)?;
        let buf_values =
            launcher.try_alloc(num_block_rows(csr, ELL_BLK) * ell_cols * ELL_BLK * ELL_BLK * 4)?;
        let buf_x = launcher.try_alloc_f32(prob.x.len())?;
        let buf_out = launcher.try_alloc_f32(out.len())?;

        let slabs = d.div_ceil(16);
        let brs = num_block_rows(csr, ELL_BLK);
        let cfg = GridConfig {
            block_size: 128,
            shared_mem_bytes: (ELL_BLK * ELL_BLK + 16 * ELL_BLK) * 4,
            regs_per_thread: 64,
        };

        let mut acc = vec![0.0f32; ELL_BLK * 16];
        let mut padding_slots_skipped: u64 = 0;
        let stats_ref = &mut padding_slots_skipped;
        launcher.preflight("blocked-ell", &cfg)?;
        let stats = launcher.launch(cfg, brs as u64, |ctx| {
            let br = ctx.block_id as usize;
            let tiles = block_row_tiles(csr, br, ELL_BLK);
            let row_lo = br * ELL_BLK;
            let row_hi = (row_lo + ELL_BLK).min(n);
            let slot_count = if fast_padding {
                *stats_ref += (ell_cols - tiles.len()) as u64;
                tiles.len()
            } else {
                ell_cols
            };

            for s in 0..slabs {
                let dim0 = s * 16;
                let width = (d - dim0).min(16);
                acc.iter_mut().for_each(|v| *v = 0.0);

                for slot in 0..slot_count {
                    // Column-index and values loads happen for every slot,
                    // padding included — the format stores them all.
                    ctx.ld_global_scalar(buf_colind.addr(br * ell_cols + slot, 4));
                    ctx.ld_global_contiguous(
                        buf_values.addr((br * ell_cols + slot) * ELL_BLK * ELL_BLK, 4),
                        ELL_BLK * ELL_BLK,
                        4,
                    );
                    ctx.shared_access(((ELL_BLK * ELL_BLK) as u64).div_ceil(32));

                    let tile = tiles.get(slot);
                    let col_base = tile.map_or(0, |t| t.col_block as usize * ELL_BLK);
                    // X tile gather: 16 rows × slab width.
                    let bases: Vec<u64> = (0..ELL_BLK)
                        .map(|k| buf_x.f32_addr((col_base + k).min(n.saturating_sub(1)) * d + dim0))
                        .collect();
                    ctx.ld_global_gather_rows(&bases, width, 4);

                    // A 16×16 tile = two m16n16k8 MMAs per slab.
                    ctx.shared_access(8);
                    ctx.tcu_mma(MMA_FLOPS);
                    ctx.tcu_mma(MMA_FLOPS);

                    // Functional work only for real tiles.
                    if let Some(t) = tile {
                        for &(r, c, e) in &t.entries {
                            let w = prob.value(e);
                            let u = t.col_block as usize * ELL_BLK + c as usize;
                            let xrow = prob.x.row(u);
                            let arow = &mut acc[r as usize * 16..(r as usize + 1) * 16];
                            for (j, a) in arow.iter_mut().take(width).enumerate() {
                                *a += w * xrow[dim0 + j];
                            }
                        }
                    }
                }

                // Store this slab of the block row.
                let bases: Vec<u64> = (row_lo..row_hi)
                    .map(|r| buf_out.f32_addr(r * d + dim0))
                    .collect();
                ctx.st_global_gather_rows(&bases, width, 4);
                for (ri, r) in (row_lo..row_hi).enumerate() {
                    let orow = out.row_mut(r);
                    orow[dim0..dim0 + width].copy_from_slice(&acc[ri * 16..ri * 16 + width]);
                }
            }
        });
        let mut stats = stats;
        if fast_padding && padding_slots_skipped > 0 {
            // Batch-charge the skipped padding slots (per slot and slab:
            // one index scalar + a streamed 1 KiB values block from DRAM,
            // an L2-resident X tile gather, two MMAs, shared staging).
            let per = padding_slots_skipped * slabs as u64;
            stats.warp_instructions += per * 44;
            stats.int_ops += per * 64;
            stats.gl_load_transactions += per * (1 + 32 + 32);
            stats.l1_misses += per * (1 + 32 + 32);
            stats.l2_misses += per * 33;
            stats.l2_hits += per * 32;
            stats.dram_read_bytes += per * 33 * 32;
            stats.tcu_mma_instructions += per * 2;
            stats.tcu_flops += per * 2 * MMA_FLOPS;
            stats.shared_transactions += per * 17;
        }
        let report = tcg_gpusim::cost::analyze(launcher.device(), &stats);
        Ok((out, report))
    }
}

/// Blocked-ELL over the **SGT-condensed** matrix — the fair Figure 6(c)
/// configuration.
///
/// Feeding the raw adjacency to Blocked-ELL is catastrophic on power-law
/// graphs (one hub block-row dictates the padded width for all rows); the
/// sane deployment — and the only reading consistent with the paper's
/// measured 1.76× — converts the *condensed* matrix, so bSpMM and TC-GNN
/// traverse the same non-zero structure. What remains of bSpMM's deficit is
/// inherent to the format: every window padded to the widest window's block
/// count, and dense per-block value storage (512 B per 16×8 block) instead
/// of TC-GNN's packed 1 B/nnz metadata.
#[derive(Debug, Clone)]
pub struct CondensedEllSpmm {
    translated: tcg_sgt::TranslatedGraph,
}

impl CondensedEllSpmm {
    /// Builds the condensed Blocked-ELL kernel (runs SGT).
    pub fn new(csr: &tcg_graph::CsrGraph) -> Self {
        CondensedEllSpmm {
            translated: tcg_sgt::Sgt::builder()
                .translate(csr)
                .expect("default SGT geometry is valid"),
        }
    }

    /// Wraps an existing translation.
    pub fn from_translated(translated: tcg_sgt::TranslatedGraph) -> Self {
        CondensedEllSpmm { translated }
    }

    /// Padded width: the maximum condensed block count over all windows.
    pub fn ell_cols(&self) -> usize {
        self.translated
            .win_partition
            .iter()
            .map(|&b| b as usize)
            .max()
            .unwrap_or(0)
    }

    /// Ratio of padded slots to real condensed blocks.
    pub fn padding_ratio(&self) -> f64 {
        let real = self.translated.total_tc_blocks().max(1);
        (self.ell_cols() as u64 * self.translated.num_row_windows as u64) as f64 / real as f64
    }
}

impl SpmmKernel for CondensedEllSpmm {
    fn name(&self) -> &'static str {
        "blocked-ell-condensed"
    }

    fn execute(
        &self,
        launcher: &mut Launcher,
        prob: &SpmmProblem<'_>,
    ) -> Result<(DenseMatrix, KernelReport), TcgError> {
        let csr = prob.csr;
        let t = &self.translated;
        if t.edge_to_col.len() != csr.num_edges() {
            return Err(TcgError::DimMismatch {
                what: "translation edge count vs graph",
                expected: csr.num_edges(),
                actual: t.edge_to_col.len(),
            });
        }
        let n = csr.num_nodes();
        let d = prob.dim();
        let ell_cols = self.ell_cols();
        let slabs = d.div_ceil(16);
        let blk_elems = tcg_sgt::TC_BLK_H * tcg_sgt::TC_BLK_W; // dense 16×8 values
        let mut out = DenseMatrix::zeros(n, d);

        let buf_colind = launcher.try_alloc(t.num_row_windows * ell_cols * 4 + 4)?;
        let buf_values = launcher.try_alloc(t.num_row_windows * ell_cols * blk_elems * 4 + 4)?;
        let buf_atox = launcher.try_alloc(t.block_atox.len() * 4 + 4)?;
        let buf_x = launcher.try_alloc_f32(prob.x.len())?;
        let buf_out = launcher.try_alloc_f32(out.len())?;

        let cfg = GridConfig {
            block_size: 128,
            shared_mem_bytes: (blk_elems + 16 * 16) * 4,
            regs_per_thread: 64,
        };

        let mut acc = vec![0.0f32; tcg_sgt::TC_BLK_H * 16];
        let mut padding_slots: u64 = 0;
        let pad_ref = &mut padding_slots;
        launcher.preflight("blocked-ell-condensed", &cfg)?;
        let stats = launcher.launch(cfg, t.num_row_windows as u64, |ctx| {
            let w = ctx.block_id as usize;
            let real = t.win_partition[w] as usize;
            *pad_ref += (ell_cols - real) as u64;
            let row_lo = w * tcg_sgt::TC_BLK_H;
            let row_hi = (row_lo + tcg_sgt::TC_BLK_H).min(n);

            for s in 0..slabs {
                let dim0 = s * 16;
                let width = (d - dim0).min(16);
                acc.iter_mut().for_each(|v| *v = 0.0);
                for i in 0..real {
                    let b = t.win_block_start[w] + i;
                    let slot = w * ell_cols + i;
                    // Dense block values + column ids (the ELL arrays).
                    ctx.ld_global_scalar(buf_colind.addr(slot, 4));
                    ctx.ld_global_contiguous(buf_values.addr(slot * blk_elems, 4), blk_elems, 4);
                    ctx.shared_access((blk_elems as u64).div_ceil(32));
                    // X gather for this block's (condensed) columns.
                    let atox = t.block_atox(b);
                    ctx.ld_global_contiguous(buf_atox.addr(t.block_atox_ptr[b], 4), atox.len(), 4);
                    let bases: Vec<u64> = atox
                        .iter()
                        .filter(|&&u| u != u32::MAX)
                        .map(|&u| buf_x.f32_addr(u as usize * d + dim0))
                        .collect();
                    ctx.ld_global_gather_rows(&bases, width, 4);
                    ctx.shared_access(8);
                    ctx.tcu_mma(MMA_FLOPS);

                    // Functional accumulation from the block's edge chunk.
                    let (c_lo, c_hi) = t.block_chunk(b);
                    for pos in c_lo..c_hi {
                        let (r, c) = t.unpack(t.perm_pack[pos]);
                        let u = atox[c] as usize;
                        let wgt = prob.value(t.perm_orig[pos] as usize);
                        let xrow = prob.x.row(u);
                        let arow = &mut acc[r * 16..(r + 1) * 16];
                        for (j, a) in arow.iter_mut().take(width).enumerate() {
                            *a += wgt * xrow[dim0 + j];
                        }
                    }
                }
                let bases: Vec<u64> = (row_lo..row_hi)
                    .map(|r| buf_out.f32_addr(r * d + dim0))
                    .collect();
                ctx.st_global_gather_rows(&bases, width, 4);
                for (ri, r) in (row_lo..row_hi).enumerate() {
                    let orow = out.row_mut(r);
                    orow[dim0..dim0 + width].copy_from_slice(&acc[ri * 16..ri * 16 + width]);
                }
            }
        });
        // Padding slots: identical loads + MMA, no useful work — batch
        // charged (streamed dense values → DRAM; index + tiny X gather).
        let mut stats = stats;
        if padding_slots > 0 {
            let per = padding_slots * slabs as u64;
            let val_sectors = (blk_elems as u64 * 4).div_ceil(32);
            stats.warp_instructions += per * (val_sectors + 12);
            stats.int_ops += per * 40;
            stats.gl_load_transactions += per * (1 + val_sectors + 16);
            stats.l1_misses += per * (1 + val_sectors + 16);
            stats.l2_misses += per * (1 + val_sectors);
            stats.l2_hits += per * 16;
            stats.dram_read_bytes += per * (1 + val_sectors) * 32;
            stats.tcu_mma_instructions += per;
            stats.tcu_flops += per * MMA_FLOPS;
            stats.shared_transactions += per * (val_sectors + 8);
        }
        let report = tcg_gpusim::cost::analyze(launcher.device(), &stats);
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{kernel_tolerance, reference_spmm};
    use crate::spmm::tcgnn::TcgnnSpmm;
    use tcg_graph::gen;
    use tcg_tensor::init;

    #[test]
    fn condensed_ell_matches_reference() {
        let g = gen::rmat_default(512, 5000, 21).unwrap();
        let x = init::uniform(512, 24, -1.0, 1.0, 22);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (out, report) = CondensedEllSpmm::new(&g).execute(&mut l, &prob).unwrap();
        assert!(out.max_abs_diff(&reference_spmm(&prob)).unwrap() < kernel_tolerance(64, 24, 4.0));
        assert!(report.stats.tcu_mma_instructions > 0);
    }

    #[test]
    fn condensed_ell_weighted_matches_reference() {
        let g = gen::citation(300, 2400, 23).unwrap();
        let x = init::uniform(300, 16, -1.0, 1.0, 24);
        let vals: Vec<f32> = (0..g.num_edges()).map(|e| 0.3 + (e % 5) as f32).collect();
        let prob = SpmmProblem::new(&g, Some(&vals), &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (out, _) = CondensedEllSpmm::new(&g).execute(&mut l, &prob).unwrap();
        assert!(out.max_abs_diff(&reference_spmm(&prob)).unwrap() < kernel_tolerance(64, 16, 8.0));
    }

    #[test]
    fn condensed_ell_slower_than_tcgnn_but_far_better_than_raw() {
        let g = gen::rmat_default(4096, 40_000, 25).unwrap();
        let x = init::uniform(4096, 16, -1.0, 1.0, 26);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let run = |k: &dyn SpmmKernel| {
            let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
            k.execute(&mut l, &prob).unwrap().1.time_ms
        };
        let t_tc = run(&TcgnnSpmm::new(&g));
        let t_cond = run(&CondensedEllSpmm::new(&g));
        let t_raw = run(&BlockedEllSpmm::default());
        assert!(
            t_cond > t_tc,
            "padding + dense storage must cost: {t_cond} vs {t_tc}"
        );
        assert!(
            t_cond < t_raw,
            "condensation must tame ELL: {t_cond} vs {t_raw}"
        );
    }

    #[test]
    fn padding_ratio_reflects_skew() {
        let skewed = gen::rmat_default(4096, 40_000, 27).unwrap();
        let regular = gen::watts_strogatz(4096, 10, 0.05, 27).unwrap();
        let p_skew = CondensedEllSpmm::new(&skewed).padding_ratio();
        let p_reg = CondensedEllSpmm::new(&regular).padding_ratio();
        assert!(p_skew > p_reg, "skewed {p_skew} vs regular {p_reg}");
        assert!(p_reg >= 1.0);
    }

    #[test]
    fn matches_reference() {
        let g = gen::erdos_renyi(256, 2000, 1).unwrap();
        let x = init::uniform(256, 16, -1.0, 1.0, 2);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (out, report) = BlockedEllSpmm::default().execute(&mut l, &prob).unwrap();
        assert!(out.max_abs_diff(&reference_spmm(&prob)).unwrap() < kernel_tolerance(64, 16, 4.0));
        assert!(report.stats.tcu_mma_instructions > 0);
    }

    #[test]
    fn weighted_matches_reference() {
        let g = gen::citation(200, 1500, 3).unwrap();
        let x = init::uniform(200, 20, -1.0, 1.0, 4);
        let vals: Vec<f32> = (0..g.num_edges()).map(|e| 0.5 + (e % 3) as f32).collect();
        let prob = SpmmProblem::new(&g, Some(&vals), &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (out, _) = BlockedEllSpmm::default().execute(&mut l, &prob).unwrap();
        assert!(out.max_abs_diff(&reference_spmm(&prob)).unwrap() < kernel_tolerance(64, 20, 8.0));
    }

    #[test]
    fn padding_inflates_work_on_skewed_graphs() {
        // R-MAT hubs force a wide ELL: mma count must exceed what the
        // condensed TC-GNN kernel issues, by a lot.
        let g = gen::rmat_default(2048, 20_000, 5).unwrap();
        let x = init::uniform(2048, 16, -1.0, 1.0, 6);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut l1 = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (_, r_ell) = BlockedEllSpmm::default().execute(&mut l1, &prob).unwrap();
        let mut l2 = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (_, r_tc) = TcgnnSpmm::new(&g).execute(&mut l2, &prob).unwrap();
        assert!(
            r_ell.stats.tcu_mma_instructions > 2 * r_tc.stats.tcu_mma_instructions,
            "ELL {} vs TC-GNN {}",
            r_ell.stats.tcu_mma_instructions,
            r_tc.stats.tcu_mma_instructions
        );
        assert!(r_ell.time_ms > r_tc.time_ms);
    }

    #[test]
    fn memory_check_rejects_pathological_graphs() {
        // A graph with one hub row touching every 16th column: ell_cols
        // explodes while edges stay few.
        let n = 200_000usize;
        let hub_neighbors: Vec<u32> = (0..(n as u32)).step_by(16).collect();
        let mut ptr = vec![0usize; n + 1];
        for p in ptr.iter_mut().skip(1) {
            *p = hub_neighbors.len();
        }
        let g = tcg_graph::CsrGraph::from_raw(n, ptr, hub_neighbors).unwrap();
        let x = DenseMatrix::zeros(n, 4);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let kernel = BlockedEllSpmm {
            memory_capacity_bytes: 1024 * 1024 * 1024, // 1 GB budget
        };
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        assert!(matches!(
            kernel.execute(&mut l, &prob),
            Err(TcgError::MemoryExceeded { .. })
        ));
    }

    #[test]
    fn ell_shape_is_max_row_width() {
        // Rows 0..16 have 2 tiles; rows 16..32 have 1.
        let mut ptr = vec![0usize; 33];
        let mut edges = Vec::new();
        // Row 0: neighbors 0 and 16 (two column blocks).
        edges.extend([0u32, 16]);
        ptr[1] = 2;
        for p in ptr.iter_mut().skip(2).take(15) {
            *p = 2;
        }
        // Row 16: neighbor 0 (one column block).
        edges.push(0);
        for p in ptr.iter_mut().skip(17) {
            *p = 3;
        }
        let g = tcg_graph::CsrGraph::from_raw(32, ptr, edges).unwrap();
        let (ell_cols, slots) = BlockedEllSpmm::ell_shape(&g);
        assert_eq!(ell_cols, 2);
        assert_eq!(slots, 4); // 2 block rows × 2
        assert_eq!(BlockedEllSpmm::memory_bytes(&g), 4 * 16 * 16 * 4);
    }
}
