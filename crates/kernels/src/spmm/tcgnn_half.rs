//! TC-GNN SpMM in half precision — the `m16n16k16` geometry §4.1 says the
//! design supports when the computation precision changes.
//!
//! The SGT translation runs with 16-wide blocks (`win_size × blk_w =
//! 16×16`, still one packed byte per non-zero); each condensed block then
//! needs a *single* FP16 MMA per 16-dim output slab instead of TF-32's two,
//! and half as many blocks exist per window. The trade: binary16's narrow
//! range (inputs beyond ±65504 saturate) and coarser values below 2⁻²⁴.

use tcg_gpusim::wmma::FragmentAcc;
use tcg_gpusim::wmma_half::{mma_sync_half, HalfFragmentA, HalfFragmentB, HALF_K, HALF_N};
use tcg_gpusim::{GridConfig, KernelReport, Launcher};
use tcg_graph::CsrGraph;
use tcg_sgt::{Sgt, TranslatedGraph, TC_BLK_H};
use tcg_tensor::DenseMatrix;

use crate::common::{SpmmKernel, SpmmProblem, TcgError};

/// Half-precision TC-GNN SpMM over a 16×16 translation.
#[derive(Debug, Clone)]
pub struct TcgnnSpmmHalf {
    translated: TranslatedGraph,
}

impl TcgnnSpmmHalf {
    /// Builds the kernel by running SGT with the FP16 block geometry.
    pub fn new(csr: &CsrGraph) -> Self {
        TcgnnSpmmHalf {
            translated: Sgt::builder()
                .window(TC_BLK_H)
                .block_width(HALF_K)
                .translate(csr)
                .expect("valid half-precision SGT geometry"),
        }
    }

    /// The 16×16 translation this kernel runs over.
    pub fn translated(&self) -> &TranslatedGraph {
        &self.translated
    }
}

impl SpmmKernel for TcgnnSpmmHalf {
    fn name(&self) -> &'static str {
        "tc-gnn-fp16"
    }

    fn execute(
        &self,
        launcher: &mut Launcher,
        prob: &SpmmProblem<'_>,
    ) -> Result<(DenseMatrix, KernelReport), TcgError> {
        let csr = prob.csr;
        let t = &self.translated;
        if t.edge_to_col.len() != csr.num_edges() {
            return Err(TcgError::DimMismatch {
                what: "translation edge count vs graph",
                expected: csr.num_edges(),
                actual: t.edge_to_col.len(),
            });
        }
        let n = csr.num_nodes();
        let d = prob.dim();
        let slabs = d.div_ceil(HALF_N);
        let mut out = DenseMatrix::zeros(n, d);

        let buf_pack = launcher.try_alloc(csr.num_edges())?;
        let buf_atox = launcher.try_alloc(t.block_atox.len() * 4 + 4)?;
        let buf_porig = launcher.try_alloc(csr.num_edges() * 4)?;
        let buf_vals = launcher.try_alloc(csr.num_edges() * 4)?;
        let buf_x = launcher.try_alloc_f32(prob.x.len())?;
        let buf_out = launcher.try_alloc_f32(out.len())?;

        let warps = slabs.clamp(4, 8);
        // FP16 tiles are stored as 2-byte values in shared memory: half the
        // staging footprint of the TF-32 kernel.
        let smem_bytes = TC_BLK_H * HALF_K * 2 + HALF_K * 4 + warps * HALF_K * HALF_N * 2;
        let cfg = GridConfig {
            block_size: (warps * 32) as u32,
            shared_mem_bytes: smem_bytes,
            regs_per_thread: 64,
        };

        let mut a_tile = vec![0.0f32; TC_BLK_H * HALF_K];
        let mut b_tile = vec![0.0f32; HALF_K * HALF_N];
        let mut accs: Vec<FragmentAcc> = (0..slabs).map(|_| FragmentAcc::default()).collect();
        let mut addr_scratch: Vec<u64> = Vec::with_capacity(64);

        launcher.preflight("tc-gnn-fp16", &cfg)?;
        let stats = launcher.launch(cfg, t.num_row_windows as u64, |ctx| {
            let w = ctx.block_id as usize;
            let num_blocks = t.win_partition[w] as usize;
            if num_blocks == 0 {
                return;
            }
            let row_lo = w * TC_BLK_H;
            let row_hi = (row_lo + TC_BLK_H).min(n);
            for acc in accs.iter_mut() {
                acc.zero();
            }
            for i in 0..num_blocks {
                let b = t.win_block_start[w] + i;
                let (c_lo, c_hi) = t.block_chunk(b);
                ctx.ld_global_contiguous(buf_pack.addr(c_lo, 1), c_hi - c_lo, 1);
                let atox = t.block_atox(b);
                ctx.ld_global_contiguous(buf_atox.addr(t.block_atox_ptr[b], 4), atox.len(), 4);
                if prob.edge_values.is_some() {
                    ctx.ld_global_contiguous(buf_porig.addr(c_lo, 4), c_hi - c_lo, 4);
                    addr_scratch.clear();
                    addr_scratch.extend(
                        t.perm_orig[c_lo..c_hi]
                            .iter()
                            .map(|&e| buf_vals.f32_addr(e as usize)),
                    );
                    for chunk in addr_scratch.chunks(32) {
                        ctx.ld_global_warp(chunk);
                    }
                }
                a_tile.iter_mut().for_each(|v| *v = 0.0);
                for pos in c_lo..c_hi {
                    let (r, c) = t.unpack(t.perm_pack[pos]);
                    a_tile[r * HALF_K + c] = prob.value(t.perm_orig[pos] as usize);
                }
                // FP16 staging: half the shared traffic of f32 tiles.
                ctx.shared_access(((TC_BLK_H * HALF_K) as u64 * 2).div_ceil(128).max(1));

                for (s, acc) in accs.iter_mut().enumerate() {
                    let dim0 = s * HALF_N;
                    let width = (d - dim0).min(HALF_N);
                    let bases: Vec<u64> = atox
                        .iter()
                        .filter(|&&u| u != u32::MAX)
                        .map(|&u| buf_x.f32_addr(u as usize * d + dim0))
                        .collect();
                    ctx.ld_global_gather_rows(&bases, width, 4);
                    ctx.shared_access(((HALF_K * HALF_N) as u64 * 2).div_ceil(128).max(1));
                    b_tile.iter_mut().for_each(|v| *v = 0.0);
                    for (k, &u) in atox.iter().enumerate() {
                        if u == u32::MAX {
                            continue;
                        }
                        let xrow = prob.x.row(u as usize);
                        for c in 0..width {
                            b_tile[k * HALF_N + c] = xrow[dim0 + c];
                        }
                    }
                    let mut fa = HalfFragmentA::default();
                    let mut fb = HalfFragmentB::default();
                    fa.load(&a_tile, HALF_K);
                    fb.load(&b_tile, HALF_N);
                    ctx.shared_access(8);
                    mma_sync_half(acc, &fa, &fb, ctx);
                }
            }
            ctx.syncthreads();
            for (s, acc) in accs.iter().enumerate() {
                let dim0 = s * HALF_N;
                let width = (d - dim0).min(HALF_N);
                let bases: Vec<u64> = (row_lo..row_hi)
                    .map(|r| buf_out.f32_addr(r * d + dim0))
                    .collect();
                ctx.st_global_gather_rows(&bases, width, 4);
                for (ri, r) in (row_lo..row_hi).enumerate() {
                    let orow = out.row_mut(r);
                    for c in 0..width {
                        orow[dim0 + c] = acc.get(ri, c);
                    }
                }
            }
        });
        let report = tcg_gpusim::cost::analyze(launcher.device(), &stats);
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{reference_spmm, SpmmKernel};
    use crate::spmm::tcgnn::TcgnnSpmm;
    use tcg_graph::gen;
    use tcg_tensor::f16::f16_rel_tolerance;
    use tcg_tensor::init;

    #[test]
    fn matches_reference_within_f16() {
        let g = gen::rmat_default(512, 5000, 31).unwrap();
        let x = init::uniform(512, 24, -1.0, 1.0, 32);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (out, report) = TcgnnSpmmHalf::new(&g).execute(&mut l, &prob).unwrap();
        let reference = reference_spmm(&prob);
        let tol = f16_rel_tolerance(64) * 16.0;
        assert!(out.max_abs_diff(&reference).unwrap() < tol);
        assert!(report.stats.tcu_mma_instructions > 0);
    }

    #[test]
    fn weighted_matches_reference() {
        let g = gen::citation(300, 2400, 33).unwrap();
        let x = init::uniform(300, 32, -1.0, 1.0, 34);
        let vals: Vec<f32> = (0..g.num_edges())
            .map(|e| 0.25 * ((e % 8) as f32))
            .collect();
        let prob = SpmmProblem::new(&g, Some(&vals), &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (out, _) = TcgnnSpmmHalf::new(&g).execute(&mut l, &prob).unwrap();
        assert!(out.max_abs_diff(&reference_spmm(&prob)).unwrap() < 0.1);
    }

    #[test]
    fn issues_fewer_mmas_than_tf32_kernel() {
        let g = gen::rmat_default(2048, 20_000, 35).unwrap();
        let x = init::uniform(2048, 32, -1.0, 1.0, 36);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut l1 = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (_, r_half) = TcgnnSpmmHalf::new(&g).execute(&mut l1, &prob).unwrap();
        let mut l2 = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (_, r_tf32) = TcgnnSpmm::new(&g).execute(&mut l2, &prob).unwrap();
        // 16-wide condensed blocks ⇒ roughly half the block count and one
        // MMA per slab instead of one per (block, slab) pair at width 8.
        assert!(
            r_half.stats.tcu_mma_instructions < r_tf32.stats.tcu_mma_instructions,
            "fp16 {} vs tf32 {}",
            r_half.stats.tcu_mma_instructions,
            r_tf32.stats.tcu_mma_instructions
        );
    }

    #[test]
    fn large_magnitudes_saturate() {
        // Values beyond the f16 range produce infinities — the documented
        // trade of the FP16 geometry.
        let g = gen::erdos_renyi(64, 400, 37).unwrap();
        let x = tcg_tensor::DenseMatrix::filled(64, 8, 1.0e6);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (out, _) = TcgnnSpmmHalf::new(&g).execute(&mut l, &prob).unwrap();
        assert!(out.as_slice().iter().any(|v| v.is_infinite()));
    }
}
