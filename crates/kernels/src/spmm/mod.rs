//! Neighbor-aggregation (SpMM) kernels.

pub mod bspmm;
pub mod cusparse;
pub mod dense;
pub mod gespmm;
pub mod hybrid;
pub mod scatter;
pub mod tcgnn;
pub mod tcgnn_half;
pub(crate) mod tiling;
pub mod triton;
pub mod tsparse;

pub use bspmm::{BlockedEllSpmm, CondensedEllSpmm};
pub use cusparse::CusparseCsrSpmm;
pub use dense::DenseGemmSpmm;
pub use gespmm::GeSpmm;
pub use hybrid::HybridSpmm;
pub use scatter::ScatterGatherSpmm;
pub use tcgnn::TcgnnSpmm;
pub use tcgnn_half::TcgnnSpmmHalf;
pub use triton::TritonBlockSparseSpmm;
pub use tsparse::TsparseLikeSpmm;
