//! Hybrid TCU/CUDA-core SpMM: one launch, per-row-window dispatch.
//!
//! Every SGT row window is routed by [`DispatchPolicy`] (or a forced mask)
//! to either the TC-GNN tensor-core formulation or a cuSPARSE-style scalar
//! walk scoped to the window's rows, inside a *single* kernel launch. Each
//! window's body replays the chosen pure kernel's charges and functional
//! arithmetic exactly:
//!
//! - **TCU windows** run [`super::tcgnn::TcgnnSpmm`]'s window body verbatim
//!   (same staging, same MMA order, same stores), so their output slab is
//!   bitwise identical to the pure TCU kernel's.
//! - **CUDA-core windows** run [`super::cusparse::CusparseCsrSpmm`]'s
//!   lockstep row walk restricted to the window's ≤16 rows. The pure
//!   kernel's functional accumulation is *per row in CSR edge order* —
//!   independent of how rows are grouped into blocks — so the window's rows
//!   are bitwise identical to the pure CUDA-core kernel's, while the
//!   divergence charge shrinks (a 16-row lockstep group's max degree is
//!   bounded by the 32-row group's that contains it).
//!
//! With an all-TCU mask the launch allocates the same buffers in the same
//! order and issues the identical charge sequence as `TcgnnSpmm`, so its
//! cost report matches the pure kernel's exactly — the bench gate's
//! "hybrid never loses to the best single backend" anchor.

use tcg_gpusim::hotspot::{self, HotPhase};
use tcg_gpusim::wmma::{
    mma_sync, FragmentA, FragmentAcc, FragmentB, FRAG_ACC_TRANSACTIONS, FRAG_A_SMEM_TRANSACTIONS,
    FRAG_B_SMEM_TRANSACTIONS, WMMA_N,
};
use tcg_gpusim::{GridConfig, KernelReport, Launcher};
use tcg_graph::CsrGraph;
use tcg_sgt::{Sgt, TranslatedGraph, TC_BLK_H, TC_BLK_W};
use tcg_tensor::DenseMatrix;

use crate::common::{SpmmKernel, SpmmProblem, TcgError};
use crate::hybrid::{DispatchPolicy, WindowBackend};

/// Dense columns per register tile on the CUDA-core path (matches
/// `CusparseCsrSpmm`).
const COLS_PER_TILE: usize = 4;

/// The hybrid per-window SpMM dispatcher.
#[derive(Debug, Clone)]
pub struct HybridSpmm {
    translated: TranslatedGraph,
    policy: DispatchPolicy,
    forced_mask: Option<Vec<WindowBackend>>,
}

impl HybridSpmm {
    /// Builds the kernel by running SGT on `csr`, with the fitted default
    /// dispatch policy.
    pub fn new(csr: &CsrGraph) -> Self {
        Self::from_translated(
            Sgt::builder()
                .translate(csr)
                .expect("default SGT geometry is valid"),
        )
    }

    /// Builds the kernel from a pre-computed translation.
    pub fn from_translated(translated: TranslatedGraph) -> Self {
        HybridSpmm {
            translated,
            policy: DispatchPolicy::default(),
            forced_mask: None,
        }
    }

    /// Overrides the dispatch policy (a tuned threshold).
    pub fn with_policy(mut self, policy: DispatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Forces an explicit per-window dispatch mask, bypassing the policy —
    /// the conformance/property-test hook and the engine's per-window ECC
    /// degrade path. Length is validated at execute time.
    pub fn with_mask(mut self, mask: Vec<WindowBackend>) -> Self {
        self.forced_mask = Some(mask);
        self
    }

    /// The translation this kernel runs over.
    pub fn translated(&self) -> &TranslatedGraph {
        &self.translated
    }

    /// The active dispatch policy.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// The per-window mask `execute` will use at dimension `dim`: the
    /// forced mask when set, otherwise the policy applied to each window's
    /// geometry. Pure in `(translation, csr, dim)`.
    pub fn dispatch_mask(&self, csr: &CsrGraph, dim: usize) -> Vec<WindowBackend> {
        match &self.forced_mask {
            Some(m) => m.clone(),
            None => self.policy.mask(&self.translated, csr, dim),
        }
    }
}

impl SpmmKernel for HybridSpmm {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn execute(
        &self,
        launcher: &mut Launcher,
        prob: &SpmmProblem<'_>,
    ) -> Result<(DenseMatrix, KernelReport), TcgError> {
        let csr = prob.csr;
        let t = &self.translated;
        if t.edge_to_col.len() != csr.num_edges() {
            return Err(TcgError::DimMismatch {
                what: "translation edge count vs graph",
                expected: csr.num_edges(),
                actual: t.edge_to_col.len(),
            });
        }
        let n = csr.num_nodes();
        let d = prob.dim();
        let mask = self.dispatch_mask(csr, d);
        if mask.len() != t.num_row_windows {
            return Err(TcgError::DimMismatch {
                what: "dispatch mask length vs row windows",
                expected: t.num_row_windows,
                actual: mask.len(),
            });
        }
        let slabs = d.div_ceil(WMMA_N);
        let warps = slabs.clamp(4, 8);
        let mut out = DenseMatrix::zeros(n, d);

        // Buffer layout mirrors TcgnnSpmm exactly; the CUDA-core path's
        // edge-id array is appended only when some window needs it, so an
        // all-TCU mask reproduces the pure kernel's address space (and
        // therefore its cache behavior and cost report) bit for bit.
        let buf_ptr = launcher.try_alloc(csr.node_pointer().len() * 8)?;
        let buf_pack = launcher.try_alloc(csr.num_edges())?;
        let buf_atox = launcher.try_alloc(t.block_atox.len() * 4)?;
        let buf_porig = launcher.try_alloc(csr.num_edges() * 4)?;
        let buf_vals = launcher.try_alloc(csr.num_edges() * 4)?;
        let buf_x = launcher.try_alloc_f32(prob.x.len())?;
        let buf_out = launcher.try_alloc_f32(out.len())?;
        let any_cuda = mask.contains(&WindowBackend::CudaCore);
        let buf_edges = if any_cuda {
            Some(launcher.try_alloc(csr.num_edges() * 4)?)
        } else {
            None
        };

        let smem_bytes = TC_BLK_H * TC_BLK_W * 4 + TC_BLK_W * 4 + warps * TC_BLK_W * WMMA_N * 4;
        let cfg = GridConfig {
            block_size: (warps * 32) as u32,
            shared_mem_bytes: smem_bytes,
            regs_per_thread: 64,
        };

        let dim_tiles = d.div_ceil(COLS_PER_TILE);
        let num_windows = t.num_row_windows as u64;
        // Blocks write disjoint row-window slabs of `out` on both paths.
        let out_slices = tcg_gpusim::DisjointSlices::new(out.as_mut_slice());

        launcher.preflight("hybrid", &cfg)?;
        let stats = launcher.launch_par(cfg, num_windows, |ctx| {
            let w = ctx.block_id as usize;
            let row_lo = w * TC_BLK_H;
            let row_hi = (row_lo + TC_BLK_H).min(n);

            if mask[w] == WindowBackend::CudaCore {
                // --- CUDA-core window: CusparseCsrSpmm's lockstep walk
                // scoped to rows [row_lo, row_hi) --------------------------
                let e_lo = csr.node_pointer()[row_lo];
                let e_hi = csr.node_pointer()[row_hi];
                if e_hi == e_lo {
                    return;
                }
                let buf_edges = buf_edges.as_ref().expect("cuda window implies edge buffer");
                let mut addrs: Vec<u64> = Vec::with_capacity(32);
                // SAFETY: window `w` owns rows [row_lo, row_hi) exclusively.
                let out_rows = unsafe { out_slices.range_mut(row_lo * d, (row_hi - row_lo) * d) };
                ctx.ld_global_contiguous(buf_ptr.addr(row_lo, 8), row_hi - row_lo + 1, 8);

                // One lockstep group: the window's ≤16 rows.
                let max_deg = (row_lo..row_hi).map(|v| csr.degree(v)).max().unwrap_or(0);
                for it in 0..max_deg {
                    addrs.clear();
                    for v in row_lo..row_hi {
                        if it < csr.degree(v) {
                            addrs.push(buf_edges.addr(csr.node_pointer()[v] + it, 4));
                        }
                    }
                    if addrs.is_empty() {
                        continue;
                    }
                    ctx.ld_global_warp(&addrs);
                    if prob.edge_values.is_some() {
                        let val_addrs: Vec<u64> = (row_lo..row_hi)
                            .filter(|&v| it < csr.degree(v))
                            .map(|v| buf_vals.addr(csr.node_pointer()[v] + it, 4))
                            .collect();
                        ctx.ld_global_warp(&val_addrs);
                    }
                    for dt in 0..dim_tiles {
                        addrs.clear();
                        for v in row_lo..row_hi {
                            if it < csr.degree(v) {
                                let u = csr.neighbors(v)[it] as usize;
                                addrs.push(buf_x.f32_addr(u * d + dt * COLS_PER_TILE));
                            }
                        }
                        ctx.ld_global_warp(&addrs);
                        ctx.fma_warp(32);
                    }
                }
                for dt in 0..dim_tiles {
                    addrs.clear();
                    for v in row_lo..row_hi {
                        addrs.push(buf_out.f32_addr(v * d + dt * COLS_PER_TILE));
                    }
                    ctx.st_global_warp(&addrs);
                }

                // Functional accumulation: identical to CusparseCsrSpmm's
                // per-row loop, so the window is bitwise the pure kernel's.
                for v in row_lo..row_hi {
                    let lo = csr.node_pointer()[v];
                    let orow = &mut out_rows[(v - row_lo) * d..(v - row_lo + 1) * d];
                    for (i, &u) in csr.neighbors(v).iter().enumerate() {
                        let wgt = prob.value(lo + i);
                        let xrow = prob.x.row(u as usize);
                        for (o, &xv) in orow.iter_mut().zip(xrow) {
                            *o += wgt * xv;
                        }
                    }
                }
                return;
            }

            // --- TCU window: TcgnnSpmm's window body, verbatim ------------
            let num_tc_blocks = t.win_partition[w] as usize;
            if num_tc_blocks == 0 {
                return;
            }
            ctx.ld_global_scalar(buf_ptr.addr(row_lo, 8));
            ctx.ld_global_scalar(buf_ptr.addr(row_hi, 8));

            let mut a_tile = vec![0.0f32; TC_BLK_H * TC_BLK_W];
            let mut atox: Vec<u32> = vec![u32::MAX; TC_BLK_W];
            let mut b_tile = vec![0.0f32; TC_BLK_W * WMMA_N];
            let mut accs: Vec<FragmentAcc> = (0..slabs).map(|_| FragmentAcc::default()).collect();
            let mut row_bases: Vec<u64> = Vec::with_capacity(TC_BLK_W);
            let mut addr_scratch: Vec<u64> = Vec::with_capacity(64);
            let mut win_nnz = 0u64;
            let mut win_cols = 0u64;
            // SAFETY: window `w` owns rows [row_lo, row_hi) exclusively.
            let out_win = unsafe { out_slices.range_mut(row_lo * d, (row_hi - row_lo) * d) };

            for i in 0..num_tc_blocks {
                let b = t.win_block_start[w] + i;
                let (c_lo, c_hi) = t.block_chunk(b);
                let chunk = c_hi - c_lo;
                ctx.ld_global_contiguous(buf_pack.addr(c_lo, 1), chunk, 1);
                let atox_ids = t.block_atox(b);
                ctx.ld_global_contiguous(buf_atox.addr(t.block_atox_ptr[b], 4), atox_ids.len(), 4);
                if prob.edge_values.is_some() {
                    ctx.ld_global_contiguous(buf_porig.addr(c_lo, 4), chunk, 4);
                    addr_scratch.clear();
                    addr_scratch.extend(
                        t.perm_orig[c_lo..c_hi]
                            .iter()
                            .map(|&e| buf_vals.f32_addr(e as usize)),
                    );
                    for wchunk in addr_scratch.chunks(32) {
                        ctx.ld_global_warp(wchunk);
                    }
                }

                {
                    let _t = hotspot::scope(HotPhase::Staging);
                    a_tile.iter_mut().for_each(|v| *v = 0.0);
                    atox.iter_mut().for_each(|v| *v = u32::MAX);
                    for pos in c_lo..c_hi {
                        let (r, c) = t.unpack(t.perm_pack[pos]);
                        a_tile[r * TC_BLK_W + c] = prob.value(t.perm_orig[pos] as usize);
                    }
                    for (c, &nid) in atox_ids.iter().enumerate() {
                        if nid != u32::MAX {
                            atox[c] = nid;
                        }
                    }
                }
                let nnz_blk = chunk as u64;
                win_nnz += nnz_blk;
                ctx.shared_access(((TC_BLK_H * TC_BLK_W) as u64).div_ceil(32));
                ctx.shared_access(nnz_blk.div_ceil(32).max(1));
                ctx.shared_access(1);

                row_bases.clear();
                row_bases.extend(
                    atox.iter()
                        .filter(|&&u| u != u32::MAX)
                        .map(|&u| buf_x.f32_addr(u as usize * d)),
                );
                win_cols += row_bases.len() as u64;

                for (s, acc) in accs.iter_mut().enumerate() {
                    let dim0 = s * WMMA_N;
                    let width = (d - dim0).min(WMMA_N);
                    let slab_bases: Vec<u64> =
                        row_bases.iter().map(|&b| b + (dim0 * 4) as u64).collect();
                    ctx.ld_global_gather_rows(&slab_bases, width, 4);
                    ctx.shared_access(((TC_BLK_W * WMMA_N) as u64).div_ceil(32));

                    {
                        let _t = hotspot::scope(HotPhase::Staging);
                        b_tile.iter_mut().for_each(|v| *v = 0.0);
                        for (k, &u) in atox.iter().enumerate() {
                            if u == u32::MAX {
                                continue;
                            }
                            let xrow = prob.x.row(u as usize);
                            for c in 0..width {
                                b_tile[k * WMMA_N + c] = xrow[dim0 + c];
                            }
                        }
                    }

                    let mut fa = FragmentA::default();
                    let mut fb = FragmentB::default();
                    fa.load(&a_tile, TC_BLK_W);
                    fb.load(&b_tile, WMMA_N);
                    ctx.shared_access(FRAG_A_SMEM_TRANSACTIONS + FRAG_B_SMEM_TRANSACTIONS);
                    mma_sync(acc, &fa, &fb, ctx);
                }
            }
            ctx.syncthreads();

            for (s, acc) in accs.iter().enumerate() {
                let dim0 = s * WMMA_N;
                let width = (d - dim0).min(WMMA_N);
                let bases: Vec<u64> = (row_lo..row_hi)
                    .map(|r| buf_out.f32_addr(r * d + dim0))
                    .collect();
                ctx.st_global_gather_rows(&bases, width, 4);
                ctx.shared_access(FRAG_ACC_TRANSACTIONS);
                for ri in 0..(row_hi - row_lo) {
                    let orow = &mut out_win[ri * d..(ri + 1) * d];
                    for c in 0..width {
                        orow[dim0 + c] = acc.get(ri, c);
                    }
                }
            }
            hotspot::annotate_window(win_nnz, win_cols);
        });
        let report = tcg_gpusim::cost::analyze(launcher.device(), &stats);
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{kernel_tolerance, reference_spmm};
    use crate::spmm::cusparse::CusparseCsrSpmm;
    use crate::spmm::tcgnn::TcgnnSpmm;
    use tcg_gpusim::DeviceSpec;
    use tcg_graph::gen;
    use tcg_tensor::init;

    fn launcher() -> Launcher {
        Launcher::new(DeviceSpec::rtx3090())
    }

    fn uniform_mask(t: &TranslatedGraph, wb: WindowBackend) -> Vec<WindowBackend> {
        vec![wb; t.num_row_windows]
    }

    #[test]
    fn matches_reference_under_policy_dispatch() {
        let g = gen::rmat_default(512, 5000, 1).unwrap();
        let x = init::uniform(512, 16, -1.0, 1.0, 2);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let (out, report) = HybridSpmm::new(&g).execute(&mut launcher(), &prob).unwrap();
        let reference = reference_spmm(&prob);
        assert!(out.max_abs_diff(&reference).unwrap() < kernel_tolerance(64, 16, 4.0));
        assert!(report.time_ms > 0.0);
    }

    #[test]
    fn all_tcu_mask_is_bitwise_and_cost_identical_to_pure_tcu() {
        let g = gen::citation(300, 2400, 3).unwrap();
        let x = init::uniform(300, 50, -1.0, 1.0, 4);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let tcgnn = TcgnnSpmm::new(&g);
        let hybrid = HybridSpmm::from_translated(tcgnn.translated().clone())
            .with_mask(uniform_mask(tcgnn.translated(), WindowBackend::Tcu));
        let (out_t, rep_t) = tcgnn.execute(&mut launcher(), &prob).unwrap();
        let (out_h, rep_h) = hybrid.execute(&mut launcher(), &prob).unwrap();
        assert_eq!(out_h.as_slice(), out_t.as_slice());
        assert_eq!(rep_h.stats, rep_t.stats, "identical charge sequence");
        assert_eq!(rep_h.cycles.to_bits(), rep_t.cycles.to_bits());
    }

    #[test]
    fn all_cuda_mask_is_bitwise_identical_to_cusparse() {
        let g = gen::rmat_default(256, 2000, 7).unwrap();
        let x = init::uniform(256, 32, -1.0, 1.0, 8);
        let vals: Vec<f32> = (0..g.num_edges())
            .map(|e| 0.05 + (e % 11) as f32 * 0.1)
            .collect();
        let prob = SpmmProblem::new(&g, Some(&vals), &x).unwrap();
        let t = Sgt::builder().translate(&g).unwrap();
        let hybrid = HybridSpmm::from_translated(t.clone())
            .with_mask(uniform_mask(&t, WindowBackend::CudaCore));
        let (out_h, _) = hybrid.execute(&mut launcher(), &prob).unwrap();
        let (out_c, _) = CusparseCsrSpmm.execute(&mut launcher(), &prob).unwrap();
        assert_eq!(out_h.as_slice(), out_c.as_slice());
    }

    #[test]
    fn mixed_mask_stitches_pure_outputs_window_by_window() {
        let g = gen::community(200, 1800, 8, 16, 9).unwrap();
        let x = init::uniform(200, 24, -1.0, 1.0, 10);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let t = Sgt::builder().translate(&g).unwrap();
        let mask: Vec<WindowBackend> = (0..t.num_row_windows)
            .map(|w| {
                if w % 2 == 0 {
                    WindowBackend::Tcu
                } else {
                    WindowBackend::CudaCore
                }
            })
            .collect();
        let hybrid = HybridSpmm::from_translated(t.clone()).with_mask(mask.clone());
        let (out_h, _) = hybrid.execute(&mut launcher(), &prob).unwrap();
        let (out_t, _) = TcgnnSpmm::from_translated(t.clone())
            .execute(&mut launcher(), &prob)
            .unwrap();
        let (out_c, _) = CusparseCsrSpmm.execute(&mut launcher(), &prob).unwrap();
        let d = x.cols();
        for (w, &wb) in mask.iter().enumerate() {
            let lo = w * TC_BLK_H * d;
            let hi = (((w + 1) * TC_BLK_H).min(g.num_nodes())) * d;
            let want = match wb {
                WindowBackend::Tcu => &out_t,
                WindowBackend::CudaCore => &out_c,
            };
            assert_eq!(
                &out_h.as_slice()[lo..hi],
                &want.as_slice()[lo..hi],
                "window {w} ({wb:?})"
            );
        }
    }

    #[test]
    fn rejects_wrong_mask_length() {
        let g = gen::erdos_renyi(128, 1000, 17).unwrap();
        let x = init::uniform(128, 16, -1.0, 1.0, 19);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let k = HybridSpmm::new(&g).with_mask(vec![WindowBackend::Tcu; 3]);
        assert!(k.execute(&mut launcher(), &prob).is_err());
    }

    #[test]
    fn rejects_mismatched_translation() {
        let g1 = gen::erdos_renyi(128, 1000, 17).unwrap();
        let g2 = gen::erdos_renyi(128, 900, 18).unwrap();
        let x = init::uniform(128, 16, -1.0, 1.0, 19);
        let kernel = HybridSpmm::new(&g1);
        let prob = SpmmProblem::new(&g2, None, &x).unwrap();
        assert!(kernel.execute(&mut launcher(), &prob).is_err());
    }
}
