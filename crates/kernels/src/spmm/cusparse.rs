//! Scalar CSR SpMM — the cuSPARSE-class generic kernel behind DGL.
//!
//! cuSPARSE's generic `csrmm` assigns one *thread* per matrix row (256
//! threads per block, `ceil(N/256)` blocks), each walking its row's
//! neighbor list and accumulating across the dense columns in 16-byte
//! register tiles. On GNN graphs this exhibits all three pathologies the
//! paper's §3.1 profiling reports:
//!
//! - **small grids** — Cora launches ~11 blocks on an 82-SM device, so
//!   achieved occupancy collapses (Table 1's ~15%);
//! - **warp divergence** — lanes process 32 *different* rows in lockstep,
//!   so every warp runs as long as its highest-degree row;
//! - **scattered access** — each lane gathers its own row of `X`, giving a
//!   different sector per lane per instruction (Table 1's ~37% hit rate
//!   comes only from consecutive 16 B granules sharing a 32 B sector).

use tcg_gpusim::{GridConfig, KernelReport, Launcher};
use tcg_tensor::DenseMatrix;

use crate::common::{SpmmKernel, SpmmProblem, TcgError};

/// cuSPARSE-style scalar CSR SpMM (thread per row).
#[derive(Debug, Clone, Default)]
pub struct CusparseCsrSpmm;

/// Threads (rows) per block.
const ROWS_PER_BLOCK: usize = 256;
/// Dense columns processed per register tile (float4 granule).
const COLS_PER_TILE: usize = 4;

impl SpmmKernel for CusparseCsrSpmm {
    fn name(&self) -> &'static str {
        "cusparse-csr"
    }

    fn execute(
        &self,
        launcher: &mut Launcher,
        prob: &SpmmProblem<'_>,
    ) -> Result<(DenseMatrix, KernelReport), TcgError> {
        let csr = prob.csr;
        let n = csr.num_nodes();
        let d = prob.dim();
        let mut out = DenseMatrix::zeros(n, d);

        let buf_ptr = launcher.try_alloc(csr.node_pointer().len() * 8)?;
        let buf_edges = launcher.try_alloc(csr.num_edges() * 4)?;
        let buf_vals = launcher.try_alloc(csr.num_edges() * 4)?;
        let buf_x = launcher.try_alloc_f32(prob.x.len())?;
        let buf_out = launcher.try_alloc_f32(out.len())?;

        let num_blocks = n.div_ceil(ROWS_PER_BLOCK) as u64;
        let cfg = GridConfig {
            block_size: ROWS_PER_BLOCK as u32,
            shared_mem_bytes: 0,
            regs_per_thread: 64,
        };

        let dim_tiles = d.div_ceil(COLS_PER_TILE);
        // Each block owns rows [block*256, block*256+256): disjoint output
        // slabs, so the body runs on the parallel path.
        let out_slices = tcg_gpusim::DisjointSlices::new(out.as_mut_slice());
        launcher.preflight("cusparse-csr", &cfg)?;
        let stats = launcher.launch_par(cfg, num_blocks, |ctx| {
            let mut addrs: Vec<u64> = Vec::with_capacity(32);
            let row0 = ctx.block_id as usize * ROWS_PER_BLOCK;
            let row1 = (row0 + ROWS_PER_BLOCK).min(n);
            // SAFETY: block owns rows [row0, row1) exclusively.
            let out_rows = unsafe { out_slices.range_mut(row0 * d, (row1 - row0) * d) };
            // Row pointers: coalesced across the block's threads.
            ctx.ld_global_contiguous(buf_ptr.addr(row0, 8), row1 - row0 + 1, 8);

            // Warp by warp: 32 consecutive rows in lockstep.
            for w0 in (row0..row1).step_by(32) {
                let w1 = (w0 + 32).min(row1);
                let max_deg = (w0..w1).map(|v| csr.degree(v)).max().unwrap_or(0);
                for it in 0..max_deg {
                    // Edge-id load: each active lane reads its row's next
                    // neighbor — scattered positions in edgeList.
                    addrs.clear();
                    for v in w0..w1 {
                        if it < csr.degree(v) {
                            addrs.push(buf_edges.addr(csr.node_pointer()[v] + it, 4));
                        }
                    }
                    if addrs.is_empty() {
                        continue;
                    }
                    ctx.ld_global_warp(&addrs);
                    if prob.edge_values.is_some() {
                        let val_addrs: Vec<u64> = (w0..w1)
                            .filter(|&v| it < csr.degree(v))
                            .map(|v| buf_vals.addr(csr.node_pointer()[v] + it, 4))
                            .collect();
                        ctx.ld_global_warp(&val_addrs);
                    }
                    // X gathers: per 4-column tile, each lane fetches 16 B
                    // of its own neighbor's row.
                    for dt in 0..dim_tiles {
                        addrs.clear();
                        for v in w0..w1 {
                            if it < csr.degree(v) {
                                let u = csr.neighbors(v)[it] as usize;
                                addrs.push(buf_x.f32_addr(u * d + dt * COLS_PER_TILE));
                            }
                        }
                        ctx.ld_global_warp(&addrs);
                        ctx.fma_warp(32);
                    }
                }
                // Output stores: 16 B granules per lane per tile.
                for dt in 0..dim_tiles {
                    addrs.clear();
                    for v in w0..w1 {
                        addrs.push(buf_out.f32_addr(v * d + dt * COLS_PER_TILE));
                    }
                    ctx.st_global_warp(&addrs);
                }
            }

            // Functional accumulation.
            for v in row0..row1 {
                let lo = csr.node_pointer()[v];
                let orow = &mut out_rows[(v - row0) * d..(v - row0 + 1) * d];
                for (i, &u) in csr.neighbors(v).iter().enumerate() {
                    let wgt = prob.value(lo + i);
                    let xrow = prob.x.row(u as usize);
                    for (o, &xv) in orow.iter_mut().zip(xrow) {
                        *o += wgt * xv;
                    }
                }
            }
        });
        let report = tcg_gpusim::cost::analyze(launcher.device(), &stats);
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{kernel_tolerance, reference_spmm};
    use tcg_graph::gen;
    use tcg_tensor::init;

    #[test]
    fn matches_reference_unweighted() {
        let g = gen::rmat_default(256, 2500, 1).unwrap();
        let x = init::uniform(256, 24, -1.0, 1.0, 2);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (out, report) = CusparseCsrSpmm.execute(&mut l, &prob).unwrap();
        let reference = reference_spmm(&prob);
        let tol = kernel_tolerance(64, 24, 4.0);
        assert!(out.max_abs_diff(&reference).unwrap() < tol);
        assert!(report.time_ms > 0.0);
        assert!(report.stats.fp32_flops > 0);
        assert_eq!(report.stats.tcu_flops, 0, "pure CUDA-core kernel");
    }

    #[test]
    fn matches_reference_weighted() {
        let g = gen::erdos_renyi(128, 1200, 3).unwrap();
        let x = init::uniform(128, 16, -1.0, 1.0, 4);
        let vals: Vec<f32> = (0..g.num_edges()).map(|e| 0.1 + (e % 7) as f32).collect();
        let prob = SpmmProblem::new(&g, Some(&vals), &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (out, _) = CusparseCsrSpmm.execute(&mut l, &prob).unwrap();
        let reference = reference_spmm(&prob);
        assert!(out.max_abs_diff(&reference).unwrap() < 1e-2);
    }

    #[test]
    fn small_graph_has_low_occupancy() {
        // The Table 1 phenomenon: a Cora-sized launch cannot fill the SMs.
        let g = gen::citation(2708, 10858, 5).unwrap();
        let x = init::uniform(2708, 64, -1.0, 1.0, 6);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (_, report) = CusparseCsrSpmm.execute(&mut l, &prob).unwrap();
        assert!(
            report.occupancy < 0.25,
            "expected low occupancy, got {:.2}",
            report.occupancy
        );
    }

    #[test]
    fn cache_hit_rate_is_mediocre_on_irregular_graph() {
        let g = gen::rmat_default(8192, 80_000, 5).unwrap();
        let x = init::uniform(8192, 32, -1.0, 1.0, 6);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (_, report) = CusparseCsrSpmm.execute(&mut l, &prob).unwrap();
        assert!(
            (0.2..0.7).contains(&report.l1_hit_rate),
            "expected mediocre locality, got {:.2}",
            report.l1_hit_rate
        );
    }

    #[test]
    fn divergence_costs_show_on_skewed_graphs() {
        // Same nnz, one skewed one regular: the skewed graph must issue
        // more instructions (warps run at their max row degree).
        let skewed = gen::rmat_default(4096, 40_000, 7).unwrap();
        let regular = gen::watts_strogatz(4096, 10, 0.1, 7).unwrap();
        let x = init::uniform(4096, 16, -1.0, 1.0, 8);
        let run = |g: &tcg_graph::CsrGraph| {
            let prob = SpmmProblem::new(g, None, &x).unwrap();
            let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
            CusparseCsrSpmm.execute(&mut l, &prob).unwrap().1
        };
        let r_skew = run(&skewed);
        let r_reg = run(&regular);
        let per_edge_skew = r_skew.stats.warp_instructions as f64 / skewed.num_edges() as f64;
        let per_edge_reg = r_reg.stats.warp_instructions as f64 / regular.num_edges() as f64;
        assert!(
            per_edge_skew > 1.5 * per_edge_reg,
            "skewed {per_edge_skew:.2} vs regular {per_edge_reg:.2} instructions/edge"
        );
    }

    #[test]
    fn handles_isolated_nodes() {
        let g = tcg_graph::CsrGraph::from_raw(64, vec![0; 65], vec![]).unwrap();
        let x = init::uniform(64, 8, -1.0, 1.0, 7);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (out, _) = CusparseCsrSpmm.execute(&mut l, &prob).unwrap();
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }
}
