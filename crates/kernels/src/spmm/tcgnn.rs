//! TC-GNN neighbor aggregation — Algorithm 2 / Listing 2 of the paper.
//!
//! One thread block per SGT row window. CUDA-core threads stage the current
//! TC block's sparse tile (`sparse_A`, dense 16×8 layout built from
//! `edgeToCol`/`edgeToRow`) and the column→row mapping
//! (`sparse_AToX_index`) into shared memory, then gather the referenced
//! rows of the dense matrix into per-warp `dense_X` tiles. Warps drive the
//! tensor cores over the staged tiles with `m16n16k8` MMAs, accumulating in
//! registers across the window's TC blocks, and finally store their 16×16
//! output slab. The embedding dimension is *split across warps* (§5.2's
//! dimension-split strategy), so every warp reuses the same shared sparse
//! tile — the data-reuse benefit of the two-level workload mapping.

use tcg_gpusim::hotspot::{self, HotPhase};
use tcg_gpusim::wmma::{
    mma_sync, FragmentA, FragmentAcc, FragmentB, FRAG_ACC_TRANSACTIONS, FRAG_A_SMEM_TRANSACTIONS,
    FRAG_B_SMEM_TRANSACTIONS, WMMA_K, WMMA_M, WMMA_N,
};
use tcg_gpusim::{GridConfig, KernelReport, Launcher};
use tcg_graph::CsrGraph;
use tcg_sgt::{Sgt, TranslatedGraph, TC_BLK_H, TC_BLK_W};
use tcg_tensor::DenseMatrix;

use crate::common::{SpmmKernel, SpmmProblem, TcgError};

/// The TC-GNN SpMM kernel, bound to a translated graph.
#[derive(Debug, Clone)]
pub struct TcgnnSpmm {
    translated: TranslatedGraph,
    warps_per_block: usize,
}

impl TcgnnSpmm {
    /// Builds the kernel by running SGT on `csr`.
    pub fn new(csr: &CsrGraph) -> Self {
        Self::from_translated(
            Sgt::builder()
                .translate(csr)
                .expect("default SGT geometry is valid"),
        )
    }

    /// Builds the kernel from a pre-computed translation (SGT runs once and
    /// is reused across epochs — §4.1).
    pub fn from_translated(translated: TranslatedGraph) -> Self {
        TcgnnSpmm {
            translated,
            warps_per_block: 0,
        }
    }

    /// Overrides the dimension-split warp count (0 = auto: one warp per
    /// 16-dim slab, capped at 8). The Figure 7(c) ablation sweeps this.
    pub fn with_warps_per_block(mut self, warps: usize) -> Self {
        self.warps_per_block = warps;
        self
    }

    /// The translation this kernel runs over.
    pub fn translated(&self) -> &TranslatedGraph {
        &self.translated
    }

    fn resolve_warps(&self, dim_slabs: usize) -> usize {
        if self.warps_per_block == 0 {
            // §5.1: "we use more CUDA-core threads than TCU threads" — the
            // block always carries at least 4 warps for staging parallelism,
            // even when fewer dimension slabs need TCU warps.
            dim_slabs.clamp(4, 8)
        } else {
            self.warps_per_block.max(1)
        }
    }
}

impl SpmmKernel for TcgnnSpmm {
    fn name(&self) -> &'static str {
        "tc-gnn"
    }

    fn execute(
        &self,
        launcher: &mut Launcher,
        prob: &SpmmProblem<'_>,
    ) -> Result<(DenseMatrix, KernelReport), TcgError> {
        let csr = prob.csr;
        let t = &self.translated;
        if t.edge_to_col.len() != csr.num_edges() {
            return Err(TcgError::DimMismatch {
                what: "translation edge count vs graph",
                expected: csr.num_edges(),
                actual: t.edge_to_col.len(),
            });
        }
        let n = csr.num_nodes();
        let d = prob.dim();
        let slabs = d.div_ceil(WMMA_N);
        let warps = self.resolve_warps(slabs);
        let mut out = DenseMatrix::zeros(n, d);

        let buf_ptr = launcher.try_alloc(csr.node_pointer().len() * 8)?;
        let buf_pack = launcher.try_alloc(csr.num_edges())?;
        let buf_atox = launcher.try_alloc(t.block_atox.len() * 4)?;
        let buf_porig = launcher.try_alloc(csr.num_edges() * 4)?;
        let buf_vals = launcher.try_alloc(csr.num_edges() * 4)?;
        let buf_x = launcher.try_alloc_f32(prob.x.len())?;
        let buf_out = launcher.try_alloc_f32(out.len())?;

        // Shared memory mirrors Listing 2: sparse_A (16×8 f32),
        // sparse_AToX_index (8 u32), dense_X (warps × 8×16 f32).
        let smem_bytes = TC_BLK_H * TC_BLK_W * 4 + TC_BLK_W * 4 + warps * TC_BLK_W * WMMA_N * 4;
        let cfg = GridConfig {
            block_size: (warps * 32) as u32,
            shared_mem_bytes: smem_bytes,
            regs_per_thread: 64,
        };

        let num_windows = t.num_row_windows as u64;

        // Blocks write disjoint row-window slabs of `out`, so the body can
        // run on the parallel path without locks.
        let out_slices = tcg_gpusim::DisjointSlices::new(out.as_mut_slice());

        launcher.preflight("tc-gnn", &cfg)?;
        let stats = launcher.launch_par(cfg, num_windows, |ctx| {
            let w = ctx.block_id as usize;
            let num_tc_blocks = t.win_partition[w] as usize;
            if num_tc_blocks == 0 {
                return;
            }
            let row_lo = w * TC_BLK_H;
            let row_hi = (row_lo + TC_BLK_H).min(n);

            // Window metadata reads.
            ctx.ld_global_scalar(buf_ptr.addr(row_lo, 8));
            ctx.ld_global_scalar(buf_ptr.addr(row_hi, 8));

            // Per-block scratch (the parallel path runs bodies concurrently,
            // so nothing mutable is captured from the enclosing scope).
            let mut a_tile = vec![0.0f32; TC_BLK_H * TC_BLK_W];
            let mut atox: Vec<u32> = vec![u32::MAX; TC_BLK_W];
            let mut b_tile = vec![0.0f32; TC_BLK_W * WMMA_N];
            let mut accs: Vec<FragmentAcc> = (0..slabs).map(|_| FragmentAcc::default()).collect();
            let mut row_bases: Vec<u64> = Vec::with_capacity(TC_BLK_W);
            let mut addr_scratch: Vec<u64> = Vec::with_capacity(64);
            // Per-row-window telemetry for the hotspot profiler (free when
            // disabled: two integer adds per TC block, one gated call).
            let mut win_nnz = 0u64;
            let mut win_cols = 0u64;
            // SAFETY: window `w` owns rows [row_lo, row_hi) exclusively.
            let out_win = unsafe { out_slices.range_mut(row_lo * d, (row_hi - row_lo) * d) };

            for i in 0..num_tc_blocks {
                // --- CUDA-core staging phase (Alg. 2's GetChunk + the
                // shared-memory staging of Listing 2) -----------------
                // Stream exactly this TC block's edge chunk: the
                // column-sorted permutation arrays from SGT.
                let b = t.win_block_start[w] + i;
                let (c_lo, c_hi) = t.block_chunk(b);
                let chunk = c_hi - c_lo;
                // Packed coordinates: one byte per non-zero.
                ctx.ld_global_contiguous(buf_pack.addr(c_lo, 1), chunk, 1);
                // sparse_AToX_index: one id per condensed column.
                let atox_ids = t.block_atox(b);
                ctx.ld_global_contiguous(buf_atox.addr(t.block_atox_ptr[b], 4), atox_ids.len(), 4);
                if prob.edge_values.is_some() {
                    // Values live in original edge order: indirect gather.
                    ctx.ld_global_contiguous(buf_porig.addr(c_lo, 4), chunk, 4);
                    addr_scratch.clear();
                    addr_scratch.extend(
                        t.perm_orig[c_lo..c_hi]
                            .iter()
                            .map(|&e| buf_vals.f32_addr(e as usize)),
                    );
                    for wchunk in addr_scratch.chunks(32) {
                        ctx.ld_global_warp(wchunk);
                    }
                }

                {
                    let _t = hotspot::scope(HotPhase::Staging);
                    a_tile.iter_mut().for_each(|v| *v = 0.0);
                    atox.iter_mut().for_each(|v| *v = u32::MAX);
                    for pos in c_lo..c_hi {
                        let (r, c) = t.unpack(t.perm_pack[pos]);
                        a_tile[r * TC_BLK_W + c] = prob.value(t.perm_orig[pos] as usize);
                    }
                    for (c, &nid) in atox_ids.iter().enumerate() {
                        if nid != u32::MAX {
                            atox[c] = nid;
                        }
                    }
                }
                let nnz_blk = chunk as u64;
                win_nnz += nnz_blk;
                // Shared-memory writes: zero-init + nnz scatter + index row.
                ctx.shared_access(((TC_BLK_H * TC_BLK_W) as u64).div_ceil(32));
                ctx.shared_access(nnz_blk.div_ceil(32).max(1));
                ctx.shared_access(1);

                // Gather the up-to-8 referenced X rows (per warp dim slab).
                row_bases.clear();
                row_bases.extend(
                    atox.iter()
                        .filter(|&&u| u != u32::MAX)
                        .map(|&u| buf_x.f32_addr(u as usize * d)),
                );
                win_cols += row_bases.len() as u64;

                for (s, acc) in accs.iter_mut().enumerate() {
                    let dim0 = s * WMMA_N;
                    let width = (d - dim0).min(WMMA_N);
                    // Stage dense_X: each referenced row contributes its
                    // 16-dim slab slice.
                    let slab_bases: Vec<u64> =
                        row_bases.iter().map(|&b| b + (dim0 * 4) as u64).collect();
                    ctx.ld_global_gather_rows(&slab_bases, width, 4);
                    ctx.shared_access(((TC_BLK_W * WMMA_N) as u64).div_ceil(32));

                    // Build the B tile functionally.
                    {
                        let _t = hotspot::scope(HotPhase::Staging);
                        b_tile.iter_mut().for_each(|v| *v = 0.0);
                        for (k, &u) in atox.iter().enumerate() {
                            if u == u32::MAX {
                                continue;
                            }
                            let xrow = prob.x.row(u as usize);
                            for c in 0..width {
                                b_tile[k * WMMA_N + c] = xrow[dim0 + c];
                            }
                        }
                    }

                    // --- TCU phase (Listing 2 lines 36-37) --------------
                    let mut fa = FragmentA::default();
                    let mut fb = FragmentB::default();
                    fa.load(&a_tile, TC_BLK_W);
                    fb.load(&b_tile, WMMA_N);
                    ctx.shared_access(FRAG_A_SMEM_TRANSACTIONS + FRAG_B_SMEM_TRANSACTIONS);
                    mma_sync(acc, &fa, &fb, ctx);
                }
            }
            ctx.syncthreads();

            // Store each warp's 16×16 output slab (boundary-clipped).
            for (s, acc) in accs.iter().enumerate() {
                let dim0 = s * WMMA_N;
                let width = (d - dim0).min(WMMA_N);
                let bases: Vec<u64> = (row_lo..row_hi)
                    .map(|r| buf_out.f32_addr(r * d + dim0))
                    .collect();
                ctx.st_global_gather_rows(&bases, width, 4);
                ctx.shared_access(FRAG_ACC_TRANSACTIONS);
                for ri in 0..(row_hi - row_lo) {
                    let orow = &mut out_win[ri * d..(ri + 1) * d];
                    for c in 0..width {
                        orow[dim0 + c] = acc.get(ri, c);
                    }
                }
            }
            hotspot::annotate_window(win_nnz, win_cols);
        });
        debug_assert_eq!(WMMA_M, TC_BLK_H);
        debug_assert_eq!(WMMA_K, TC_BLK_W);
        let report = tcg_gpusim::cost::analyze(launcher.device(), &stats);
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{kernel_tolerance, reference_spmm};
    use crate::spmm::cusparse::CusparseCsrSpmm;
    use tcg_graph::gen;
    use tcg_tensor::init;

    fn run(
        g: &CsrGraph,
        x: &DenseMatrix,
        vals: Option<&[f32]>,
    ) -> (DenseMatrix, KernelReport, DenseMatrix) {
        let prob = SpmmProblem::new(g, vals, x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (out, report) = TcgnnSpmm::new(g).execute(&mut l, &prob).unwrap();
        let reference = reference_spmm(&prob);
        (out, report, reference)
    }

    #[test]
    fn matches_reference_basic() {
        let g = gen::rmat_default(512, 5000, 1).unwrap();
        let x = init::uniform(512, 16, -1.0, 1.0, 2);
        let (out, report, reference) = run(&g, &x, None);
        assert!(out.max_abs_diff(&reference).unwrap() < kernel_tolerance(64, 16, 4.0));
        assert!(
            report.stats.tcu_mma_instructions > 0,
            "must use tensor cores"
        );
    }

    #[test]
    fn matches_reference_wide_embedding() {
        // d = 50: non-multiple of 16 exercises slab clipping.
        let g = gen::citation(300, 2400, 3).unwrap();
        let x = init::uniform(300, 50, -1.0, 1.0, 4);
        let (out, _, reference) = run(&g, &x, None);
        assert!(out.max_abs_diff(&reference).unwrap() < kernel_tolerance(64, 50, 4.0));
    }

    #[test]
    fn matches_reference_narrow_embedding() {
        // d = 7 < 16: single clipped slab.
        let g = gen::erdos_renyi(200, 1600, 5).unwrap();
        let x = init::uniform(200, 7, -1.0, 1.0, 6);
        let (out, _, reference) = run(&g, &x, None);
        assert!(out.max_abs_diff(&reference).unwrap() < kernel_tolerance(64, 7, 4.0));
    }

    #[test]
    fn matches_reference_weighted() {
        let g = gen::rmat_default(256, 2000, 7).unwrap();
        let x = init::uniform(256, 32, -1.0, 1.0, 8);
        let vals: Vec<f32> = (0..g.num_edges())
            .map(|e| 0.05 + (e % 11) as f32 * 0.1)
            .collect();
        let (out, _, reference) = run(&g, &x, Some(&vals));
        assert!(out.max_abs_diff(&reference).unwrap() < kernel_tolerance(64, 32, 8.0));
    }

    #[test]
    fn non_multiple_of_window_node_count() {
        // n = 101 leaves a ragged final window.
        let g = gen::erdos_renyi(101, 900, 9).unwrap();
        let x = init::uniform(101, 16, -1.0, 1.0, 10);
        let (out, _, reference) = run(&g, &x, None);
        assert!(out.max_abs_diff(&reference).unwrap() < kernel_tolerance(64, 16, 4.0));
    }

    #[test]
    fn mma_count_matches_translation() {
        let g = gen::rmat_default(1024, 8000, 11).unwrap();
        let x = init::uniform(1024, 32, -1.0, 1.0, 12);
        let kernel = TcgnnSpmm::new(&g);
        let expected = kernel.translated().total_tc_blocks() * 2; // 2 slabs
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (_, report) = kernel.execute(&mut l, &prob).unwrap();
        assert_eq!(report.stats.tcu_mma_instructions, expected);
    }

    #[test]
    fn beats_cusparse_on_irregular_graph() {
        // The headline claim, at kernel granularity.
        let g = gen::rmat_default(8192, 80_000, 13).unwrap();
        let x = init::uniform(8192, 32, -1.0, 1.0, 14);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut l1 = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (_, r_tc) = TcgnnSpmm::new(&g).execute(&mut l1, &prob).unwrap();
        let mut l2 = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (_, r_cu) = CusparseCsrSpmm.execute(&mut l2, &prob).unwrap();
        assert!(
            r_tc.time_ms < r_cu.time_ms,
            "TC-GNN {} ms should beat cuSPARSE {} ms",
            r_tc.time_ms,
            r_cu.time_ms
        );
    }

    #[test]
    fn warp_override_changes_block_size_not_result() {
        let g = gen::citation(256, 2000, 15).unwrap();
        let x = init::uniform(256, 64, -1.0, 1.0, 16);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut outs = Vec::new();
        for warps in [1, 2, 4, 8] {
            let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
            let k = TcgnnSpmm::new(&g).with_warps_per_block(warps);
            let (out, report) = k.execute(&mut l, &prob).unwrap();
            assert_eq!(report.stats.block_size, (warps * 32) as u32);
            outs.push(out);
        }
        for o in &outs[1..] {
            assert_eq!(o.as_slice(), outs[0].as_slice(), "results must agree");
        }
    }

    #[test]
    fn rejects_mismatched_translation() {
        let g1 = gen::erdos_renyi(128, 1000, 17).unwrap();
        let g2 = gen::erdos_renyi(128, 900, 18).unwrap();
        let x = init::uniform(128, 16, -1.0, 1.0, 19);
        let kernel = TcgnnSpmm::new(&g1);
        let prob = SpmmProblem::new(&g2, None, &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        assert!(kernel.execute(&mut l, &prob).is_err());
    }
}
