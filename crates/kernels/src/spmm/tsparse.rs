//! tSparse-style hybrid tiling (Zachariadis et al.): 2D-tile the raw
//! adjacency, send nnz-rich tiles to tensor cores and nnz-poor tiles to
//! CUDA cores.
//!
//! The crucial difference from TC-GNN (§6.2): tSparse "only considers
//! partitioning the input sparse matrix into dense/sparse tiles based on
//! their non-zero elements but ignores the potential of compressing
//! non-zero elements into fewer tiles" — so on scattered graphs most tiles
//! carry a handful of non-zeros and the TCU tiles stay mostly empty.

use tcg_gpusim::wmma::MMA_FLOPS;
use tcg_gpusim::{GridConfig, KernelReport, Launcher};
use tcg_tensor::DenseMatrix;

use crate::common::{SpmmKernel, SpmmProblem, TcgError};
use crate::spmm::tiling::{block_row_tiles, num_block_rows};

/// Tile edge length.
const BLK: usize = 16;

/// tSparse-like hybrid SpMM.
#[derive(Debug, Clone)]
pub struct TsparseLikeSpmm {
    /// Tiles with at least this many non-zeros go to the tensor cores.
    pub dense_threshold: usize,
}

impl Default for TsparseLikeSpmm {
    fn default() -> Self {
        TsparseLikeSpmm { dense_threshold: 8 }
    }
}

impl SpmmKernel for TsparseLikeSpmm {
    fn name(&self) -> &'static str {
        "tsparse-like"
    }

    fn execute(
        &self,
        launcher: &mut Launcher,
        prob: &SpmmProblem<'_>,
    ) -> Result<(DenseMatrix, KernelReport), TcgError> {
        let csr = prob.csr;
        let n = csr.num_nodes();
        let d = prob.dim();
        let mut out = DenseMatrix::zeros(n, d);

        let buf_meta = launcher.try_alloc(csr.num_edges() * 8)?;
        let buf_vals = launcher.try_alloc(csr.num_edges() * 4)?;
        let buf_x = launcher.try_alloc_f32(prob.x.len())?;
        let buf_out = launcher.try_alloc_f32(out.len())?;

        let slabs = d.div_ceil(16);
        let brs = num_block_rows(csr, BLK);
        let cfg = GridConfig {
            block_size: 128,
            shared_mem_bytes: (BLK * BLK + 16 * BLK) * 4,
            regs_per_thread: 56,
        };

        let mut acc = vec![0.0f32; BLK * 16];
        launcher.preflight("tsparse-like", &cfg)?;
        let stats = launcher.launch(cfg, brs as u64, |ctx| {
            let br = ctx.block_id as usize;
            let tiles = block_row_tiles(csr, br, BLK);
            if tiles.is_empty() {
                return;
            }
            let row_lo = br * BLK;
            let row_hi = (row_lo + BLK).min(n);

            for s in 0..slabs {
                let dim0 = s * 16;
                let width = (d - dim0).min(16);
                acc.iter_mut().for_each(|v| *v = 0.0);

                for tile in &tiles {
                    // Tile metadata traversal (the "sparse control" cost of
                    // §3.3): tSparse keeps a per-tile descriptor (coordinates,
                    // nnz bitmap, value offset) that must be fetched and
                    // decoded before the tile can be routed to a compute path.
                    ctx.ld_global_scalar(buf_meta.addr(tile.col_block as usize, 8));
                    ctx.ld_global_contiguous(
                        buf_meta.addr((tile.entries[0].2).min(csr.num_edges() - 1), 8),
                        2,
                        8,
                    );
                    ctx.int_warp(32); // coordinate decode
                    ctx.int_warp(32); // bitmap popcount / routing
                    ctx.shared_access(1); // staged descriptor

                    let col_base = tile.col_block as usize * BLK;
                    if tile.entries.len() >= self.dense_threshold {
                        // TCU path: stage the tile dense + X tile, 2 MMAs.
                        ctx.ld_global_contiguous(
                            buf_vals.addr(tile.entries[0].2, 4),
                            tile.entries.len(),
                            4,
                        );
                        ctx.shared_access(((BLK * BLK) as u64).div_ceil(32));
                        let bases: Vec<u64> = (0..BLK)
                            .map(|k| {
                                buf_x.f32_addr((col_base + k).min(n.saturating_sub(1)) * d + dim0)
                            })
                            .collect();
                        ctx.ld_global_gather_rows(&bases, width, 4);
                        ctx.shared_access(8);
                        ctx.tcu_mma(MMA_FLOPS);
                        ctx.tcu_mma(MMA_FLOPS);
                    } else {
                        // CUDA-core path: per-edge gather + FMA.
                        let bases: Vec<u64> = tile
                            .entries
                            .iter()
                            .map(|&(_, c, _)| buf_x.f32_addr((col_base + c as usize) * d + dim0))
                            .collect();
                        ctx.ld_global_gather_rows(&bases, width, 4);
                        ctx.fma_warps(((tile.entries.len() * width) as u64).div_ceil(32));
                    }

                    // tSparse's merge phase: per-tile partial results are
                    // accumulated into global memory with atomics (the
                    // SpGEMM-heritage design §6.2 criticizes).
                    let out_bases: Vec<u64> = (row_lo..row_hi)
                        .map(|r| buf_out.f32_addr(r * d + dim0))
                        .collect();
                    ctx.atomic_add_global(&out_bases);

                    // Functional accumulation (identical for both paths).
                    for &(r, c, e) in &tile.entries {
                        let w = prob.value(e);
                        let xrow = prob.x.row(col_base + c as usize);
                        let arow = &mut acc[r as usize * 16..(r as usize + 1) * 16];
                        for (j, a) in arow.iter_mut().take(width).enumerate() {
                            *a += w * xrow[dim0 + j];
                        }
                    }
                }

                let bases: Vec<u64> = (row_lo..row_hi)
                    .map(|r| buf_out.f32_addr(r * d + dim0))
                    .collect();
                ctx.st_global_gather_rows(&bases, width, 4);
                for (ri, r) in (row_lo..row_hi).enumerate() {
                    let orow = out.row_mut(r);
                    orow[dim0..dim0 + width].copy_from_slice(&acc[ri * 16..ri * 16 + width]);
                }
            }
        });
        let report = tcg_gpusim::cost::analyze(launcher.device(), &stats);
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{kernel_tolerance, reference_spmm};
    use crate::spmm::tcgnn::TcgnnSpmm;
    use tcg_graph::gen;
    use tcg_tensor::init;

    #[test]
    fn matches_reference() {
        let g = gen::rmat_default(512, 5000, 1).unwrap();
        let x = init::uniform(512, 16, -1.0, 1.0, 2);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (out, _) = TsparseLikeSpmm::default().execute(&mut l, &prob).unwrap();
        assert!(out.max_abs_diff(&reference_spmm(&prob)).unwrap() < kernel_tolerance(64, 16, 4.0));
    }

    #[test]
    fn dense_threshold_extremes_agree() {
        let g = gen::community(300, 3000, 16, 24, 3).unwrap();
        let x = init::uniform(300, 16, -1.0, 1.0, 4);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let all_tcu = TsparseLikeSpmm { dense_threshold: 0 };
        let all_cuda = TsparseLikeSpmm {
            dense_threshold: usize::MAX,
        };
        let mut l1 = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (o1, r1) = all_tcu.execute(&mut l1, &prob).unwrap();
        let mut l2 = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (o2, r2) = all_cuda.execute(&mut l2, &prob).unwrap();
        assert_eq!(o1.as_slice(), o2.as_slice());
        assert!(r1.stats.tcu_mma_instructions > 0);
        assert_eq!(r2.stats.tcu_mma_instructions, 0);
    }

    #[test]
    fn slower_than_tcgnn_on_scattered_graph() {
        // Table 5's ordering: TC-GNN ≫ tSparse on Type III graphs.
        let g = gen::rmat_default(8192, 80_000, 5).unwrap();
        let x = init::uniform(8192, 16, -1.0, 1.0, 6);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut l1 = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (_, r_ts) = TsparseLikeSpmm::default().execute(&mut l1, &prob).unwrap();
        let mut l2 = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (_, r_tc) = TcgnnSpmm::new(&g).execute(&mut l2, &prob).unwrap();
        assert!(
            r_ts.time_ms > r_tc.time_ms,
            "tSparse {} ms vs TC-GNN {} ms",
            r_ts.time_ms,
            r_tc.time_ms
        );
    }
}
