//! Triton-style block-sparse GEMM baseline.
//!
//! Triton's block-sparse kernels target *neural-network feature-map*
//! sparsity: a static block mask over a modest matrix, every non-empty
//! block processed as a full dense tile on tensor cores via a precomputed
//! lookup table. Applied to a graph adjacency (§6.2 / Table 5) this
//! misfires twice: virtually all non-empty blocks hold a couple of
//! non-zeros (full MMA + full tile fetch for 1-2 useful values), and the
//! lookup table itself is streamed per block with no graph-aware staging —
//! which is why the paper measures Triton behind even tSparse.

use tcg_gpusim::wmma::MMA_FLOPS;
use tcg_gpusim::{GridConfig, KernelReport, Launcher};
use tcg_tensor::DenseMatrix;

use crate::common::{SpmmKernel, SpmmProblem, TcgError};
use crate::spmm::tiling::{block_row_tiles, num_block_rows};

/// Block edge length of the block-sparse layout.
const BLK: usize = 16;

/// Triton-like block-sparse SpMM: every non-empty block on the TCU.
#[derive(Debug, Clone, Default)]
pub struct TritonBlockSparseSpmm;

impl SpmmKernel for TritonBlockSparseSpmm {
    fn name(&self) -> &'static str {
        "triton-blocksparse"
    }

    fn execute(
        &self,
        launcher: &mut Launcher,
        prob: &SpmmProblem<'_>,
    ) -> Result<(DenseMatrix, KernelReport), TcgError> {
        let csr = prob.csr;
        let n = csr.num_nodes();
        let d = prob.dim();
        let mut out = DenseMatrix::zeros(n, d);

        // Block-sparse storage: dense values per non-empty block + LUT.
        let buf_lut = launcher.try_alloc(csr.num_edges() * 16)?;
        let buf_blocks = launcher.try_alloc(csr.num_edges() * BLK * BLK * 4)?; // upper bound
        let buf_x = launcher.try_alloc_f32(prob.x.len())?;
        let buf_out = launcher.try_alloc_f32(out.len())?;

        let slabs = d.div_ceil(16);
        let brs = num_block_rows(csr, BLK);
        let cfg = GridConfig {
            block_size: 128,
            shared_mem_bytes: 2 * (BLK * BLK) * 4,
            regs_per_thread: 80,
        };

        let mut acc = vec![0.0f32; BLK * 16];
        let mut block_counter = 0usize;
        launcher.preflight("triton-blocksparse", &cfg)?;
        let stats = launcher.launch(cfg, (brs * slabs) as u64, |ctx| {
            // Triton launches one program per (block-row, output slab).
            let pid = ctx.block_id as usize;
            let br = pid / slabs;
            let s = pid % slabs;
            let tiles = block_row_tiles(csr, br, BLK);
            if tiles.is_empty() {
                return;
            }
            let row_lo = br * BLK;
            let row_hi = (row_lo + BLK).min(n);
            let dim0 = s * 16;
            let width = (d - dim0).min(16);
            acc.iter_mut().for_each(|v| *v = 0.0);

            for tile in &tiles {
                // LUT entry: block coordinates + value offset (streamed,
                // no reuse across programs).
                ctx.ld_global_contiguous(buf_lut.addr(block_counter % csr.num_edges(), 16), 4, 4);
                block_counter += 1;
                // Full dense 16×16 block of A from global memory.
                ctx.ld_global_contiguous(
                    buf_blocks.addr((tile.entries[0].2 % csr.num_edges()) * BLK * BLK, 4),
                    BLK * BLK,
                    4,
                );
                ctx.shared_access(((BLK * BLK) as u64).div_ceil(32));
                // Full X tile, fetched from global for this program alone.
                let col_base = tile.col_block as usize * BLK;
                let bases: Vec<u64> = (0..BLK)
                    .map(|k| buf_x.f32_addr((col_base + k).min(n.saturating_sub(1)) * d + dim0))
                    .collect();
                ctx.ld_global_gather_rows(&bases, width, 4);
                ctx.shared_access(8);
                // 16×16 A tile = two k8 MMAs.
                ctx.tcu_mma(MMA_FLOPS);
                ctx.tcu_mma(MMA_FLOPS);

                for &(r, c, e) in &tile.entries {
                    let w = prob.value(e);
                    let xrow = prob.x.row(col_base + c as usize);
                    let arow = &mut acc[r as usize * 16..(r as usize + 1) * 16];
                    for (j, a) in arow.iter_mut().take(width).enumerate() {
                        *a += w * xrow[dim0 + j];
                    }
                }
            }

            let bases: Vec<u64> = (row_lo..row_hi)
                .map(|r| buf_out.f32_addr(r * d + dim0))
                .collect();
            ctx.st_global_gather_rows(&bases, width, 4);
            for (ri, r) in (row_lo..row_hi).enumerate() {
                let orow = out.row_mut(r);
                orow[dim0..dim0 + width].copy_from_slice(&acc[ri * 16..ri * 16 + width]);
            }
        });
        let report = tcg_gpusim::cost::analyze(launcher.device(), &stats);
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{kernel_tolerance, reference_spmm};
    use crate::spmm::tsparse::TsparseLikeSpmm;
    use tcg_graph::gen;
    use tcg_tensor::init;

    #[test]
    fn matches_reference() {
        let g = gen::rmat_default(512, 5000, 1).unwrap();
        let x = init::uniform(512, 32, -1.0, 1.0, 2);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (out, report) = TritonBlockSparseSpmm.execute(&mut l, &prob).unwrap();
        assert!(out.max_abs_diff(&reference_spmm(&prob)).unwrap() < kernel_tolerance(64, 32, 4.0));
        assert!(report.stats.tcu_mma_instructions > 0);
    }

    #[test]
    fn weighted_matches_reference() {
        let g = gen::erdos_renyi(200, 1500, 3).unwrap();
        let x = init::uniform(200, 16, -1.0, 1.0, 4);
        let vals: Vec<f32> = (0..g.num_edges()).map(|e| 1.0 + (e % 2) as f32).collect();
        let prob = SpmmProblem::new(&g, Some(&vals), &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (out, _) = TritonBlockSparseSpmm.execute(&mut l, &prob).unwrap();
        assert!(out.max_abs_diff(&reference_spmm(&prob)).unwrap() < kernel_tolerance(64, 16, 8.0));
    }

    #[test]
    fn slower_than_tsparse_on_scattered_graph() {
        // Table 5's ordering: Triton trails tSparse on Type III graphs.
        let g = gen::rmat_default(8192, 80_000, 5).unwrap();
        let x = init::uniform(8192, 16, -1.0, 1.0, 6);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut l1 = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (_, r_tr) = TritonBlockSparseSpmm.execute(&mut l1, &prob).unwrap();
        let mut l2 = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (_, r_ts) = TsparseLikeSpmm::default().execute(&mut l2, &prob).unwrap();
        assert!(
            r_tr.time_ms > r_ts.time_ms,
            "Triton {} ms vs tSparse {} ms",
            r_tr.time_ms,
            r_ts.time_ms
        );
    }
}
