//! Edge-parallel scatter-add aggregation — the torch-scatter kernel class
//! behind PyTorch-Geometric.
//!
//! Work is distributed over *edges*: every (edge, dim) pair loads one source
//! element and atomically accumulates it into the destination row. Edges of
//! the same destination produce atomic conflicts — the "high-overhead atomic
//! operations for thread-level synchronization" the paper cites when
//! explaining PyG's inferior performance (§6.2, 1.76×/2.82× behind TC-GNN).

use tcg_gpusim::{GridConfig, KernelReport, Launcher};
use tcg_tensor::DenseMatrix;

use crate::common::{SpmmKernel, SpmmProblem, TcgError};

/// PyG-style edge-parallel scatter-gather aggregation.
#[derive(Debug, Clone, Default)]
pub struct ScatterGatherSpmm;

/// Edges per thread block (256 threads, one (edge, dim-chunk) per lane).
const EDGES_PER_BLOCK: usize = 64;

impl SpmmKernel for ScatterGatherSpmm {
    fn name(&self) -> &'static str {
        "scatter-gather"
    }

    fn execute(
        &self,
        launcher: &mut Launcher,
        prob: &SpmmProblem<'_>,
    ) -> Result<(DenseMatrix, KernelReport), TcgError> {
        let csr = prob.csr;
        let n = csr.num_nodes();
        let d = prob.dim();
        let nnz = csr.num_edges();
        let mut out = DenseMatrix::zeros(n, d);

        let buf_src = launcher.try_alloc(nnz * 4)?; // COO source array
        let buf_dst = launcher.try_alloc(nnz * 4)?; // COO destination array
        let buf_vals = launcher.try_alloc(nnz * 4)?;
        let buf_x = launcher.try_alloc_f32(prob.x.len())?;
        let buf_out = launcher.try_alloc_f32(out.len())?;

        // Flatten CSR to COO once (what PyG stores anyway).
        let mut src: Vec<u32> = Vec::with_capacity(nnz);
        let mut dst: Vec<u32> = Vec::with_capacity(nnz);
        for (s, u) in csr.iter_edges() {
            dst.push(s); // aggregation writes into the source row
            src.push(u);
        }

        let num_blocks = (nnz.div_ceil(EDGES_PER_BLOCK) as u64).max(1);
        let cfg = GridConfig {
            block_size: 256,
            shared_mem_bytes: 0,
            regs_per_thread: 32,
        };

        let mut gather_bases: Vec<u64> = Vec::with_capacity(EDGES_PER_BLOCK);
        let mut atomic_addrs: Vec<u64> = Vec::with_capacity(32);
        launcher.preflight("scatter-gather", &cfg)?;
        let stats = launcher.launch(cfg, num_blocks, |ctx| {
            let e0 = ctx.block_id as usize * EDGES_PER_BLOCK;
            let e1 = (e0 + EDGES_PER_BLOCK).min(nnz);
            if e0 >= e1 {
                return;
            }
            // COO endpoint loads: coalesced.
            ctx.ld_global_contiguous(buf_src.addr(e0, 4), e1 - e0, 4);
            ctx.ld_global_contiguous(buf_dst.addr(e0, 4), e1 - e0, 4);
            if prob.edge_values.is_some() {
                ctx.ld_global_contiguous(buf_vals.addr(e0, 4), e1 - e0, 4);
            }
            // Gather source rows.
            gather_bases.clear();
            gather_bases.extend(src[e0..e1].iter().map(|&u| buf_x.f32_addr(u as usize * d)));
            ctx.ld_global_gather_rows(&gather_bases, d, 4);

            // Scatter with atomics: warps cover (edge, dim) lanes; lanes
            // aiming at the same (dst, dim) element serialize.
            let lanes_per_edge = d.min(32);
            let edges_per_warp = (32 / lanes_per_edge).max(1);
            let mut e = e0;
            while e < e1 {
                let e_hi = (e + edges_per_warp).min(e1);
                atomic_addrs.clear();
                for &dv in &dst[e..e_hi] {
                    let base = dv as usize * d;
                    for dim in 0..lanes_per_edge {
                        atomic_addrs.push(buf_out.f32_addr(base + dim));
                    }
                }
                // One atomic instruction round per 32-lane group, replayed
                // ceil(d / 32) times for wide embeddings.
                let rounds = d.div_ceil(32).max(1);
                for _ in 0..rounds {
                    ctx.atomic_add_global(&atomic_addrs);
                }
                ctx.fma_warps(((e_hi - e) * d).div_ceil(32) as u64);
                e = e_hi;
            }

            // Functional accumulation.
            for ee in e0..e1 {
                let w = prob.value(ee);
                let xrow = prob.x.row(src[ee] as usize);
                let orow = out.row_mut(dst[ee] as usize);
                for (o, &xv) in orow.iter_mut().zip(xrow) {
                    *o += w * xv;
                }
            }
        });
        let report = tcg_gpusim::cost::analyze(launcher.device(), &stats);
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{kernel_tolerance, reference_spmm};
    use crate::spmm::gespmm::GeSpmm;
    use tcg_graph::gen;
    use tcg_tensor::init;

    #[test]
    fn matches_reference() {
        let g = gen::rmat_default(512, 5000, 1).unwrap();
        let x = init::uniform(512, 16, -1.0, 1.0, 2);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (out, report) = ScatterGatherSpmm.execute(&mut l, &prob).unwrap();
        assert!(out.max_abs_diff(&reference_spmm(&prob)).unwrap() < kernel_tolerance(64, 16, 4.0));
        assert!(report.stats.atomic_ops > 0, "scatter must use atomics");
    }

    #[test]
    fn weighted_matches_reference() {
        let g = gen::erdos_renyi(128, 1000, 3).unwrap();
        let x = init::uniform(128, 8, -1.0, 1.0, 4);
        let vals: Vec<f32> = (0..g.num_edges()).map(|e| 1.0 + (e % 3) as f32).collect();
        let prob = SpmmProblem::new(&g, Some(&vals), &x).unwrap();
        let mut l = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (out, _) = ScatterGatherSpmm.execute(&mut l, &prob).unwrap();
        assert!(out.max_abs_diff(&reference_spmm(&prob)).unwrap() < 1e-2);
    }

    #[test]
    fn slower_than_tuned_row_parallel_kernel() {
        // Hub-heavy graph: scatter's atomics pile up on hub rows, so the
        // hand-tuned row-parallel kernel (GE-SpMM) wins at kernel level.
        let g = gen::rmat_default(4096, 60_000, 5).unwrap();
        let x = init::uniform(4096, 32, -1.0, 1.0, 6);
        let prob = SpmmProblem::new(&g, None, &x).unwrap();
        let mut l1 = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (_, r_scatter) = ScatterGatherSpmm.execute(&mut l1, &prob).unwrap();
        let mut l2 = Launcher::new(tcg_gpusim::DeviceSpec::rtx3090());
        let (_, r_ge) = GeSpmm.execute(&mut l2, &prob).unwrap();
        assert!(
            r_scatter.time_ms > r_ge.time_ms,
            "scatter {} ms should trail ge-spmm {} ms",
            r_scatter.time_ms,
            r_ge.time_ms
        );
    }
}
