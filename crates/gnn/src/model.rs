//! The paper's two benchmark models — GCN (2 layers, 16 hidden) and AGNN
//! (4 propagation layers, 32 hidden) — plus the GraphSAGE and GIN models
//! §6's "benefit a broad range of GNNs" argument covers.

use tcg_profile::Phase;
use tcg_tensor::{ops, DenseMatrix};

use crate::engine::{Cost, Engine};
use crate::forward::Forward;
use crate::layers::agnn::{AgnnCache, AgnnGrads, AgnnLayer};
use crate::layers::gcn::{GcnCache, GcnGrads, GcnLayer};
use crate::layers::gin::{GinCache, GinGrads, GinLayer};
use crate::layers::linear::{Linear, LinearCache, LinearGrads};
use crate::layers::sage::{SageCache, SageGrads, SageLayer};
use crate::optim::Adam;

/// Tags subsequent profiler events with a model-layer index (no-op when
/// the engine has no profiler attached).
fn prof_set_layer(eng: &Engine, layer: Option<u32>) {
    if let Some(p) = eng.profiler() {
        p.write().expect("profiler lock").set_layer(layer);
    }
}

/// Whether every value of a weight matrix is finite.
fn mat_finite(m: &DenseMatrix) -> bool {
    m.as_slice().iter().all(|v| v.is_finite())
}

/// Whether every value of a bias vector is finite.
fn vec_finite(v: &[f32]) -> bool {
    v.iter().all(|x| x.is_finite())
}

/// Graph Convolutional Network: `GCN(in→hidden) → ReLU → GCN(hidden→out)`.
#[derive(Debug, Clone)]
pub struct GcnModel {
    /// First graph convolution.
    pub l1: GcnLayer,
    /// Second graph convolution (classifier head).
    pub l2: GcnLayer,
}

/// Forward state of [`GcnModel`].
pub struct GcnModelCache {
    c1: GcnCache,
    h1: DenseMatrix,
    c2: GcnCache,
}

/// Gradients of [`GcnModel`].
pub struct GcnModelGrads {
    g1: GcnGrads,
    g2: GcnGrads,
}

impl GcnModel {
    /// Builds the paper's GCN configuration for a dataset shape.
    pub fn new(in_dim: usize, hidden: usize, num_classes: usize, seed: u64) -> Self {
        GcnModel {
            l1: GcnLayer::new(in_dim, hidden, seed),
            l2: GcnLayer::new(hidden, num_classes, seed ^ 0x9e37),
        }
    }

    /// Forward pass to logits.
    pub fn forward(&self, eng: &mut Engine, x: &DenseMatrix) -> Forward<GcnModelCache> {
        prof_set_layer(eng, Some(0));
        let (z1, c1, cost1) = self.l1.forward(eng, x).into_parts();
        let h1 = ops::relu(&z1);
        let relu_ms = eng.elementwise_tagged_ms("relu", Phase::Other, h1.len(), 1, 1);
        prof_set_layer(eng, Some(1));
        let (logits, c2, cost2) = self.l2.forward(eng, &h1).into_parts();
        prof_set_layer(eng, None);
        Forward::new(
            logits,
            GcnModelCache {
                c1,
                h1: z1, // pre-activation saved for the ReLU mask
                c2,
            },
            cost1 + cost2 + Cost::other(relu_ms),
        )
    }

    /// Inference-only forward to logits: same kernels and simulated cost as
    /// [`GcnModel::forward`], but no gradient buffers are allocated — the
    /// frozen-model path an inference server runs per batch.
    pub fn infer(&self, eng: &mut Engine, x: &DenseMatrix) -> (DenseMatrix, Cost) {
        prof_set_layer(eng, Some(0));
        let (z1, cost1) = self.l1.infer(eng, x);
        let h1 = ops::relu(&z1);
        let relu_ms = eng.elementwise_tagged_ms("relu", Phase::Other, h1.len(), 1, 1);
        prof_set_layer(eng, Some(1));
        let (logits, cost2) = self.l2.infer(eng, &h1);
        prof_set_layer(eng, None);
        (logits, cost1 + cost2 + Cost::other(relu_ms))
    }

    /// Backward pass from logits gradient.
    pub fn backward(
        &self,
        eng: &mut Engine,
        cache: &GcnModelCache,
        dlogits: &DenseMatrix,
    ) -> (GcnModelGrads, Cost) {
        prof_set_layer(eng, Some(1));
        let (dh1, g2, cost2) = self.l2.backward(eng, &cache.c2, dlogits, true);
        let dh1 = dh1.expect("hidden layer needs dx");
        let dz1 = ops::relu_backward(&cache.h1, &dh1).expect("same shape");
        let relu_ms = eng.elementwise_tagged_ms("relu_backward", Phase::Other, dz1.len(), 2, 1);
        prof_set_layer(eng, Some(0));
        // Input layer: no dX needed (features are not trained).
        let (_, g1, cost1) = self.l1.backward(eng, &cache.c1, &dz1, false);
        prof_set_layer(eng, None);
        (
            GcnModelGrads { g1, g2 },
            cost1 + cost2 + Cost::other(relu_ms),
        )
    }

    /// Applies one Adam step; returns the optimizer's simulated cost.
    pub fn apply_grads(
        &mut self,
        eng: &mut Engine,
        adam: &mut Adam,
        grads: &GcnModelGrads,
    ) -> Cost {
        let n_params: usize = self.l1.w.len() + self.l1.b.len() + self.l2.w.len() + self.l2.b.len();
        adam.step(&mut [
            (self.l1.w.as_mut_slice(), grads.g1.dw.as_slice()),
            (self.l1.b.as_mut_slice(), &grads.g1.db),
            (self.l2.w.as_mut_slice(), grads.g2.dw.as_slice()),
            (self.l2.b.as_mut_slice(), &grads.g2.db),
        ]);
        Cost::other(eng.elementwise_tagged_ms("optimizer_step", Phase::Other, n_params, 3, 3))
    }

    /// Whether no parameter has been contaminated by NaN/Inf.
    pub fn params_finite(&self) -> bool {
        mat_finite(&self.l1.w)
            && vec_finite(&self.l1.b)
            && mat_finite(&self.l2.w)
            && vec_finite(&self.l2.b)
    }
}

/// AGNN: `Linear(in→hidden) → ReLU → k × propagation → Linear(hidden→out)`.
#[derive(Debug, Clone)]
pub struct AgnnModel {
    /// Input embedding layer.
    pub lin_in: Linear,
    /// Attention propagation layers.
    pub props: Vec<AgnnLayer>,
    /// Classifier head.
    pub lin_out: Linear,
}

/// Forward state of [`AgnnModel`].
pub struct AgnnModelCache {
    cin: LinearCache,
    z0: DenseMatrix,
    prop_caches: Vec<AgnnCache>,
    cout: LinearCache,
}

/// Gradients of [`AgnnModel`].
pub struct AgnnModelGrads {
    gin: LinearGrads,
    gprops: Vec<AgnnGrads>,
    gout: LinearGrads,
}

impl AgnnModel {
    /// Builds the paper's AGNN configuration (`layers` propagation layers).
    pub fn new(in_dim: usize, hidden: usize, num_classes: usize, layers: usize, seed: u64) -> Self {
        AgnnModel {
            lin_in: Linear::new(in_dim, hidden, seed),
            props: (0..layers).map(|_| AgnnLayer::new()).collect(),
            lin_out: Linear::new(hidden, num_classes, seed ^ 0x51ab),
        }
    }

    /// Forward pass to logits.
    pub fn forward(&self, eng: &mut Engine, x: &DenseMatrix) -> Forward<AgnnModelCache> {
        prof_set_layer(eng, Some(0));
        let (z0, cin, mut cost) = self.lin_in.forward(eng, x).into_parts();
        let mut h = ops::relu(&z0);
        cost += Cost::other(eng.elementwise_tagged_ms("relu", Phase::Other, h.len(), 1, 1));
        let mut prop_caches = Vec::with_capacity(self.props.len());
        for (i, prop) in self.props.iter().enumerate() {
            prof_set_layer(eng, Some(i as u32 + 1));
            let (h_next, cache, c) = prop.forward(eng, &h).into_parts();
            prop_caches.push(cache);
            cost += c;
            h = h_next;
        }
        prof_set_layer(eng, Some(self.props.len() as u32 + 1));
        let (logits, cout, c) = self.lin_out.forward(eng, &h).into_parts();
        prof_set_layer(eng, None);
        cost += c;
        Forward::new(
            logits,
            AgnnModelCache {
                cin,
                z0,
                prop_caches,
                cout,
            },
            cost,
        )
    }

    /// Inference-only forward to logits (no gradient buffers).
    pub fn infer(&self, eng: &mut Engine, x: &DenseMatrix) -> (DenseMatrix, Cost) {
        prof_set_layer(eng, Some(0));
        let (z0, mut cost) = self.lin_in.infer(eng, x);
        let mut h = ops::relu(&z0);
        cost += Cost::other(eng.elementwise_tagged_ms("relu", Phase::Other, h.len(), 1, 1));
        for (i, prop) in self.props.iter().enumerate() {
            prof_set_layer(eng, Some(i as u32 + 1));
            let (h_next, c) = prop.infer(eng, &h);
            cost += c;
            h = h_next;
        }
        prof_set_layer(eng, Some(self.props.len() as u32 + 1));
        let (logits, c) = self.lin_out.infer(eng, &h);
        prof_set_layer(eng, None);
        cost += c;
        (logits, cost)
    }

    /// Backward pass from logits gradient.
    pub fn backward(
        &self,
        eng: &mut Engine,
        cache: &AgnnModelCache,
        dlogits: &DenseMatrix,
    ) -> (AgnnModelGrads, Cost) {
        prof_set_layer(eng, Some(self.props.len() as u32 + 1));
        let (dh, gout, mut cost) = self.lin_out.backward(eng, &cache.cout, dlogits, true);
        let mut dh = dh.expect("hidden layer needs dx");
        let mut gprops = vec![AgnnGrads { dbeta: 0.0 }; self.props.len()];
        for (i, prop) in self.props.iter().enumerate().rev() {
            prof_set_layer(eng, Some(i as u32 + 1));
            let (dx, g, c) = prop.backward(eng, &cache.prop_caches[i], &dh);
            gprops[i] = g;
            cost += c;
            dh = dx;
        }
        prof_set_layer(eng, Some(0));
        let dz0 = ops::relu_backward(&cache.z0, &dh).expect("same shape");
        cost +=
            Cost::other(eng.elementwise_tagged_ms("relu_backward", Phase::Other, dz0.len(), 2, 1));
        // Input layer: features are not trained, skip dX.
        let (_, gin, c) = self.lin_in.backward(eng, &cache.cin, &dz0, false);
        prof_set_layer(eng, None);
        cost += c;
        (AgnnModelGrads { gin, gprops, gout }, cost)
    }

    /// Applies one Adam step; returns the optimizer's simulated cost.
    pub fn apply_grads(
        &mut self,
        eng: &mut Engine,
        adam: &mut Adam,
        grads: &AgnnModelGrads,
    ) -> Cost {
        let mut betas: Vec<f32> = self.props.iter().map(|p| p.beta).collect();
        let dbetas: Vec<f32> = grads.gprops.iter().map(|g| g.dbeta).collect();
        let n_params = self.lin_in.w.len()
            + self.lin_in.b.len()
            + self.lin_out.w.len()
            + self.lin_out.b.len()
            + betas.len();
        adam.step(&mut [
            (self.lin_in.w.as_mut_slice(), grads.gin.dw.as_slice()),
            (self.lin_in.b.as_mut_slice(), &grads.gin.db),
            (self.lin_out.w.as_mut_slice(), grads.gout.dw.as_slice()),
            (self.lin_out.b.as_mut_slice(), &grads.gout.db),
            (&mut betas, &dbetas),
        ]);
        for (p, b) in self.props.iter_mut().zip(betas) {
            p.beta = b;
        }
        Cost::other(eng.elementwise_tagged_ms("optimizer_step", Phase::Other, n_params, 3, 3))
    }

    /// Whether no parameter has been contaminated by NaN/Inf.
    pub fn params_finite(&self) -> bool {
        mat_finite(&self.lin_in.w)
            && vec_finite(&self.lin_in.b)
            && mat_finite(&self.lin_out.w)
            && vec_finite(&self.lin_out.b)
            && self.props.iter().all(|p| p.beta.is_finite())
    }
}

/// GraphSAGE: `SAGE(in→hidden) → ReLU → SAGE(hidden→out)`.
#[derive(Debug, Clone)]
pub struct SageModel {
    /// First SAGE layer.
    pub l1: SageLayer,
    /// Classifier SAGE layer.
    pub l2: SageLayer,
}

/// Forward state of [`SageModel`].
pub struct SageModelCache {
    c1: SageCache,
    z1: DenseMatrix,
    c2: SageCache,
}

/// Gradients of [`SageModel`].
pub struct SageModelGrads {
    g1: SageGrads,
    g2: SageGrads,
}

impl SageModel {
    /// Builds a 2-layer GraphSAGE.
    pub fn new(in_dim: usize, hidden: usize, num_classes: usize, seed: u64) -> Self {
        SageModel {
            l1: SageLayer::new(in_dim, hidden, seed),
            l2: SageLayer::new(hidden, num_classes, seed ^ 0x5a6e),
        }
    }

    /// Forward pass to logits.
    pub fn forward(&self, eng: &mut Engine, x: &DenseMatrix) -> Forward<SageModelCache> {
        prof_set_layer(eng, Some(0));
        let (z1, c1, cost1) = self.l1.forward(eng, x).into_parts();
        let h1 = ops::relu(&z1);
        let relu_ms = eng.elementwise_tagged_ms("relu", Phase::Other, h1.len(), 1, 1);
        prof_set_layer(eng, Some(1));
        let (logits, c2, cost2) = self.l2.forward(eng, &h1).into_parts();
        prof_set_layer(eng, None);
        Forward::new(
            logits,
            SageModelCache { c1, z1, c2 },
            cost1 + cost2 + Cost::other(relu_ms),
        )
    }

    /// Inference-only forward to logits (no gradient buffers).
    pub fn infer(&self, eng: &mut Engine, x: &DenseMatrix) -> (DenseMatrix, Cost) {
        prof_set_layer(eng, Some(0));
        let (z1, cost1) = self.l1.infer(eng, x);
        let h1 = ops::relu(&z1);
        let relu_ms = eng.elementwise_tagged_ms("relu", Phase::Other, h1.len(), 1, 1);
        prof_set_layer(eng, Some(1));
        let (logits, cost2) = self.l2.infer(eng, &h1);
        prof_set_layer(eng, None);
        (logits, cost1 + cost2 + Cost::other(relu_ms))
    }

    /// Backward pass from logits gradient.
    pub fn backward(
        &self,
        eng: &mut Engine,
        cache: &SageModelCache,
        dlogits: &DenseMatrix,
    ) -> (SageModelGrads, Cost) {
        prof_set_layer(eng, Some(1));
        let (dh1, g2, cost2) = self.l2.backward(eng, &cache.c2, dlogits, true);
        let dh1 = dh1.expect("hidden layer needs dx");
        let dz1 = ops::relu_backward(&cache.z1, &dh1).expect("same shape");
        let relu_ms = eng.elementwise_tagged_ms("relu_backward", Phase::Other, dz1.len(), 2, 1);
        prof_set_layer(eng, Some(0));
        let (_, g1, cost1) = self.l1.backward(eng, &cache.c1, &dz1, false);
        prof_set_layer(eng, None);
        (
            SageModelGrads { g1, g2 },
            cost1 + cost2 + Cost::other(relu_ms),
        )
    }

    /// Applies one Adam step; returns the optimizer's simulated cost.
    pub fn apply_grads(
        &mut self,
        eng: &mut Engine,
        adam: &mut Adam,
        grads: &SageModelGrads,
    ) -> Cost {
        let n_params =
            self.l1.w_self.len() * 2 + self.l1.b.len() + self.l2.w_self.len() * 2 + self.l2.b.len();
        adam.step(&mut [
            (self.l1.w_self.as_mut_slice(), grads.g1.dw_self.as_slice()),
            (self.l1.w_neigh.as_mut_slice(), grads.g1.dw_neigh.as_slice()),
            (self.l1.b.as_mut_slice(), &grads.g1.db),
            (self.l2.w_self.as_mut_slice(), grads.g2.dw_self.as_slice()),
            (self.l2.w_neigh.as_mut_slice(), grads.g2.dw_neigh.as_slice()),
            (self.l2.b.as_mut_slice(), &grads.g2.db),
        ]);
        Cost::other(eng.elementwise_tagged_ms("optimizer_step", Phase::Other, n_params, 3, 3))
    }

    /// Whether no parameter has been contaminated by NaN/Inf.
    pub fn params_finite(&self) -> bool {
        [&self.l1, &self.l2]
            .iter()
            .all(|l| mat_finite(&l.w_self) && mat_finite(&l.w_neigh) && vec_finite(&l.b))
    }
}

/// GIN: `GIN(in→hidden) → GIN(hidden→out)` (each layer carries its own MLP
/// with a ReLU inside, so no extra activation between layers).
#[derive(Debug, Clone)]
pub struct GinModel {
    /// First GIN layer.
    pub l1: GinLayer,
    /// Classifier GIN layer.
    pub l2: GinLayer,
}

/// Forward state of [`GinModel`].
pub struct GinModelCache {
    c1: GinCache,
    c2: GinCache,
}

/// Gradients of [`GinModel`].
pub struct GinModelGrads {
    g1: GinGrads,
    g2: GinGrads,
}

impl GinModel {
    /// Builds a 2-layer GIN with MLP hidden width = `hidden`.
    pub fn new(in_dim: usize, hidden: usize, num_classes: usize, seed: u64) -> Self {
        GinModel {
            l1: GinLayer::new(in_dim, hidden, hidden, seed),
            l2: GinLayer::new(hidden, hidden, num_classes, seed ^ 0x6169),
        }
    }

    /// Forward pass to logits.
    pub fn forward(&self, eng: &mut Engine, x: &DenseMatrix) -> Forward<GinModelCache> {
        prof_set_layer(eng, Some(0));
        let (h1, c1, cost1) = self.l1.forward(eng, x).into_parts();
        prof_set_layer(eng, Some(1));
        let (logits, c2, cost2) = self.l2.forward(eng, &h1).into_parts();
        prof_set_layer(eng, None);
        Forward::new(logits, GinModelCache { c1, c2 }, cost1 + cost2)
    }

    /// Inference-only forward to logits (no gradient buffers).
    pub fn infer(&self, eng: &mut Engine, x: &DenseMatrix) -> (DenseMatrix, Cost) {
        prof_set_layer(eng, Some(0));
        let (h1, cost1) = self.l1.infer(eng, x);
        prof_set_layer(eng, Some(1));
        let (logits, cost2) = self.l2.infer(eng, &h1);
        prof_set_layer(eng, None);
        (logits, cost1 + cost2)
    }

    /// Backward pass from logits gradient.
    pub fn backward(
        &self,
        eng: &mut Engine,
        cache: &GinModelCache,
        dlogits: &DenseMatrix,
    ) -> (GinModelGrads, Cost) {
        prof_set_layer(eng, Some(1));
        let (dh1, g2, cost2) = self.l2.backward(eng, &cache.c2, dlogits, true);
        let dh1 = dh1.expect("hidden layer needs dx");
        prof_set_layer(eng, Some(0));
        let (_, g1, cost1) = self.l1.backward(eng, &cache.c1, &dh1, false);
        prof_set_layer(eng, None);
        (GinModelGrads { g1, g2 }, cost1 + cost2)
    }

    /// Applies one Adam step; returns the optimizer's simulated cost.
    pub fn apply_grads(
        &mut self,
        eng: &mut Engine,
        adam: &mut Adam,
        grads: &GinModelGrads,
    ) -> Cost {
        let mut eps = [self.l1.eps, self.l2.eps];
        let deps = [grads.g1.deps, grads.g2.deps];
        let n_params = self.l1.w1.len()
            + self.l1.w2.len()
            + self.l2.w1.len()
            + self.l2.w2.len()
            + self.l1.b1.len()
            + self.l1.b2.len()
            + self.l2.b1.len()
            + self.l2.b2.len()
            + 2;
        adam.step(&mut [
            (self.l1.w1.as_mut_slice(), grads.g1.dw1.as_slice()),
            (self.l1.b1.as_mut_slice(), &grads.g1.db1),
            (self.l1.w2.as_mut_slice(), grads.g1.dw2.as_slice()),
            (self.l1.b2.as_mut_slice(), &grads.g1.db2),
            (self.l2.w1.as_mut_slice(), grads.g2.dw1.as_slice()),
            (self.l2.b1.as_mut_slice(), &grads.g2.db1),
            (self.l2.w2.as_mut_slice(), grads.g2.dw2.as_slice()),
            (self.l2.b2.as_mut_slice(), &grads.g2.db2),
            (&mut eps, &deps),
        ]);
        self.l1.eps = eps[0];
        self.l2.eps = eps[1];
        Cost::other(eng.elementwise_tagged_ms("optimizer_step", Phase::Other, n_params, 3, 3))
    }

    /// Whether no parameter has been contaminated by NaN/Inf.
    pub fn params_finite(&self) -> bool {
        [&self.l1, &self.l2].iter().all(|l| {
            l.eps.is_finite()
                && mat_finite(&l.w1)
                && vec_finite(&l.b1)
                && mat_finite(&l.w2)
                && vec_finite(&l.b2)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Backend;
    use tcg_gpusim::DeviceSpec;
    use tcg_graph::gen;
    use tcg_tensor::init;

    fn engine() -> Engine {
        let g = gen::erdos_renyi(60, 400, 1).unwrap();
        Engine::builder(g)
            .backend(Backend::TcGnn)
            .device(DeviceSpec::rtx3090())
            .build()
            .expect("graph is symmetric")
    }

    #[test]
    fn gcn_model_shapes() {
        let mut eng = engine();
        let model = GcnModel::new(10, 16, 4, 1);
        let x = init::uniform(60, 10, -1.0, 1.0, 2);
        let (logits, cache, cost) = model.forward(&mut eng, &x).into_parts();
        assert_eq!(logits.shape(), (60, 4));
        assert!(cost.aggregation_ms > 0.0 && cost.update_ms > 0.0);
        let dl = init::uniform(60, 4, -0.1, 0.1, 3);
        let (grads, bcost) = model.backward(&mut eng, &cache, &dl);
        assert_eq!(grads.g1.dw.shape(), (10, 16));
        assert_eq!(grads.g2.dw.shape(), (16, 4));
        assert!(bcost.aggregation_ms > 0.0);
    }

    #[test]
    fn agnn_model_shapes() {
        let mut eng = engine();
        let model = AgnnModel::new(8, 32, 5, 4, 1);
        let x = init::uniform(60, 8, -1.0, 1.0, 2);
        let (logits, cache, cost) = model.forward(&mut eng, &x).into_parts();
        assert_eq!(logits.shape(), (60, 5));
        assert!(cost.aggregation_ms > 0.0);
        let dl = init::uniform(60, 5, -0.1, 0.1, 3);
        let (grads, _) = model.backward(&mut eng, &cache, &dl);
        assert_eq!(grads.gprops.len(), 4);
        assert_eq!(grads.gin.dw.shape(), (8, 32));
        assert_eq!(grads.gout.dw.shape(), (32, 5));
    }

    #[test]
    fn sage_model_shapes() {
        let mut eng = engine();
        let model = SageModel::new(9, 12, 5, 1);
        let x = init::uniform(60, 9, -1.0, 1.0, 2);
        let (logits, cache, cost) = model.forward(&mut eng, &x).into_parts();
        assert_eq!(logits.shape(), (60, 5));
        assert!(cost.aggregation_ms > 0.0);
        let (grads, _) = model.backward(&mut eng, &cache, &logits);
        assert_eq!(grads.g1.dw_self.shape(), (9, 12));
        assert_eq!(grads.g2.dw_neigh.shape(), (12, 5));
    }

    #[test]
    fn gin_model_shapes() {
        let mut eng = engine();
        let model = GinModel::new(7, 10, 4, 1);
        let x = init::uniform(60, 7, -1.0, 1.0, 2);
        let (logits, cache, cost) = model.forward(&mut eng, &x).into_parts();
        assert_eq!(logits.shape(), (60, 4));
        assert!(cost.aggregation_ms > 0.0);
        let (grads, _) = model.backward(&mut eng, &cache, &logits);
        assert_eq!(grads.g1.dw1.shape(), (7, 10));
        assert_eq!(grads.g2.dw2.shape(), (10, 4));
    }

    #[test]
    fn infer_matches_forward_logits_and_cost() {
        // Same kernels run in the same order, so inference must agree with
        // the training forward bit-for-bit and millisecond-for-millisecond.
        // Fresh engines per pass: the launcher's L2 simulator persists
        // across launches, so reusing one engine would make the second
        // pass's cost reflect a warm cache rather than a code difference.
        let fresh = |backend| {
            let g = gen::erdos_renyi(60, 400, 1).unwrap();
            Engine::builder(g)
                .backend(backend)
                .device(DeviceSpec::rtx3090())
                .build()
                .expect("graph is symmetric")
        };
        let x8 = init::uniform(60, 8, -1.0, 1.0, 2);
        let x10 = init::uniform(60, 10, -1.0, 1.0, 2);
        for backend in Backend::all() {
            let gcn = GcnModel::new(10, 16, 4, 1);
            let (fwd, _, fcost) = gcn.forward(&mut fresh(backend), &x10).into_parts();
            let (inf, icost) = gcn.infer(&mut fresh(backend), &x10);
            assert_eq!(fwd.as_slice(), inf.as_slice());
            assert_eq!(fcost.total_ms(), icost.total_ms());

            let agnn = AgnnModel::new(8, 32, 5, 2, 1);
            let (fwd, _, fcost) = agnn.forward(&mut fresh(backend), &x8).into_parts();
            let (inf, icost) = agnn.infer(&mut fresh(backend), &x8);
            assert_eq!(fwd.as_slice(), inf.as_slice());
            assert_eq!(fcost.total_ms(), icost.total_ms());

            let sage = SageModel::new(8, 12, 5, 1);
            let (fwd, _, fcost) = sage.forward(&mut fresh(backend), &x8).into_parts();
            let (inf, icost) = sage.infer(&mut fresh(backend), &x8);
            assert_eq!(fwd.as_slice(), inf.as_slice());
            assert_eq!(fcost.total_ms(), icost.total_ms());

            let gin = GinModel::new(8, 10, 4, 1);
            let (fwd, _, fcost) = gin.forward(&mut fresh(backend), &x8).into_parts();
            let (inf, icost) = gin.infer(&mut fresh(backend), &x8);
            assert_eq!(fwd.as_slice(), inf.as_slice());
            assert_eq!(fcost.total_ms(), icost.total_ms());
        }
    }

    #[test]
    fn apply_grads_changes_parameters() {
        let mut eng = engine();
        let mut model = GcnModel::new(6, 8, 3, 4);
        let x = init::uniform(60, 6, -1.0, 1.0, 5);
        let (logits, cache, _) = model.forward(&mut eng, &x).into_parts();
        let (grads, _) = model.backward(&mut eng, &cache, &logits);
        let before = model.l1.w.clone();
        let mut adam = Adam::new(0.01);
        let cost = model.apply_grads(&mut eng, &mut adam, &grads);
        assert!(cost.other_ms > 0.0);
        assert_ne!(model.l1.w, before);
    }
}
