//! Masked softmax cross-entropy for semi-supervised node classification.

use tcg_tensor::{ops, DenseMatrix};

/// Result of a loss evaluation.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean negative log-likelihood over masked nodes.
    pub loss: f64,
    /// Gradient w.r.t. the logits (zero outside the mask).
    pub dlogits: DenseMatrix,
    /// Accuracy over masked nodes.
    pub accuracy: f64,
}

/// Computes masked cross-entropy loss, logits gradient, and accuracy.
///
/// `mask[v]` selects the nodes contributing to the loss (the training
/// split); gradient rows of unmasked nodes are zero. Returns zero loss and
/// accuracy for an empty mask.
pub fn masked_cross_entropy(logits: &DenseMatrix, labels: &[u32], mask: &[bool]) -> LossOutput {
    assert_eq!(logits.rows(), labels.len());
    assert_eq!(logits.rows(), mask.len());
    let k = logits.cols();
    let count = mask.iter().filter(|&&m| m).count();
    let mut dlogits = DenseMatrix::zeros(logits.rows(), k);
    if count == 0 {
        return LossOutput {
            loss: 0.0,
            dlogits,
            accuracy: 0.0,
        };
    }
    let probs = ops::softmax_rows(logits);
    let preds = ops::argmax_rows(logits);
    let mut loss = 0.0f64;
    let mut correct = 0usize;
    let inv = 1.0 / count as f32;
    for v in 0..logits.rows() {
        if !mask[v] {
            continue;
        }
        let label = labels[v] as usize;
        debug_assert!(label < k);
        let p = probs.get(v, label).max(1e-12);
        loss -= (p as f64).ln();
        if preds[v] == label {
            correct += 1;
        }
        let drow = dlogits.row_mut(v);
        for (j, d) in drow.iter_mut().enumerate() {
            let indicator = if j == label { 1.0 } else { 0.0 };
            *d = (probs.get(v, j) - indicator) * inv;
        }
    }
    LossOutput {
        loss: loss / count as f64,
        dlogits,
        accuracy: correct as f64 / count as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcg_tensor::init;

    #[test]
    fn perfect_logits_give_low_loss_and_full_accuracy() {
        let mut logits = DenseMatrix::zeros(4, 3);
        let labels = [0u32, 1, 2, 1];
        for (v, &l) in labels.iter().enumerate() {
            logits.set(v, l as usize, 20.0);
        }
        let out = masked_cross_entropy(&logits, &labels, &[true; 4]);
        assert!(out.loss < 1e-3);
        assert_eq!(out.accuracy, 1.0);
    }

    #[test]
    fn uniform_logits_loss_is_log_k() {
        let logits = DenseMatrix::zeros(10, 4);
        let labels = vec![0u32; 10];
        let out = masked_cross_entropy(&logits, &labels, &vec![true; 10]);
        assert!((out.loss - (4.0f64).ln()).abs() < 1e-5);
    }

    #[test]
    fn mask_zeroes_gradient_outside() {
        let logits = init::uniform(6, 3, -1.0, 1.0, 1);
        let labels = vec![1u32; 6];
        let mask = vec![true, false, true, false, false, true];
        let out = masked_cross_entropy(&logits, &labels, &mask);
        for v in 0..6 {
            let row_norm: f32 = out.dlogits.row(v).iter().map(|x| x.abs()).sum();
            if mask[v] {
                assert!(row_norm > 0.0);
            } else {
                assert_eq!(row_norm, 0.0);
            }
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = init::uniform(5, 4, -1.0, 1.0, 2);
        let labels = vec![2u32, 0, 3, 1, 2];
        let mask = vec![true, true, false, true, true];
        let out = masked_cross_entropy(&logits, &labels, &mask);
        let eps = 1e-3f32;
        for &(v, j) in &[(0usize, 2usize), (1, 0), (4, 3), (3, 1)] {
            let mut lp = logits.clone();
            lp.set(v, j, lp.get(v, j) + eps);
            let mut lm = logits.clone();
            lm.set(v, j, lm.get(v, j) - eps);
            let fp = masked_cross_entropy(&lp, &labels, &mask).loss;
            let fm = masked_cross_entropy(&lm, &labels, &mask).loss;
            let fd = (fp - fm) / (2.0 * eps as f64);
            let an = out.dlogits.get(v, j) as f64;
            assert!((fd - an).abs() < 1e-3, "({v},{j}): fd {fd} vs {an}");
        }
    }

    #[test]
    fn empty_mask_is_safe() {
        let logits = DenseMatrix::zeros(3, 2);
        let out = masked_cross_entropy(&logits, &[0, 1, 0], &[false; 3]);
        assert_eq!(out.loss, 0.0);
        assert_eq!(out.accuracy, 0.0);
    }
}
