//! Optimizers: Adam (the paper's training setup uses Adam, as the original
//! GCN/AGNN papers do) and plain SGD for tests.

/// Adam optimizer over a fixed set of parameter tensors.
///
/// Parameters are registered implicitly by position: every call to
/// [`Adam::step`] must pass the same tensors in the same order. Moment
/// buffers are allocated lazily on first use.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Standard Adam with `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// One optimization step over `(param, grad)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a parameter's length changed between steps or a gradient
    /// length mismatches its parameter.
    pub fn step(&mut self, pairs: &mut [(&mut [f32], &[f32])]) {
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t);
        let b2t = 1.0 - self.beta2.powi(self.t);
        while self.m.len() < pairs.len() {
            self.m.push(Vec::new());
            self.v.push(Vec::new());
        }
        for (idx, (param, grad)) in pairs.iter_mut().enumerate() {
            assert_eq!(param.len(), grad.len(), "param/grad length mismatch");
            let m = &mut self.m[idx];
            let v = &mut self.v[idx];
            if m.is_empty() {
                m.resize(param.len(), 0.0);
                v.resize(param.len(), 0.0);
            }
            assert_eq!(m.len(), param.len(), "parameter shape changed");
            for i in 0..param.len() {
                let g = grad[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
                let mh = m[i] / b1t;
                let vh = v[i] / b2t;
                param[i] -= self.lr * mh / (vh.sqrt() + self.eps);
            }
        }
    }
}

/// Plain SGD, used by tests as a simple reference.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// One descent step over `(param, grad)` pairs.
    pub fn step(&self, pairs: &mut [(&mut [f32], &[f32])]) {
        for (param, grad) in pairs.iter_mut() {
            assert_eq!(param.len(), grad.len());
            for i in 0..param.len() {
                param[i] -= self.lr * grad[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f(x) = Σ (x_i - target_i)², grad = 2(x - target).
    fn quad_grad(x: &[f32], target: &[f32]) -> Vec<f32> {
        x.iter().zip(target).map(|(a, b)| 2.0 * (a - b)).collect()
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let target = [3.0f32, -2.0, 0.5];
        let mut x = vec![0.0f32; 3];
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let g = quad_grad(&x, &target);
            opt.step(&mut [(&mut x, &g)]);
        }
        for (a, b) in x.iter().zip(&target) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let target = [1.0f32, 2.0];
        let mut x = vec![-5.0f32; 2];
        let opt = Sgd::new(0.1);
        for _ in 0..200 {
            let g = quad_grad(&x, &target);
            opt.step(&mut [(&mut x, &g)]);
        }
        for (a, b) in x.iter().zip(&target) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn adam_handles_multiple_tensors() {
        let mut a = vec![0.0f32; 2];
        let mut b = vec![0.0f32; 4];
        let mut opt = Adam::new(0.05);
        for _ in 0..600 {
            let ga = quad_grad(&a, &[1.0, 1.0]);
            let gb = quad_grad(&b, &[-1.0, -1.0, -1.0, -1.0]);
            opt.step(&mut [(&mut a, &ga), (&mut b, &gb)]);
        }
        assert!(a.iter().all(|v| (v - 1.0).abs() < 5e-2));
        assert!(b.iter().all(|v| (v + 1.0).abs() < 5e-2));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_grad_panics() {
        let mut x = vec![0.0f32; 3];
        let g = vec![0.0f32; 2];
        Adam::new(0.1).step(&mut [(&mut x, &g)]);
    }
}
