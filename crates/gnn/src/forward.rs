//! The common forward-pass vocabulary: every layer and model forward
//! returns a [`Forward`] value instead of an ad-hoc 3-tuple, and every
//! layer exposes the same surface through the [`Layer`] trait.

use tcg_tensor::DenseMatrix;

use crate::engine::{Cost, Engine};

/// Result of a forward pass: the output activations, the state the
/// backward pass needs, and the simulated cost of the kernels launched.
///
/// Named fields replace the old `(DenseMatrix, Cache, Cost)` tuples so
/// call sites can't transpose cache and cost (both were frequently
/// ignored with `_`, which hid such bugs), and so adding a field later is
/// not a breaking change at every destructuring site.
#[derive(Debug, Clone)]
pub struct Forward<C> {
    /// Output activations (`num_nodes × out_dim`).
    pub out: DenseMatrix,
    /// Saved forward state consumed by the backward pass.
    pub cache: C,
    /// Simulated GPU cost of the pass, split by phase.
    pub cost: Cost,
}

impl<C> Forward<C> {
    /// Bundles the three results of a forward pass.
    pub fn new(out: DenseMatrix, cache: C, cost: Cost) -> Self {
        Forward { out, cache, cost }
    }

    /// Splits back into `(out, cache, cost)` for callers that want to
    /// destructure all three in one `let`.
    pub fn into_parts(self) -> (DenseMatrix, C, Cost) {
        (self.out, self.cache, self.cost)
    }

    /// Drops the cache — the inference view of a training forward.
    pub fn discard_cache(self) -> (DenseMatrix, Cost) {
        (self.out, self.cost)
    }
}

/// The surface every GNN layer exposes: forward to a [`Forward`] bundle,
/// a cache-free inference pass with identical math and cost, and a
/// backward pass from the output gradient.
///
/// `needs_dx = false` lets input layers skip the input-gradient
/// GEMM/aggregation, as real frameworks do; implementations whose math
/// always produces `dX` anyway (e.g. AGNN's propagation layer) may ignore
/// the flag and still return `Some`.
pub trait Layer {
    /// Intermediate activations the backward pass needs.
    type Cache;
    /// Parameter gradients produced by the backward pass.
    type Grads;

    /// Forward pass.
    fn forward(&self, eng: &mut Engine, x: &DenseMatrix) -> Forward<Self::Cache>;

    /// Inference-only forward: identical kernels and simulated cost to
    /// [`Layer::forward`], but no backward state is built.
    fn infer(&self, eng: &mut Engine, x: &DenseMatrix) -> (DenseMatrix, Cost);

    /// Backward pass: given `dY` returns `(dX, grads, cost)`.
    fn backward(
        &self,
        eng: &mut Engine,
        cache: &Self::Cache,
        dy: &DenseMatrix,
        needs_dx: bool,
    ) -> (Option<DenseMatrix>, Self::Grads, Cost);
}
