//! The aggregation engine: one graph, one backend, simulated costs.

use tcg_fault::{FaultPlan, FaultReport, RetryPolicy, TcgError};
use tcg_gpusim::cost::stream_pass_report;
use tcg_gpusim::{DeviceSpec, Launcher};
use tcg_graph::CsrGraph;
use tcg_kernels::common::{SpmmKernel, SpmmProblem};
use tcg_kernels::hybrid::{render_mask, DispatchPolicy, KernelClass, WindowBackend};
use tcg_kernels::sddmm::{CudaCoreSddmm, HybridSddmm, SddmmKernel, TcgnnSddmm};
use tcg_kernels::softmax::sparse_row_softmax;
use tcg_kernels::spmm::{CusparseCsrSpmm, HybridSpmm, ScatterGatherSpmm, TcgnnSpmm};
use tcg_profile::{Phase, SharedProfiler};
use tcg_tensor::DenseMatrix;

/// Which framework's aggregation path the engine models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Deep Graph Library: cuSPARSE-class kernels + framework passes.
    DglLike,
    /// PyTorch-Geometric: torch-scatter + materialized edge intermediates.
    PygLike,
    /// TC-GNN: SGT-translated tensor-core kernels.
    TcGnn,
    /// Hybrid: per-row-window dispatch between the TC-GNN tensor-core
    /// body and the cuSPARSE-class CUDA-core body, decided by the cost
    /// model's window-geometry score (one mixed launch per op).
    Hybrid,
}

impl Backend {
    /// Display name matching the paper's labels.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::DglLike => "DGL",
            Backend::PygLike => "PyG",
            Backend::TcGnn => "TC-GNN",
            Backend::Hybrid => "Hybrid",
        }
    }

    /// The paper's three backends, in the order the figures list them.
    /// (The hybrid dispatcher is not a paper baseline; callers that want
    /// it too use [`Backend::all_with_hybrid`].)
    pub fn all() -> [Backend; 3] {
        [Backend::DglLike, Backend::PygLike, Backend::TcGnn]
    }

    /// Every backend, hybrid included.
    pub fn all_with_hybrid() -> [Backend; 4] {
        [
            Backend::DglLike,
            Backend::PygLike,
            Backend::TcGnn,
            Backend::Hybrid,
        ]
    }

    /// Whether this backend consumes an SGT translation.
    pub fn uses_translation(&self) -> bool {
        matches!(self, Backend::TcGnn | Backend::Hybrid)
    }
}

/// Simulated milliseconds attributed to pipeline phases.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Cost {
    /// Sparse aggregation work: SpMM, SDDMM, softmax, normalization passes.
    pub aggregation_ms: f64,
    /// Dense update work: the `X·W` GEMMs.
    pub update_ms: f64,
    /// Everything else: activations, loss, optimizer.
    pub other_ms: f64,
}

impl Cost {
    /// Total across phases.
    pub fn total_ms(&self) -> f64 {
        self.aggregation_ms + self.update_ms + self.other_ms
    }

    /// A cost that is pure aggregation.
    pub fn agg(ms: f64) -> Cost {
        Cost {
            aggregation_ms: ms,
            ..Default::default()
        }
    }

    /// A cost that is pure dense update.
    pub fn update(ms: f64) -> Cost {
        Cost {
            update_ms: ms,
            ..Default::default()
        }
    }

    /// A cost that is neither aggregation nor update.
    pub fn other(ms: f64) -> Cost {
        Cost {
            other_ms: ms,
            ..Default::default()
        }
    }
}

impl std::ops::Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            aggregation_ms: self.aggregation_ms + rhs.aggregation_ms,
            update_ms: self.update_ms + rhs.update_ms,
            other_ms: self.other_ms + rhs.other_ms,
        }
    }
}

impl std::ops::AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

/// Host-side dispatch cost per sparse graph operation for DGL/PyG, in ms.
///
/// At Type I graph sizes every kernel is microseconds, so end-to-end time
/// is dominated by the framework: Python dispatch, DGL/PyG graph-object
/// handling and kernel-argument marshalling — tens of microseconds per op
/// (GNNAdvisor, OSDI'21, measures exactly this overhead for DGL). TC-GNN's
/// fused C++ extension pays a smaller constant.
pub const FRAMEWORK_DISPATCH_MS: f64 = 0.015;
/// Host-side dispatch cost per TC-GNN extension call, in ms.
pub const EXTENSION_DISPATCH_MS: f64 = 0.005;
/// Host-side dispatch cost per dense (cuBLAS / elementwise) op, in ms.
pub const DENSE_DISPATCH_MS: f64 = 0.005;

/// How the engine responds to injected (or detected) device faults.
///
/// Transient faults — failed launches and staging-buffer OOM — are retried
/// up to `max_retries` times with the [`RetryPolicy`]'s seeded exponential
/// backoff charged as a `retry_backoff` span. A fault that survives its
/// retries, plus every persistent fault, degrades the op: the same
/// computation reruns on the CUDA-core fallback kernel (`CusparseCsrSpmm` /
/// `CudaCoreSddmm`) with injection suppressed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Retry budget per op for transient faults.
    pub max_retries: u32,
    /// Backoff schedule. The default (base 0.05 ms, multiplier 2, no
    /// jitter) reproduces the historical linear `0.05 * attempt`
    /// milliseconds bit-for-bit within the default retry budget.
    pub backoff: RetryPolicy,
    /// Whether to scan kernel reports for consumed ECC bit flips and
    /// degrade the op (discarding the poisoned output). With the scan off,
    /// NaN-poisoned results propagate to the caller — the trainer's
    /// checkpoint/rollback guard is then the only line of defense.
    pub ecc_scan: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            backoff: RetryPolicy::default(),
            ecc_scan: true,
        }
    }
}

/// A graph bound to a backend: owns the simulated device state, the
/// backend's kernels, and the per-graph preprocessing (SGT translation for
/// TC-GNN, symmetric-normalization values, transpose permutation).
pub struct Engine {
    backend: Backend,
    launcher: Launcher,
    csr: CsrGraph,
    /// Edge permutation realizing `Aᵀ` value alignment.
    t_perm: Vec<u32>,
    /// Per-edge `1/sqrt(d_u d_v)` (GCN symmetric normalization).
    gcn_norm: Vec<f32>,
    /// Per-edge `1/d_src` (GraphSAGE mean normalization).
    mean_norm: Vec<f32>,
    /// `mean_norm` realigned to the transposed edge order.
    mean_norm_t: Vec<f32>,
    /// Per-node `1/sqrt(d)` for the pre/post scaling path.
    inv_sqrt_deg: Vec<f32>,
    spmm: Box<dyn SpmmKernel>,
    sddmm: Box<dyn SddmmKernel>,
    /// The SGT translation (TC-GNN/hybrid backends; enables the fused path).
    translated: Option<tcg_sgt::TranslatedGraph>,
    /// Per-window dispatch policies, `(spmm, sddmm)` (hybrid backend only).
    hybrid_policies: Option<(DispatchPolicy, DispatchPolicy)>,
    /// One-time preprocessing cost (SGT for TC-GNN), modeled host ms.
    preprocessing_ms: f64,
    /// Most recent SpMM kernel report (for profiling tables).
    pub last_spmm_report: Option<tcg_gpusim::KernelReport>,
    /// Most recent SDDMM kernel report.
    pub last_sddmm_report: Option<tcg_gpusim::KernelReport>,
    /// Most recent fused-attention kernel report (TC-GNN backend only).
    pub last_fused_report: Option<tcg_gpusim::KernelReport>,
    /// Attached tracer; `None` (the default) records nothing and allocates
    /// nothing per launch.
    profiler: Option<SharedProfiler>,
    /// Fault response configuration.
    recovery: RecoveryPolicy,
    /// When set, every op takes the CUDA-core fallback path directly (the
    /// trainer's rollback-replay mode); injection stays suppressed.
    forced_fallback: bool,
    /// Transient-fault retries performed.
    retried: u64,
    /// Ops degraded to the fallback kernel.
    degraded: u64,
}

/// Step-by-step construction of an [`Engine`] — the one entry point that
/// every constructor routes through, so graph validation always surfaces
/// as a [`Result`] (no public constructor panics).
///
/// ```ignore
/// let engine = Engine::builder(csr)
///     .backend(Backend::TcGnn)
///     .device(DeviceSpec::rtx3090())
///     .threads(4)
///     .build()?;
/// ```
#[must_use = "call .build() to construct the engine"]
pub struct EngineBuilder {
    backend: Backend,
    csr: CsrGraph,
    device: DeviceSpec,
    translation: Option<tcg_sgt::TranslatedGraph>,
    threads: Option<usize>,
}

impl EngineBuilder {
    /// Selects the backend (default: [`Backend::TcGnn`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the simulated device (default: [`DeviceSpec::rtx3090`]).
    pub fn device(mut self, device: DeviceSpec) -> Self {
        self.device = device;
        self
    }

    /// Seeds the builder with an already-computed SGT translation — the
    /// cache-hit path of a serving layer.
    ///
    /// The translation is still validated against the CSR (a stale cache
    /// entry for a different graph surfaces as [`TcgError::CorruptMeta`]
    /// from [`EngineBuilder::build`]), but Algorithm 1 itself is skipped,
    /// so [`Engine::preprocessing_ms`] reports zero: the one-time
    /// translation cost was paid by whoever populated the cache. Only
    /// meaningful for [`Backend::TcGnn`]; other backends ignore it.
    pub fn translation(mut self, translation: tcg_sgt::TranslatedGraph) -> Self {
        self.translation = Some(translation);
        self
    }

    /// Worker-thread count for host-side parallel execution: block bodies
    /// fan out over this many threads (`1` = fully sequential, `0` = all
    /// available cores), and a cache-miss SGT translation runs
    /// multi-threaded. Results are bitwise identical at any thread count.
    /// Default: the `TCG_THREADS` environment variable (unset → 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Validates the graph (and any seeded translation) and constructs the
    /// engine. A non-symmetric graph is [`TcgError::InvalidInput`]; for the
    /// TC-GNN backend the SGT translation is validated against the CSR
    /// before any kernel can consume it (corruption surfaces as
    /// [`TcgError::CorruptMeta`] here rather than as garbage aggregation
    /// output later).
    pub fn build(self) -> Result<Engine, TcgError> {
        let EngineBuilder {
            backend,
            csr,
            device,
            translation: cached,
            threads,
        } = self;
        if !csr.is_symmetric() {
            return Err(TcgError::InvalidInput {
                what: "engine graph",
                detail: "adjacency must be symmetric (undirected)".into(),
            });
        }
        let threads = tcg_gpusim::resolve_threads(threads).max(1);
        let mut launcher = Launcher::new(device);
        launcher.set_threads(threads);
        let t_perm = csr.transpose_permutation();
        let gcn_norm = csr.gcn_norm_edge_values();
        let mut mean_norm = Vec::with_capacity(csr.num_edges());
        for v in 0..csr.num_nodes() {
            let inv = 1.0 / csr.degree(v).max(1) as f32;
            mean_norm.extend(std::iter::repeat_n(inv, csr.degree(v)));
        }
        let mean_norm_t: Vec<f32> = t_perm.iter().map(|&i| mean_norm[i as usize]).collect();
        let inv_sqrt_deg: Vec<f32> = (0..csr.num_nodes())
            .map(|v| 1.0 / (csr.degree(v).max(1) as f32).sqrt())
            .collect();
        let mut translated = None;
        let mut hybrid_policies = None;
        let (spmm, sddmm, preprocessing_ms): (Box<dyn SpmmKernel>, Box<dyn SddmmKernel>, f64) =
            match backend {
                Backend::DglLike => (Box::new(CusparseCsrSpmm), Box::new(CudaCoreSddmm), 0.0),
                Backend::PygLike => (Box::new(ScatterGatherSpmm), Box::new(CudaCoreSddmm), 0.0),
                Backend::TcGnn => {
                    let (t, sgt_ms) = match cached {
                        Some(t) => (t, 0.0),
                        None => (
                            tcg_sgt::Sgt::builder().threads(threads).translate(&csr)?,
                            tcg_sgt::overhead::model_ms(&csr),
                        ),
                    };
                    t.validate(&csr)?;
                    translated = Some(t.clone());
                    (
                        Box::new(TcgnnSpmm::from_translated(t.clone())),
                        Box::new(TcgnnSddmm::from_translated(t)),
                        sgt_ms,
                    )
                }
                Backend::Hybrid => {
                    let (t, sgt_ms) = match cached {
                        Some(t) => (t, 0.0),
                        None => (
                            tcg_sgt::Sgt::builder().threads(threads).translate(&csr)?,
                            tcg_sgt::overhead::model_ms(&csr),
                        ),
                    };
                    t.validate(&csr)?;
                    translated = Some(t.clone());
                    let spmm_policy = DispatchPolicy::from_env(KernelClass::Spmm);
                    let sddmm_policy = DispatchPolicy::from_env(KernelClass::Sddmm);
                    hybrid_policies = Some((spmm_policy, sddmm_policy));
                    (
                        Box::new(HybridSpmm::from_translated(t.clone()).with_policy(spmm_policy)),
                        Box::new(HybridSddmm::from_translated(t).with_policy(sddmm_policy)),
                        sgt_ms,
                    )
                }
            };
        Ok(Engine {
            backend,
            launcher,
            csr,
            t_perm,
            gcn_norm,
            mean_norm,
            mean_norm_t,
            inv_sqrt_deg,
            spmm,
            sddmm,
            translated,
            hybrid_policies,
            preprocessing_ms,
            last_spmm_report: None,
            last_sddmm_report: None,
            last_fused_report: None,
            profiler: None,
            recovery: RecoveryPolicy::default(),
            forced_fallback: false,
            retried: 0,
            degraded: 0,
        })
    }
}

impl Engine {
    /// Starts building an engine bound to `csr`. Defaults: TC-GNN backend,
    /// RTX 3090 device, no cached translation, thread count from
    /// `TCG_THREADS` (unset → 1).
    pub fn builder(csr: CsrGraph) -> EngineBuilder {
        EngineBuilder {
            backend: Backend::TcGnn,
            csr,
            device: DeviceSpec::rtx3090(),
            translation: None,
            threads: None,
        }
    }

    /// Worker threads the launcher fans block bodies over (1 = sequential).
    pub fn threads(&self) -> usize {
        self.launcher.threads()
    }

    /// Attaches a profiler; every subsequent simulated launch records one
    /// event whose duration is exactly the milliseconds charged to the
    /// caller's [`Cost`]. The one-time preprocessing already paid at
    /// construction is recorded immediately as a host span.
    pub fn attach_profiler(&mut self, profiler: SharedProfiler) {
        if self.preprocessing_ms > 0.0 {
            profiler
                .write()
                .expect("profiler lock")
                .record_host("sgt_preprocess", self.preprocessing_ms);
        }
        self.profiler = Some(profiler);
    }

    /// The attached profiler, if any.
    pub fn profiler(&self) -> Option<&SharedProfiler> {
        self.profiler.as_ref()
    }

    /// Records a kernel event carrying `report`'s counters; no-op (and no
    /// allocation) when no profiler is attached.
    fn prof_kernel(&self, name: &str, phase: Phase, ms: f64, report: &tcg_gpusim::KernelReport) {
        if let Some(p) = &self.profiler {
            p.write()
                .expect("profiler lock")
                .record_kernel(name, phase, ms, report);
        }
    }

    /// Records a counter-less span; no-op when no profiler is attached.
    fn prof_span(&self, name: &str, phase: Phase, ms: f64) {
        if let Some(p) = &self.profiler {
            p.write()
                .expect("profiler lock")
                .record_span(name, phase, ms);
        }
    }

    /// Records a zero-duration fault marker; no-op without a profiler.
    fn prof_fault(&self, name: &str, phase: Phase) {
        if let Some(p) = &self.profiler {
            p.write().expect("profiler lock").record_fault(name, phase);
        }
    }

    /// Records a zero-duration fallback marker; no-op without a profiler.
    fn prof_fallback(&self, name: &str, phase: Phase) {
        if let Some(p) = &self.profiler {
            p.write()
                .expect("profiler lock")
                .record_fallback(name, phase);
        }
    }

    /// Records one hybrid mixed launch's per-window dispatch decisions: a
    /// zero-duration trace marker carrying the run-length mask, plus the
    /// `tcg_hybrid_*` counter family. No-op without a profiler.
    fn prof_hybrid_dispatch(&self, op: &str, mask: &[WindowBackend]) {
        if let Some(p) = &self.profiler {
            let tcu = mask.iter().filter(|b| **b == WindowBackend::Tcu).count() as u64;
            let cuda = mask.len() as u64 - tcu;
            let mut p = p.write().expect("profiler lock");
            p.incr_counter("tcg_hybrid_launches_total", 1);
            p.incr_counter("tcg_hybrid_windows_tcu_total", tcu);
            p.incr_counter("tcg_hybrid_windows_cuda_total", cuda);
            p.record_span(
                &format!("hybrid_dispatch:{op}[{}]", render_mask(mask)),
                Phase::Aggregation,
                0.0,
            );
        }
    }

    /// Recomputes and records the hybrid dispatch mask for one op. The mask
    /// is a pure function of window geometry, so this reproduces exactly
    /// what the kernel decided. No-op on non-hybrid backends or without a
    /// profiler.
    fn prof_hybrid_mask(&self, op: &str, class: KernelClass, dim: usize) {
        if self.profiler.is_none() {
            return;
        }
        let (Some(t), Some((spmm_policy, sddmm_policy))) = (&self.translated, self.hybrid_policies)
        else {
            return;
        };
        let policy = match class {
            KernelClass::Spmm => spmm_policy,
            KernelClass::Sddmm => sddmm_policy,
        };
        let mask = policy.mask(t, &self.csr, dim);
        self.prof_hybrid_dispatch(op, &mask);
    }

    /// Attaches a fault-injection plan to the simulated device. Ops keep
    /// their signatures; injected faults surface through the recovery
    /// machinery (retry, then CUDA-core fallback) instead of as errors.
    pub fn attach_fault_plan(&mut self, plan: FaultPlan) {
        self.launcher.attach_fault_plan(Some(plan));
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.launcher.fault_plan()
    }

    /// Replaces the recovery policy (defaults are sensible; tests tighten).
    pub fn set_recovery_policy(&mut self, policy: RecoveryPolicy) {
        self.recovery = policy;
    }

    /// The active recovery policy.
    pub fn recovery_policy(&self) -> RecoveryPolicy {
        self.recovery
    }

    /// Enables (or disables) the simulated device's per-launch virtual-time
    /// log. While enabled, every completed kernel launch appends its modeled
    /// milliseconds — the checkpoint granularity at which the serving
    /// layer's deadline cancellation can charge a partially-executed batch.
    pub fn set_launch_log(&mut self, on: bool) {
        self.launcher.set_launch_log(on);
    }

    /// Drains the accumulated per-launch milliseconds (empty when the log
    /// is disabled), in launch-completion order.
    pub fn take_launch_log(&mut self) -> Vec<f64> {
        self.launcher.take_launch_log()
    }

    /// Forces (or releases) the CUDA-core fallback path for every op. While
    /// forced, fault injection is suppressed *without consuming RNG draws*,
    /// so a rollback replay leaves the fault schedule of subsequent epochs
    /// untouched — the property the deterministic chaos tests rely on.
    pub fn set_forced_fallback(&mut self, on: bool) {
        self.forced_fallback = on;
        self.launcher.set_fault_suppressed(on);
    }

    /// Whether ops are currently pinned to the fallback path.
    pub fn forced_fallback(&self) -> bool {
        self.forced_fallback
    }

    /// Fault accounting for this engine: the plan's per-site injection
    /// counts plus the engine's retry/degradation totals. All zeros when no
    /// plan is attached and nothing was retried.
    pub fn fault_report(&self) -> FaultReport {
        let mut r = self
            .launcher
            .fault_plan()
            .map(FaultReport::from_plan)
            .unwrap_or_default();
        r.retried = self.retried;
        r.degraded = self.degraded;
        r
    }

    /// Classifies `err` inside an op's recovery loop: records the fault
    /// marker and, for a transient fault with retry budget left, charges
    /// backoff and signals another attempt. `Ok(true)` → retry, `Ok(false)`
    /// → degrade to fallback, `Err` → not a device fault, propagate.
    fn absorb_fault(
        &mut self,
        err: TcgError,
        phase: Phase,
        attempt: &mut u32,
        extra_ms: &mut f64,
    ) -> Result<bool, TcgError> {
        if !err.is_device_fault() {
            return Err(err);
        }
        let label = err.site().map_or("device_fault", |s| s.label());
        self.prof_fault(label, phase);
        if err.is_transient() && *attempt < self.recovery.max_retries {
            *attempt += 1;
            self.retried += 1;
            // `retried` is the engine-global retry sequence number, so with
            // jitter enabled each retry event draws a distinct (but pure)
            // delay; with the default jitter-free policy this reproduces the
            // historical linear schedule bit-for-bit.
            let backoff = self.recovery.backoff.delay_ms(self.retried, *attempt);
            self.prof_span("retry_backoff", phase, backoff);
            *extra_ms += backoff;
            return Ok(true);
        }
        Ok(false)
    }

    /// The backend this engine models.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The bound graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.csr
    }

    /// One-time preprocessing cost in modeled milliseconds (SGT for the
    /// TC-GNN backend, zero otherwise) — Figure 7(b)'s numerator.
    pub fn preprocessing_ms(&self) -> f64 {
        self.preprocessing_ms
    }

    fn device(&self) -> DeviceSpec {
        self.launcher.device().clone()
    }

    /// Cost of a streaming elementwise pass.
    fn pass_ms(&self, read_bytes: u64, write_bytes: u64) -> f64 {
        stream_pass_report(self.launcher.device(), read_bytes, write_bytes).time_ms
    }

    /// Host dispatch cost of `n` sparse graph operations on this backend.
    fn sparse_dispatch_ms(&self, n: u32) -> f64 {
        let per_op = match self.backend {
            Backend::TcGnn | Backend::Hybrid => EXTENSION_DISPATCH_MS,
            _ => FRAMEWORK_DISPATCH_MS,
        };
        per_op * f64::from(n)
    }

    /// Hybrid ECC recovery: identifies the poisoned row windows by
    /// scanning the discarded output for non-finite values, flips exactly
    /// those windows to the CUDA-core body, and re-executes the mixed
    /// launch with injection suppressed — every healthy window keeps its
    /// original dispatch. Returns `None` when no poisoned TCU window can
    /// be identified, in which case the caller takes the whole-op degrade.
    fn hybrid_spmm_window_degrade(
        &mut self,
        x: &DenseMatrix,
        values: Option<&[f32]>,
        poisoned: &DenseMatrix,
    ) -> Result<Option<(DenseMatrix, f64)>, TcgError> {
        let (Some(t), Some((spmm_policy, _))) = (self.translated.clone(), self.hybrid_policies)
        else {
            return Ok(None);
        };
        let mut mask = spmm_policy.mask(&t, &self.csr, x.cols());
        let mut flipped = 0u64;
        for (w, choice) in mask.iter_mut().enumerate() {
            let row_lo = w * tcg_sgt::TC_BLK_H;
            let row_hi = ((w + 1) * tcg_sgt::TC_BLK_H).min(poisoned.rows());
            let dirty = (row_lo..row_hi).any(|r| poisoned.row(r).iter().any(|v| !v.is_finite()));
            if dirty && *choice == WindowBackend::Tcu {
                *choice = WindowBackend::CudaCore;
                flipped += 1;
            }
        }
        if flipped == 0 {
            return Ok(None);
        }
        self.degraded += 1;
        self.prof_fallback("spmm_window_degrade", Phase::Aggregation);
        if let Some(p) = &self.profiler {
            p.write()
                .expect("profiler lock")
                .incr_counter("tcg_hybrid_window_degrades_total", flipped);
        }
        self.prof_hybrid_dispatch("spmm_degraded", &mask);
        let kernel = HybridSpmm::from_translated(t).with_mask(mask);
        let was_suppressed = self.launcher.fault_suppressed();
        self.launcher.set_fault_suppressed(true);
        let prob = SpmmProblem::new(&self.csr, values, x)?;
        let result = kernel.execute(&mut self.launcher, &prob);
        self.launcher.set_fault_suppressed(was_suppressed);
        let (out, report) = result?;
        let ms = report.time_ms + self.sparse_dispatch_ms(1);
        self.prof_kernel("spmm", Phase::Aggregation, ms, &report);
        self.last_spmm_report = Some(report);
        Ok(Some((out, ms)))
    }

    /// Neighbor aggregation `out = (F ⊙ A)·X` on the backend's kernel.
    ///
    /// Device faults injected by an attached [`FaultPlan`] are absorbed
    /// here: transients retry with backoff, everything else degrades to the
    /// cuSPARSE-class CUDA-core kernel (injection suppressed). Only setup
    /// errors — dimension mismatches and the like — reach the caller.
    /// The hybrid backend recovers from a detected ECC flip at *window*
    /// granularity instead: only the poisoned windows are re-dispatched to
    /// the CUDA-core body (see [`Engine::hybrid_spmm_window_degrade`]).
    pub fn spmm(
        &mut self,
        x: &DenseMatrix,
        values: Option<&[f32]>,
    ) -> Result<(DenseMatrix, f64), TcgError> {
        SpmmProblem::new(&self.csr, values, x)?;
        let mut extra_ms = 0.0;
        if !self.forced_fallback {
            let mut attempt = 0u32;
            loop {
                let prob = SpmmProblem::new(&self.csr, values, x)?;
                match self.spmm.execute(&mut self.launcher, &prob) {
                    Ok((out, report)) => {
                        if self.recovery.ecc_scan && report.stats.ecc_faults > 0 {
                            // Poisoned accumulator: discard the output (its
                            // time was still spent) and degrade.
                            self.prof_fault("ecc_bit_flip", Phase::Aggregation);
                            let wasted = report.time_ms + self.sparse_dispatch_ms(1);
                            self.prof_span("spmm_discarded", Phase::Aggregation, wasted);
                            extra_ms += wasted;
                            if self.backend == Backend::Hybrid {
                                if let Some((out, ms)) =
                                    self.hybrid_spmm_window_degrade(x, values, &out)?
                                {
                                    return Ok((out, extra_ms + ms));
                                }
                            }
                            break;
                        }
                        let ms = report.time_ms + self.sparse_dispatch_ms(1);
                        self.prof_hybrid_mask("spmm", KernelClass::Spmm, x.cols());
                        self.prof_kernel("spmm", Phase::Aggregation, ms, &report);
                        self.last_spmm_report = Some(report);
                        return Ok((out, extra_ms + ms));
                    }
                    Err(e) => {
                        if !self.absorb_fault(e, Phase::Aggregation, &mut attempt, &mut extra_ms)? {
                            break;
                        }
                    }
                }
            }
            self.degraded += 1;
            self.prof_fallback("spmm_fallback", Phase::Aggregation);
        }
        let was_suppressed = self.launcher.fault_suppressed();
        self.launcher.set_fault_suppressed(true);
        let prob = SpmmProblem::new(&self.csr, values, x)?;
        let result = CusparseCsrSpmm.execute(&mut self.launcher, &prob);
        self.launcher.set_fault_suppressed(was_suppressed);
        let (out, report) = result?;
        let ms = report.time_ms + self.sparse_dispatch_ms(1);
        self.prof_kernel("spmm", Phase::Aggregation, ms, &report);
        self.last_spmm_report = Some(report);
        Ok((out, extra_ms + ms))
    }

    /// Transposed aggregation `out = (Fᵀ ⊙ Aᵀ)·X` (backward passes).
    ///
    /// Topologically `Aᵀ = A` (symmetric graph); values are realigned via
    /// the transpose permutation, which costs one gather pass over the edge
    /// array in every framework.
    pub fn spmm_t(
        &mut self,
        x: &DenseMatrix,
        values: Option<&[f32]>,
    ) -> Result<(DenseMatrix, f64), TcgError> {
        match values {
            None => self.spmm(x, None),
            Some(v) => {
                if v.len() != self.csr.num_edges() {
                    return Err(TcgError::DimMismatch {
                        what: "edge value count vs edges",
                        expected: self.csr.num_edges(),
                        actual: v.len(),
                    });
                }
                let vt: Vec<f32> = self.t_perm.iter().map(|&i| v[i as usize]).collect();
                let perm_ms = self.pass_ms(
                    (self.csr.num_edges() * 8) as u64,
                    (self.csr.num_edges() * 4) as u64,
                ) + self.sparse_dispatch_ms(1);
                self.prof_span("edge_permute", Phase::Aggregation, perm_ms);
                let (out, ms) = self.spmm(x, Some(&vt))?;
                Ok((out, ms + perm_ms))
            }
        }
    }

    /// Edge-feature computation `f[e] = xa[src]·xb[dst]` on the backend's
    /// SDDMM. The PyG path additionally materializes the gathered
    /// `E×D` endpoint features, which its scatter formulation requires.
    pub fn sddmm(
        &mut self,
        xa: &DenseMatrix,
        xb: &DenseMatrix,
    ) -> Result<(Vec<f32>, f64), TcgError> {
        let mut extra_ms = 0.0;
        let (vals, report) = 'run: {
            if !self.forced_fallback {
                let mut attempt = 0u32;
                loop {
                    match self.sddmm.execute(&mut self.launcher, &self.csr, xa, xb) {
                        Ok((vals, report)) => {
                            if self.recovery.ecc_scan && report.stats.ecc_faults > 0 {
                                self.prof_fault("ecc_bit_flip", Phase::Aggregation);
                                let wasted = report.time_ms + self.sparse_dispatch_ms(1);
                                self.prof_span("sddmm_discarded", Phase::Aggregation, wasted);
                                extra_ms += wasted;
                                break;
                            }
                            self.prof_hybrid_mask("sddmm", KernelClass::Sddmm, xa.cols());
                            break 'run (vals, report);
                        }
                        Err(e) => {
                            if !self.absorb_fault(
                                e,
                                Phase::Aggregation,
                                &mut attempt,
                                &mut extra_ms,
                            )? {
                                break;
                            }
                        }
                    }
                }
                self.degraded += 1;
                self.prof_fallback("sddmm_fallback", Phase::Aggregation);
            }
            let was_suppressed = self.launcher.fault_suppressed();
            self.launcher.set_fault_suppressed(true);
            let result = CudaCoreSddmm.execute(&mut self.launcher, &self.csr, xa, xb);
            self.launcher.set_fault_suppressed(was_suppressed);
            result?
        };
        let kernel_ms = report.time_ms + self.sparse_dispatch_ms(1);
        let mut ms = extra_ms + kernel_ms;
        self.prof_kernel("sddmm", Phase::Aggregation, kernel_ms, &report);
        self.last_sddmm_report = Some(report);
        if self.backend == Backend::PygLike {
            let ed_bytes = (self.csr.num_edges() * xa.cols() * 4) as u64;
            // Gather x_i, gather x_j (write E×D each), then mul+reduce pass.
            let extra_ms = self.pass_ms(ed_bytes, ed_bytes) * 2.0
                + self.pass_ms(2 * ed_bytes, ed_bytes / 4)
                + self.sparse_dispatch_ms(3);
            self.prof_span("sddmm_materialize", Phase::Aggregation, extra_ms);
            ms += extra_ms;
        }
        Ok((vals, ms))
    }

    /// Row-wise softmax over edge values.
    ///
    /// DGL's `edge_softmax` launches three kernels (segment max, exp + segment
    /// sum, divide); PyG's scatter softmax behaves the same; TC-GNN fuses the
    /// passes into the single kernel implemented in `tcg-kernels`.
    pub fn edge_softmax(&mut self, values: &[f32]) -> Result<(Vec<f32>, f64), TcgError> {
        let mut extra_ms = 0.0;
        let (out, report) = 'run: {
            if !self.forced_fallback {
                let mut attempt = 0u32;
                loop {
                    // The softmax kernel runs no MMA, so an armed ECC flip
                    // cannot poison it; transients are the only concern.
                    match sparse_row_softmax(&mut self.launcher, &self.csr, values) {
                        Ok(ok) => break 'run ok,
                        Err(e) => {
                            if !self.absorb_fault(
                                e,
                                Phase::Aggregation,
                                &mut attempt,
                                &mut extra_ms,
                            )? {
                                break;
                            }
                        }
                    }
                }
                self.degraded += 1;
                self.prof_fallback("edge_softmax_fallback", Phase::Aggregation);
            }
            let was_suppressed = self.launcher.fault_suppressed();
            self.launcher.set_fault_suppressed(true);
            let result = sparse_row_softmax(&mut self.launcher, &self.csr, values);
            self.launcher.set_fault_suppressed(was_suppressed);
            result?
        };
        let kernel_ms = report.time_ms + self.sparse_dispatch_ms(1);
        let mut ms = extra_ms + kernel_ms;
        self.prof_kernel("edge_softmax", Phase::Aggregation, kernel_ms, &report);
        if !self.backend.uses_translation() {
            // Two extra kernel round-trips over the edge array, each its own
            // framework op (DGL's segment max / exp-sum / divide pipeline).
            let e_bytes = (self.csr.num_edges() * 4) as u64;
            let extra_ms = 2.0 * self.pass_ms(e_bytes, e_bytes) + self.sparse_dispatch_ms(2);
            self.prof_span("edge_softmax_passes", Phase::Aggregation, extra_ms);
            ms += extra_ms;
        }
        Ok((out, ms))
    }

    /// Backward of row-wise softmax: `de = p ⊙ (dp − rowsum(dp ⊙ p))`.
    /// Same cost structure in every framework (two passes over edges).
    pub fn edge_softmax_backward(&mut self, p: &[f32], dp: &[f32]) -> (Vec<f32>, f64) {
        assert_eq!(p.len(), dp.len());
        let mut de = vec![0.0f32; p.len()];
        for v in 0..self.csr.num_nodes() {
            let lo = self.csr.node_pointer()[v];
            let hi = self.csr.node_pointer()[v + 1];
            let dot: f32 = (lo..hi).map(|e| p[e] * dp[e]).sum();
            for e in lo..hi {
                de[e] = p[e] * (dp[e] - dot);
            }
        }
        let e_bytes = (self.csr.num_edges() * 4) as u64;
        let ms = self.pass_ms(2 * e_bytes, e_bytes) * 2.0 + self.sparse_dispatch_ms(2);
        self.prof_span("edge_softmax_backward", Phase::Aggregation, ms);
        (de, ms)
    }

    /// Whether this backend can run the fused attention pipeline.
    pub fn supports_fused_attention(&self) -> bool {
        self.translated.is_some()
    }

    /// The SGT translation backing the TC-GNN kernels, if this backend has
    /// one. A serving layer reads this after a cache miss to populate its
    /// translation cache.
    pub fn translation(&self) -> Option<&tcg_sgt::TranslatedGraph> {
        self.translated.as_ref()
    }

    /// Fused attention pipeline (TC-GNN backend only): SDDMM logits from
    /// `xa`, `β` scaling, row softmax, and the weighted SpMM over `xv` — a
    /// single kernel launch (see `tcg_kernels::fused`). Returns
    /// `(Y, cos, P, ms)`.
    ///
    /// # Panics
    ///
    /// Panics if the backend has no translation
    /// ([`Engine::supports_fused_attention`] is false).
    pub fn fused_attention(
        &mut self,
        xa: &DenseMatrix,
        xv: &DenseMatrix,
        beta: f32,
    ) -> Result<(DenseMatrix, Vec<f32>, Vec<f32>, f64), TcgError> {
        let t = self
            .translated
            .clone()
            .expect("fused attention requires the TC-GNN backend");
        let mut extra_ms = 0.0;
        if !self.forced_fallback {
            let mut attempt = 0u32;
            loop {
                match tcg_kernels::fused::fused_attention(
                    &mut self.launcher,
                    &self.csr,
                    &t,
                    xa,
                    xv,
                    beta,
                ) {
                    Ok(out) => {
                        if self.recovery.ecc_scan && out.report.stats.ecc_faults > 0 {
                            self.prof_fault("ecc_bit_flip", Phase::Aggregation);
                            let wasted = out.report.time_ms + self.sparse_dispatch_ms(1);
                            self.prof_span("fused_attention_discarded", Phase::Aggregation, wasted);
                            extra_ms += wasted;
                            break;
                        }
                        let ms = out.report.time_ms + self.sparse_dispatch_ms(1);
                        self.prof_kernel("fused_attention", Phase::Aggregation, ms, &out.report);
                        self.last_fused_report = Some(out.report);
                        return Ok((out.y, out.cos, out.p, extra_ms + ms));
                    }
                    Err(e) => {
                        if !self.absorb_fault(e, Phase::Aggregation, &mut attempt, &mut extra_ms)? {
                            break;
                        }
                    }
                }
            }
            self.degraded += 1;
            self.prof_fallback("fused_attention_fallback", Phase::Aggregation);
        }
        // Unfused CUDA-core pipeline: SDDMM logits, β scaling, row softmax,
        // weighted cuSPARSE SpMM — the pre-TCU formulation of the same math.
        let was_suppressed = self.launcher.fault_suppressed();
        self.launcher.set_fault_suppressed(true);
        let result = (|| -> Result<(DenseMatrix, Vec<f32>, Vec<f32>, f64), TcgError> {
            let (cos, r1) = CudaCoreSddmm.execute(&mut self.launcher, &self.csr, xa, xa)?;
            let ms1 = r1.time_ms + self.sparse_dispatch_ms(1);
            self.prof_kernel("sddmm", Phase::Aggregation, ms1, &r1);
            let scaled: Vec<f32> = cos.iter().map(|&c| beta * c).collect();
            let e_bytes = (self.csr.num_edges() * 4) as u64;
            let scale_ms = self.pass_ms(e_bytes, e_bytes) + self.sparse_dispatch_ms(1);
            self.prof_span("beta_scale", Phase::Aggregation, scale_ms);
            let (p, r2) = sparse_row_softmax(&mut self.launcher, &self.csr, &scaled)?;
            let ms2 = r2.time_ms + self.sparse_dispatch_ms(1);
            self.prof_kernel("edge_softmax", Phase::Aggregation, ms2, &r2);
            let prob = SpmmProblem::new(&self.csr, Some(&p), xv)?;
            let (y, r3) = CusparseCsrSpmm.execute(&mut self.launcher, &prob)?;
            let ms3 = r3.time_ms + self.sparse_dispatch_ms(1);
            self.prof_kernel("spmm", Phase::Aggregation, ms3, &r3);
            Ok((y, cos, p, ms1 + scale_ms + ms2 + ms3))
        })();
        self.launcher.set_fault_suppressed(was_suppressed);
        let (y, cos, p, ms) = result?;
        Ok((y, cos, p, extra_ms + ms))
    }

    /// GCN-normalized aggregation `D^{-1/2} A D^{-1/2} · X`.
    ///
    /// DGL/PyG scale node features before and after the unweighted SpMM
    /// (two extra kernels per call, as `dgl.GraphConv(norm="both")` does);
    /// TC-GNN folds the normalization into the translated kernel's edge
    /// values.
    pub fn gcn_aggregate(&mut self, x: &DenseMatrix) -> Result<(DenseMatrix, f64), TcgError> {
        match self.backend {
            Backend::TcGnn | Backend::Hybrid => {
                let norm = self.gcn_norm.clone();
                self.spmm(x, Some(&norm))
            }
            _ => {
                let nd_bytes = (x.len() * 4) as u64;
                let mut scaled = x.clone();
                for v in 0..scaled.rows() {
                    let s = self.inv_sqrt_deg[v];
                    for val in scaled.row_mut(v) {
                        *val *= s;
                    }
                }
                // The `dispatch(2)` covering both scaling ops is split one
                // per event; `per_op * 2.0 == per_op + per_op` exactly.
                let pre_ms = self.pass_ms(nd_bytes, nd_bytes);
                self.prof_span(
                    "gcn_norm_pre",
                    Phase::Aggregation,
                    pre_ms + self.sparse_dispatch_ms(1),
                );
                let (mut out, spmm_ms) = self.spmm(&scaled, None)?;
                for v in 0..out.rows() {
                    let s = self.inv_sqrt_deg[v];
                    for val in out.row_mut(v) {
                        *val *= s;
                    }
                }
                let post_ms = self.pass_ms(nd_bytes, nd_bytes);
                self.prof_span(
                    "gcn_norm_post",
                    Phase::Aggregation,
                    post_ms + self.sparse_dispatch_ms(1),
                );
                Ok((out, pre_ms + spmm_ms + post_ms + self.sparse_dispatch_ms(2)))
            }
        }
    }

    /// Mean-normalized aggregation `D^{-1} A · X` (GraphSAGE's mean
    /// aggregator). DGL/PyG run the unweighted SpMM plus a per-node scaling
    /// kernel; TC-GNN folds `1/d` into the translated kernel's edge values.
    pub fn mean_aggregate(&mut self, x: &DenseMatrix) -> Result<(DenseMatrix, f64), TcgError> {
        match self.backend {
            Backend::TcGnn | Backend::Hybrid => {
                let norm = self.mean_norm.clone();
                self.spmm(x, Some(&norm))
            }
            _ => {
                let (mut out, spmm_ms) = self.spmm(x, None)?;
                for v in 0..out.rows() {
                    let inv = 1.0 / self.csr.degree(v).max(1) as f32;
                    for val in out.row_mut(v) {
                        *val *= inv;
                    }
                }
                let nd_bytes = (x.len() * 4) as u64;
                let post_ms = self.pass_ms(nd_bytes, nd_bytes) + self.sparse_dispatch_ms(1);
                self.prof_span("mean_norm_scale", Phase::Aggregation, post_ms);
                Ok((out, spmm_ms + post_ms))
            }
        }
    }

    /// Transposed mean aggregation `(D^{-1} A)ᵀ · X` (GraphSAGE backward).
    pub fn mean_aggregate_t(&mut self, x: &DenseMatrix) -> Result<(DenseMatrix, f64), TcgError> {
        // `Aᵀ = A` topologically; the transposed normalization values are
        // precomputed, so no runtime permutation pass is needed.
        let norm_t = self.mean_norm_t.clone();
        self.spmm(x, Some(&norm_t))
    }

    /// Unweighted sum aggregation `A · X` (GIN's aggregator).
    pub fn sum_aggregate(&mut self, x: &DenseMatrix) -> Result<(DenseMatrix, f64), TcgError> {
        self.spmm(x, None)
    }

    /// Dense update GEMM `X·W` (cuBLAS TF-32 class in every framework).
    pub fn linear(&mut self, x: &DenseMatrix, w: &DenseMatrix) -> (DenseMatrix, f64) {
        let out = tcg_tensor::gemm::gemm(x, w).expect("linear shapes validated by layers");
        let report =
            tcg_gpusim::cost::dense_gemm_report(&self.device(), x.rows(), x.cols(), w.cols(), true);
        let ms = report.time_ms + DENSE_DISPATCH_MS;
        self.prof_kernel("gemm_xw", Phase::Update, ms, &report);
        (out, ms)
    }

    /// Dense GEMM `Xᵀ·Y` (weight gradients).
    pub fn linear_at_b(&mut self, x: &DenseMatrix, y: &DenseMatrix) -> (DenseMatrix, f64) {
        let out = tcg_tensor::gemm::gemm_at_b(x, y).expect("shapes validated by layers");
        let report =
            tcg_gpusim::cost::dense_gemm_report(&self.device(), x.cols(), x.rows(), y.cols(), true);
        let ms = report.time_ms + DENSE_DISPATCH_MS;
        self.prof_kernel("gemm_xt_y", Phase::Update, ms, &report);
        (out, ms)
    }

    /// Dense GEMM `X·Wᵀ` (input gradients).
    pub fn linear_a_bt(&mut self, x: &DenseMatrix, w: &DenseMatrix) -> (DenseMatrix, f64) {
        let out = tcg_tensor::gemm::gemm_a_bt(x, w).expect("shapes validated by layers");
        let report =
            tcg_gpusim::cost::dense_gemm_report(&self.device(), x.rows(), x.cols(), w.rows(), true);
        let ms = report.time_ms + DENSE_DISPATCH_MS;
        self.prof_kernel("gemm_x_wt", Phase::Update, ms, &report);
        (out, ms)
    }

    /// Cost of a generic elementwise kernel over `elems` f32 values with
    /// `reads` input and `writes` output streams (activation, scaling,
    /// optimizer step...). Functional work is done by the caller. Recorded
    /// in the trace as an `other`-phase `"elementwise"` span; callers whose
    /// cost belongs elsewhere use [`Engine::elementwise_tagged_ms`].
    pub fn elementwise_ms(&mut self, elems: usize, reads: u32, writes: u32) -> f64 {
        self.elementwise_tagged_ms("elementwise", Phase::Other, elems, reads, writes)
    }

    /// [`Engine::elementwise_ms`] with an explicit trace name and phase,
    /// for elementwise work that is part of aggregation (e.g. AGNN's `β`
    /// scaling) or deserves its own timeline label (loss, optimizer).
    ///
    /// The phase must match how the caller charges the returned
    /// milliseconds to [`Cost`], or per-phase event sums drift from the
    /// cost model.
    pub fn elementwise_tagged_ms(
        &mut self,
        name: &str,
        phase: Phase,
        elems: usize,
        reads: u32,
        writes: u32,
    ) -> f64 {
        let ms = self.pass_ms(
            (elems * 4 * reads as usize) as u64,
            (elems * 4 * writes as usize) as u64,
        ) + DENSE_DISPATCH_MS;
        self.prof_span(name, phase, ms);
        ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcg_graph::gen;
    use tcg_kernels::common::{reference_sddmm, reference_spmm};
    use tcg_tensor::init;

    fn engine(backend: Backend) -> Engine {
        let g = gen::community(400, 3000, 16, 24, 1).unwrap();
        Engine::builder(g).backend(backend).build().unwrap()
    }

    #[test]
    fn all_backends_agree_on_spmm() {
        let x = init::uniform(400, 16, -1.0, 1.0, 2);
        let mut outs = Vec::new();
        for b in Backend::all() {
            let mut e = engine(b);
            let (out, ms) = e.spmm(&x, None).unwrap();
            assert!(ms > 0.0);
            outs.push(out);
        }
        let e = engine(Backend::DglLike);
        let prob = SpmmProblem::new(e.graph(), None, &x).unwrap();
        let reference = reference_spmm(&prob);
        for out in &outs {
            assert!(out.max_abs_diff(&reference).unwrap() < 0.05);
        }
    }

    #[test]
    fn spmm_t_equals_explicit_transpose() {
        let mut e = engine(Backend::TcGnn);
        let x = init::uniform(400, 8, -1.0, 1.0, 3);
        let vals: Vec<f32> = (0..e.graph().num_edges())
            .map(|i| 0.1 + (i % 9) as f32 * 0.2)
            .collect();
        let (out_t, _) = e.spmm_t(&x, Some(&vals)).unwrap();
        // Reference: transpose graph + values explicitly.
        let (gt, vt) = e.graph().transpose_with_values(&vals);
        let prob = SpmmProblem::new(&gt, Some(&vt), &x).unwrap();
        let reference = reference_spmm(&prob);
        assert!(out_t.max_abs_diff(&reference).unwrap() < 0.05);
    }

    #[test]
    fn gcn_aggregate_backends_agree_and_are_normalized() {
        let x = init::uniform(400, 16, -1.0, 1.0, 4);
        let mut base: Option<DenseMatrix> = None;
        for b in Backend::all() {
            let mut e = engine(b);
            let (out, ms) = e.gcn_aggregate(&x).unwrap();
            assert!(ms > 0.0);
            if let Some(prev) = &base {
                assert!(out.max_abs_diff(prev).unwrap() < 0.05, "backend {b:?}");
            } else {
                base = Some(out);
            }
        }
    }

    #[test]
    fn sddmm_matches_reference_all_backends() {
        let xa = init::uniform(400, 12, -1.0, 1.0, 5);
        let xb = init::uniform(400, 12, -1.0, 1.0, 6);
        for b in Backend::all() {
            let mut e = engine(b);
            let (vals, _) = e.sddmm(&xa, &xb).unwrap();
            let reference = reference_sddmm(e.graph(), &xa, &xb);
            for (a, r) in vals.iter().zip(&reference) {
                assert!((a - r).abs() < 0.05, "backend {b:?}");
            }
        }
    }

    #[test]
    fn pyg_sddmm_costs_more_than_dgl() {
        let xa = init::uniform(400, 32, -1.0, 1.0, 7);
        let mut dgl = engine(Backend::DglLike);
        let mut pyg = engine(Backend::PygLike);
        let (_, ms_dgl) = dgl.sddmm(&xa, &xa).unwrap();
        let (_, ms_pyg) = pyg.sddmm(&xa, &xa).unwrap();
        assert!(ms_pyg > ms_dgl, "pyg {ms_pyg} dgl {ms_dgl}");
    }

    #[test]
    fn edge_softmax_rows_normalized_and_tcgnn_cheaper() {
        let vals: Vec<f32> = (0..engine(Backend::DglLike).graph().num_edges())
            .map(|i| (i % 5) as f32)
            .collect();
        let mut dgl = engine(Backend::DglLike);
        let mut tc = engine(Backend::TcGnn);
        let (s1, ms_dgl) = dgl.edge_softmax(&vals).unwrap();
        let (s2, ms_tc) = tc.edge_softmax(&vals).unwrap();
        assert_eq!(s1, s2);
        assert!(ms_tc < ms_dgl);
        let g = dgl.graph();
        for v in 0..g.num_nodes() {
            let (lo, hi) = (g.node_pointer()[v], g.node_pointer()[v + 1]);
            if hi > lo {
                let sum: f32 = s1[lo..hi].iter().sum();
                assert!((sum - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn softmax_backward_rows_sum_to_zero_against_uniform() {
        // For p from softmax, Σ_row de = Σ p(dp − Σp·dp) = Σp·dp − Σp·dp = 0.
        let mut e = engine(Backend::TcGnn);
        let raw: Vec<f32> = (0..e.graph().num_edges())
            .map(|i| (i % 7) as f32 * 0.3)
            .collect();
        let (p, _) = e.edge_softmax(&raw).unwrap();
        let dp: Vec<f32> = (0..p.len()).map(|i| (i % 3) as f32 - 1.0).collect();
        let (de, ms) = e.edge_softmax_backward(&p, &dp);
        assert!(ms > 0.0);
        let g = e.graph();
        for v in 0..g.num_nodes() {
            let (lo, hi) = (g.node_pointer()[v], g.node_pointer()[v + 1]);
            let s: f32 = de[lo..hi].iter().sum();
            assert!(s.abs() < 1e-4, "row {v} sums to {s}");
        }
    }

    #[test]
    fn linear_matches_gemm_and_costs() {
        let mut e = engine(Backend::TcGnn);
        let x = init::uniform(400, 8, -1.0, 1.0, 8);
        let w = init::uniform(8, 4, -1.0, 1.0, 9);
        let (y, ms) = e.linear(&x, &w);
        assert!(ms > 0.0);
        let reference = tcg_tensor::gemm::gemm(&x, &w).unwrap();
        assert_eq!(y, reference);
        // Gradient GEMMs shapes.
        let (dw, _) = e.linear_at_b(&x, &y);
        assert_eq!(dw.shape(), (8, 4));
        let (dx, _) = e.linear_a_bt(&y, &w);
        assert_eq!(dx.shape(), (400, 8));
    }

    #[test]
    fn tcgnn_has_preprocessing_cost_others_do_not() {
        assert!(engine(Backend::TcGnn).preprocessing_ms() > 0.0);
        assert_eq!(engine(Backend::DglLike).preprocessing_ms(), 0.0);
        assert_eq!(engine(Backend::PygLike).preprocessing_ms(), 0.0);
    }

    #[test]
    fn mean_aggregate_is_row_average() {
        let x = init::uniform(400, 8, -1.0, 1.0, 11);
        let mut base: Option<DenseMatrix> = None;
        for b in Backend::all() {
            let mut e = engine(b);
            let (out, ms) = e.mean_aggregate(&x).unwrap();
            assert!(ms > 0.0);
            // Row v must be the mean of its neighbors' rows.
            let g = e.graph().clone();
            for v in (0..g.num_nodes()).step_by(37) {
                let ns = g.neighbors(v);
                if ns.is_empty() {
                    continue;
                }
                for j in 0..8 {
                    let mean: f32 =
                        ns.iter().map(|&u| x.get(u as usize, j)).sum::<f32>() / ns.len() as f32;
                    assert!((out.get(v, j) - mean).abs() < 1e-2, "{b:?} node {v}");
                }
            }
            if let Some(prev) = &base {
                assert!(out.max_abs_diff(prev).unwrap() < 0.02);
            } else {
                base = Some(out);
            }
        }
    }

    #[test]
    fn mean_aggregate_t_matches_explicit_transpose() {
        let mut e = engine(Backend::TcGnn);
        let x = init::uniform(400, 6, -1.0, 1.0, 12);
        let (got, _) = e.mean_aggregate_t(&x).unwrap();
        // Build (D^{-1} A)ᵀ explicitly.
        let g = e.graph().clone();
        let mut vals = Vec::with_capacity(g.num_edges());
        for v in 0..g.num_nodes() {
            let inv = 1.0 / g.degree(v).max(1) as f32;
            vals.extend(std::iter::repeat_n(inv, g.degree(v)));
        }
        let (gt, vt) = g.transpose_with_values(&vals);
        let prob = SpmmProblem::new(&gt, Some(&vt), &x).unwrap();
        let expect = reference_spmm(&prob);
        assert!(got.max_abs_diff(&expect).unwrap() < 0.02);
    }

    #[test]
    fn rejects_asymmetric_graph() {
        // No panicking constructor remains: every entry point surfaces the
        // asymmetric graph as an error.
        let g = CsrGraph::from_raw(3, vec![0, 1, 1, 1], vec![1]).unwrap();
        let err = match Engine::builder(g).backend(Backend::DglLike).build() {
            Err(e) => e,
            Ok(_) => panic!("asymmetric graph must be rejected"),
        };
        assert!(matches!(err, TcgError::InvalidInput { .. }), "{err:?}");
    }

    #[test]
    fn spmm_degrades_to_fallback_under_persistent_launch_faults() {
        use tcg_fault::{FaultConfig, FaultPlan};
        let x = init::uniform(400, 16, -1.0, 1.0, 21);
        let mut e = engine(Backend::TcGnn);
        let reference = {
            let prob = SpmmProblem::new(e.graph(), None, &x).unwrap();
            reference_spmm(&prob)
        };
        e.attach_fault_plan(FaultPlan::new(
            7,
            FaultConfig {
                launch_rate: 1.0,
                ..FaultConfig::none()
            },
        ));
        let (out, ms) = e.spmm(&x, None).unwrap();
        assert!(ms > 0.0);
        // Every launch attempt fails: the retry budget (2) is exhausted and
        // the op lands on the suppressed cuSPARSE fallback.
        let report = e.fault_report();
        assert_eq!(report.retried, 2);
        assert_eq!(report.degraded, 1);
        assert_eq!(report.launch_failures, 3);
        assert!(out.max_abs_diff(&reference).unwrap() < 0.05);
    }

    #[test]
    fn recovery_is_deterministic_across_runs() {
        use tcg_fault::{FaultConfig, FaultPlan};
        let x = init::uniform(400, 16, -1.0, 1.0, 22);
        let run = || {
            let mut e = engine(Backend::TcGnn);
            e.attach_fault_plan(FaultPlan::new(11, FaultConfig::uniform(0.3)));
            let mut outs = Vec::new();
            for _ in 0..6 {
                let (out, _) = e.spmm(&x, None).unwrap();
                outs.push(out);
            }
            let (vals, _) = e.sddmm(&x, &x).unwrap();
            (
                outs,
                vals,
                e.fault_report(),
                e.fault_plan().unwrap().draws(),
            )
        };
        let (o1, v1, r1, d1) = run();
        let (o2, v2, r2, d2) = run();
        assert_eq!(r1, r2);
        assert_eq!(d1, d2);
        assert_eq!(v1, v2);
        for (a, b) in o1.iter().zip(&o2) {
            assert_eq!(a.max_abs_diff(b).unwrap(), 0.0);
        }
    }

    #[test]
    fn forced_fallback_consumes_no_rng_draws() {
        use tcg_fault::{FaultConfig, FaultPlan};
        let x = init::uniform(400, 8, -1.0, 1.0, 23);
        let mut e = engine(Backend::TcGnn);
        e.attach_fault_plan(FaultPlan::new(3, FaultConfig::uniform(0.5)));
        e.set_forced_fallback(true);
        let (out, _) = e.spmm(&x, None).unwrap();
        assert_eq!(e.fault_plan().unwrap().draws(), 0);
        assert_eq!(e.fault_report().degraded, 0);
        e.set_forced_fallback(false);
        let prob = SpmmProblem::new(e.graph(), None, &x).unwrap();
        assert!(out.max_abs_diff(&reference_spmm(&prob)).unwrap() < 0.05);
    }

    #[test]
    fn ecc_scan_discards_poisoned_output() {
        use tcg_fault::{FaultConfig, FaultPlan};
        let x = init::uniform(400, 16, -1.0, 1.0, 24);
        let mut e = engine(Backend::TcGnn);
        // Every launch arms an ECC flip; the TCU kernel consumes it, the
        // scan catches it, and the op reruns on the CUDA-core fallback —
        // so the caller never sees a NaN.
        e.attach_fault_plan(FaultPlan::new(
            5,
            FaultConfig {
                ecc_rate: 1.0,
                ..FaultConfig::none()
            },
        ));
        let (out, _) = e.spmm(&x, None).unwrap();
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
        let report = e.fault_report();
        assert_eq!(report.degraded, 1);
        assert_eq!(report.ecc_flips, 1);
    }

    #[test]
    fn hybrid_backend_matches_references_and_supports_fused_path() {
        let x = init::uniform(400, 16, -1.0, 1.0, 31);
        let mut e = engine(Backend::Hybrid);
        assert_eq!(e.backend().name(), "Hybrid");
        assert!(e.supports_fused_attention());
        assert!(e.preprocessing_ms() > 0.0);
        let (out, ms) = e.spmm(&x, None).unwrap();
        assert!(ms > 0.0);
        let prob = SpmmProblem::new(e.graph(), None, &x).unwrap();
        assert!(out.max_abs_diff(&reference_spmm(&prob)).unwrap() < 0.05);
        let (vals, _) = e.sddmm(&x, &x).unwrap();
        let reference = reference_sddmm(e.graph(), &x, &x);
        for (a, r) in vals.iter().zip(&reference) {
            assert!((a - r).abs() < 0.05);
        }
    }

    #[test]
    fn hybrid_ecc_flip_degrades_only_the_poisoned_window() {
        use tcg_fault::{FaultConfig, FaultPlan};
        let x = init::uniform(400, 16, -1.0, 1.0, 24);
        let mut e = engine(Backend::Hybrid);
        let profiler = tcg_profile::shared("Hybrid");
        e.attach_profiler(profiler.clone());
        e.attach_fault_plan(FaultPlan::new(
            5,
            FaultConfig {
                ecc_rate: 1.0,
                ..FaultConfig::none()
            },
        ));
        let (out, _) = e.spmm(&x, None).unwrap();
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
        let report = e.fault_report();
        assert_eq!(report.degraded, 1);
        assert_eq!(report.ecc_flips, 1);
        let prob = SpmmProblem::new(e.graph(), None, &x).unwrap();
        assert!(out.max_abs_diff(&reference_spmm(&prob)).unwrap() < 0.05);
        // Exactly one TCU window was re-dispatched to the CUDA-core body;
        // the degrade re-executed as a mixed launch, not a whole-op swap.
        let p = profiler.read().unwrap();
        assert_eq!(p.named_counter("tcg_hybrid_window_degrades_total"), 1);
        assert!(p.events().iter().any(|ev| ev.name == "spmm_window_degrade"));
        assert!(p
            .events()
            .iter()
            .any(|ev| ev.name.starts_with("hybrid_dispatch:spmm_degraded[")));
    }

    #[test]
    fn ecc_without_scan_propagates_nan() {
        use tcg_fault::{FaultConfig, FaultPlan};
        let x = init::uniform(400, 16, -1.0, 1.0, 25);
        let mut e = engine(Backend::TcGnn);
        e.attach_fault_plan(FaultPlan::new(
            5,
            FaultConfig {
                ecc_rate: 1.0,
                ..FaultConfig::none()
            },
        ));
        e.set_recovery_policy(RecoveryPolicy {
            ecc_scan: false,
            ..RecoveryPolicy::default()
        });
        let (out, _) = e.spmm(&x, None).unwrap();
        assert!(
            out.as_slice().iter().any(|v| !v.is_finite()),
            "bit flip should surface as NaN when the scan is off"
        );
    }
}
