//! Attention-based GNN propagation layer (Thekumparampil et al.).
//!
//! `P = softmax_row(β · cos(x_v, x_u))` over edges, then `Y = P·X`. This is
//! the model whose aggregation needs *both* SDDMM (edge attention values,
//! the paper's Equation 3) and value-weighted SpMM — the workload behind
//! the paper's AGNN columns in Figure 6.

use tcg_profile::Phase;
use tcg_tensor::{ops, DenseMatrix};

use crate::engine::{Cost, Engine};
use crate::forward::{Forward, Layer};

/// One AGNN propagation layer; the only parameter is the scalar `β`.
#[derive(Debug, Clone)]
pub struct AgnnLayer {
    /// Attention temperature.
    pub beta: f32,
}

/// Saved forward state for backward.
#[derive(Debug, Clone)]
pub struct AgnnCache {
    x: DenseMatrix,
    x_hat: DenseMatrix,
    norms: Vec<f32>,
    cos: Vec<f32>,
    p: Vec<f32>,
}

/// Parameter gradients.
#[derive(Debug, Clone, Copy)]
pub struct AgnnGrads {
    /// `∂L/∂β`.
    pub dbeta: f32,
}

impl AgnnLayer {
    /// Creates a layer with `β = 1`.
    pub fn new() -> Self {
        AgnnLayer { beta: 1.0 }
    }

    /// Forward pass.
    pub fn forward(&self, eng: &mut Engine, x: &DenseMatrix) -> Forward<AgnnCache> {
        let mut cost = Cost::default();
        // Row-normalize for cosine similarity (one elementwise kernel).
        let mut x_hat = x.clone();
        let norms = ops::l2_normalize_rows(&mut x_hat);
        cost += Cost::other(eng.elementwise_ms(x.len(), 1, 1));

        // Attention pipeline: TC-GNN fuses SDDMM → β-scale → softmax →
        // weighted SpMM into one launch; the framework backends run the
        // stages as separate ops (what DGL/PyG actually do).
        let (y, cos, p) = if eng.supports_fused_attention() {
            let (y, cos, p, ms) = eng
                .fused_attention(&x_hat, x, self.beta)
                .expect("dims agree");
            cost += Cost::agg(ms);
            (y, cos, p)
        } else {
            let (cos, sddmm_ms) = eng.sddmm(&x_hat, &x_hat).expect("dims agree");
            cost += Cost::agg(sddmm_ms);
            let s: Vec<f32> = cos.iter().map(|c| self.beta * c).collect();
            // The β scaling is part of the attention pipeline, so it is
            // charged (and traced) as aggregation, not generic elementwise.
            cost += Cost::agg(eng.elementwise_tagged_ms(
                "attn_beta_scale",
                Phase::Aggregation,
                s.len(),
                1,
                1,
            ));
            let (p, softmax_ms) = eng.edge_softmax(&s).expect("value count matches edges");
            cost += Cost::agg(softmax_ms);
            let (y, spmm_ms) = eng.spmm(x, Some(&p)).expect("dims agree");
            cost += Cost::agg(spmm_ms);
            (y, cos, p)
        };

        Forward::new(
            y,
            AgnnCache {
                x: x.clone(),
                x_hat,
                norms,
                cos,
                p,
            },
            cost,
        )
    }

    /// Inference-only forward: same attention pipeline and kernel costs as
    /// [`AgnnLayer::forward`], discarding the cosine/softmax edge buffers
    /// instead of caching them (and never cloning `x`).
    pub fn infer(&self, eng: &mut Engine, x: &DenseMatrix) -> (DenseMatrix, Cost) {
        let mut cost = Cost::default();
        let mut x_hat = x.clone();
        ops::l2_normalize_rows(&mut x_hat);
        cost += Cost::other(eng.elementwise_ms(x.len(), 1, 1));
        let y = if eng.supports_fused_attention() {
            let (y, _, _, ms) = eng
                .fused_attention(&x_hat, x, self.beta)
                .expect("dims agree");
            cost += Cost::agg(ms);
            y
        } else {
            let (cos, sddmm_ms) = eng.sddmm(&x_hat, &x_hat).expect("dims agree");
            cost += Cost::agg(sddmm_ms);
            let s: Vec<f32> = cos.iter().map(|c| self.beta * c).collect();
            cost += Cost::agg(eng.elementwise_tagged_ms(
                "attn_beta_scale",
                Phase::Aggregation,
                s.len(),
                1,
                1,
            ));
            let (p, softmax_ms) = eng.edge_softmax(&s).expect("value count matches edges");
            cost += Cost::agg(softmax_ms);
            let (y, spmm_ms) = eng.spmm(x, Some(&p)).expect("dims agree");
            cost += Cost::agg(spmm_ms);
            y
        };
        (y, cost)
    }

    /// Backward pass: given `dY` returns `(dX, grads, cost)`.
    pub fn backward(
        &self,
        eng: &mut Engine,
        cache: &AgnnCache,
        dy: &DenseMatrix,
    ) -> (DenseMatrix, AgnnGrads, Cost) {
        let mut cost = Cost::default();

        // Direct path: Y = P X ⇒ dX += Pᵀ dY.
        let (mut dx, ms) = eng.spmm_t(dy, Some(&cache.p)).expect("dims agree");
        cost += Cost::agg(ms);

        // Attention path: dP[e=(v,u)] = dY[v] · X[u] — an SDDMM.
        let (dp, ms) = eng.sddmm(dy, &cache.x).expect("dims agree");
        cost += Cost::agg(ms);

        // Softmax backward.
        let (de, ms) = eng.edge_softmax_backward(&cache.p, &dp);
        cost += Cost::agg(ms);

        // dβ and dcos.
        let dbeta: f32 = de.iter().zip(&cache.cos).map(|(d, c)| d * c).sum();
        let dcos: Vec<f32> = de.iter().map(|d| self.beta * d).collect();
        cost += Cost::agg(eng.elementwise_tagged_ms(
            "attn_dbeta_dcos",
            Phase::Aggregation,
            de.len(),
            2,
            1,
        ));

        // cos[e=(v,u)] = x̂_v · x̂_u ⇒ dx̂_v += Σ_u dcos·x̂_u (SpMM) and
        // dx̂_u += Σ_v dcos·x̂_v (transposed SpMM).
        let (mut dx_hat, ms) = eng.spmm(&cache.x_hat, Some(&dcos)).expect("dims agree");
        cost += Cost::agg(ms);
        let (dx_hat_t, ms) = eng.spmm_t(&cache.x_hat, Some(&dcos)).expect("dims agree");
        cost += Cost::agg(ms);
        dx_hat.add_assign(&dx_hat_t).expect("same shape");

        // Normalization backward: x̂ = x/‖x‖ ⇒
        // dx += (dx̂ − x̂ (x̂·dx̂)) / ‖x‖ row-wise.
        for v in 0..dx.rows() {
            let n = cache.norms[v];
            if n == 0.0 {
                continue;
            }
            let xh = cache.x_hat.row(v);
            let dh = dx_hat.row(v);
            let dot: f32 = xh.iter().zip(dh).map(|(a, b)| a * b).sum();
            let drow = dx.row_mut(v);
            for ((dv, &dhv), &xhv) in drow.iter_mut().zip(dh).zip(xh) {
                *dv += (dhv - xhv * dot) / n;
            }
        }
        cost += Cost::other(eng.elementwise_ms(dx.len(), 3, 1));

        (dx, AgnnGrads { dbeta }, cost)
    }
}

impl Default for AgnnLayer {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for AgnnLayer {
    type Cache = AgnnCache;
    type Grads = AgnnGrads;

    fn forward(&self, eng: &mut Engine, x: &DenseMatrix) -> Forward<AgnnCache> {
        AgnnLayer::forward(self, eng, x)
    }

    fn infer(&self, eng: &mut Engine, x: &DenseMatrix) -> (DenseMatrix, Cost) {
        AgnnLayer::infer(self, eng, x)
    }

    fn backward(
        &self,
        eng: &mut Engine,
        cache: &AgnnCache,
        dy: &DenseMatrix,
        _needs_dx: bool,
    ) -> (Option<DenseMatrix>, AgnnGrads, Cost) {
        // The attention backward produces dX as a byproduct of the dβ
        // pipeline, so `needs_dx = false` saves nothing here.
        let (dx, grads, cost) = AgnnLayer::backward(self, eng, cache, dy);
        (Some(dx), grads, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Backend, Engine};
    use tcg_gpusim::DeviceSpec;
    use tcg_graph::gen;
    use tcg_tensor::init;

    fn engine(backend: Backend) -> Engine {
        let g = gen::erdos_renyi(40, 260, 1).unwrap();
        Engine::builder(g)
            .backend(backend)
            .device(DeviceSpec::rtx3090())
            .build()
            .expect("graph is symmetric")
    }

    #[test]
    fn forward_is_a_convex_combination_when_beta_zero() {
        // β = 0 ⇒ uniform attention ⇒ y_v = mean of neighbors' x.
        let mut eng = engine(Backend::DglLike);
        let layer = AgnnLayer { beta: 0.0 };
        let x = init::uniform(40, 6, -1.0, 1.0, 2);
        let (y, _, _) = layer.forward(&mut eng, &x).into_parts();
        let g = eng.graph().clone();
        for v in 0..g.num_nodes() {
            let ns = g.neighbors(v);
            if ns.is_empty() {
                continue;
            }
            for j in 0..6 {
                let mean: f32 =
                    ns.iter().map(|&u| x.get(u as usize, j)).sum::<f32>() / ns.len() as f32;
                assert!((y.get(v, j) - mean).abs() < 1e-2, "node {v} dim {j}");
            }
        }
    }

    #[test]
    fn backends_agree_on_forward() {
        let layer = AgnnLayer { beta: 1.3 };
        let x = init::uniform(40, 8, -1.0, 1.0, 3);
        let mut outs = Vec::new();
        for b in Backend::all() {
            let mut eng = engine(b);
            let (y, _, cost) = layer.forward(&mut eng, &x).into_parts();
            assert!(cost.aggregation_ms > 0.0);
            outs.push(y);
        }
        for y in &outs[1..] {
            assert!(y.max_abs_diff(&outs[0]).unwrap() < 0.05);
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut eng = engine(Backend::DglLike);
        let layer = AgnnLayer { beta: 0.8 };
        let x = init::uniform(40, 5, -1.0, 1.0, 4);
        let (y, cache, _) = layer.forward(&mut eng, &x).into_parts();
        // Loss = Σ y²/2 ⇒ dy = y.
        let (dx, grads, _) = layer.backward(&mut eng, &cache, &y);

        let loss = |l: &AgnnLayer, xx: &DenseMatrix, e: &mut Engine| -> f64 {
            let (yy, _, _) = l.forward(e, xx).into_parts();
            yy.as_slice()
                .iter()
                .map(|v| (*v as f64).powi(2))
                .sum::<f64>()
                / 2.0
        };
        let eps = 1e-2_f32;

        // dβ.
        let lp = AgnnLayer {
            beta: layer.beta + eps,
        };
        let lm = AgnnLayer {
            beta: layer.beta - eps,
        };
        let fd = (loss(&lp, &x, &mut eng) - loss(&lm, &x, &mut eng)) / (2.0 * eps as f64);
        assert!(
            (fd - grads.dbeta as f64).abs() < 0.05 * (1.0 + fd.abs()),
            "dbeta: fd {fd} vs analytic {}",
            grads.dbeta
        );

        // dx at several positions.
        for &(v, j) in &[(3usize, 0usize), (10, 4), (25, 2)] {
            let mut xp = x.clone();
            xp.set(v, j, xp.get(v, j) + eps);
            let mut xm = x.clone();
            xm.set(v, j, xm.get(v, j) - eps);
            let fd =
                (loss(&layer, &xp, &mut eng) - loss(&layer, &xm, &mut eng)) / (2.0 * eps as f64);
            let an = dx.get(v, j) as f64;
            assert!(
                (fd - an).abs() < 0.08 * (1.0 + an.abs().max(fd.abs())),
                "dx[{v},{j}]: fd {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    fn attention_rows_are_probabilities() {
        let mut eng = engine(Backend::TcGnn);
        let layer = AgnnLayer { beta: 2.0 };
        let x = init::uniform(40, 6, -1.0, 1.0, 5);
        let (_, cache, _) = layer.forward(&mut eng, &x).into_parts();
        let g = eng.graph();
        for v in 0..g.num_nodes() {
            let (lo, hi) = (g.node_pointer()[v], g.node_pointer()[v + 1]);
            if hi > lo {
                let s: f32 = cache.p[lo..hi].iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }
}
