//! Fully-connected layer (the GNN *Update* function `w·a + b`).

use tcg_tensor::{init, ops, DenseMatrix};

use crate::engine::{Cost, Engine};
use crate::forward::{Forward, Layer};

/// A dense layer `y = x·W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix, `in_dim × out_dim`.
    pub w: DenseMatrix,
    /// Bias vector, `out_dim`.
    pub b: Vec<f32>,
}

/// Saved activations for the backward pass.
#[derive(Debug, Clone)]
pub struct LinearCache {
    x: DenseMatrix,
}

/// Parameter gradients of a [`Linear`].
#[derive(Debug, Clone)]
pub struct LinearGrads {
    /// `∂L/∂W`.
    pub dw: DenseMatrix,
    /// `∂L/∂b`.
    pub db: Vec<f32>,
}

impl Linear {
    /// Xavier-initialized layer.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Linear {
            w: init::xavier_uniform(in_dim, out_dim, seed),
            b: vec![0.0; out_dim],
        }
    }

    /// Forward: `y = x·W + b`.
    pub fn forward(&self, eng: &mut Engine, x: &DenseMatrix) -> Forward<LinearCache> {
        let (mut y, gemm_ms) = eng.linear(x, &self.w);
        ops::add_bias_inplace(&mut y, &self.b).expect("bias length matches out_dim");
        let bias_ms = eng.elementwise_ms(y.len(), 1, 1);
        Forward::new(
            y,
            LinearCache { x: x.clone() },
            Cost::update(gemm_ms) + Cost::other(bias_ms),
        )
    }

    /// Inference-only forward: same math and cost as [`Linear::forward`]
    /// with no activation cloned for backward.
    pub fn infer(&self, eng: &mut Engine, x: &DenseMatrix) -> (DenseMatrix, Cost) {
        let (mut y, gemm_ms) = eng.linear(x, &self.w);
        ops::add_bias_inplace(&mut y, &self.b).expect("bias length matches out_dim");
        let bias_ms = eng.elementwise_ms(y.len(), 1, 1);
        (y, Cost::update(gemm_ms) + Cost::other(bias_ms))
    }

    /// Backward: given `dy`, returns `(dx, grads, cost)`. Input layers pass
    /// `needs_dx = false` to skip the `dY·Wᵀ` GEMM entirely.
    pub fn backward(
        &self,
        eng: &mut Engine,
        cache: &LinearCache,
        dy: &DenseMatrix,
        needs_dx: bool,
    ) -> (Option<DenseMatrix>, LinearGrads, Cost) {
        let (dw, ms1) = eng.linear_at_b(&cache.x, dy);
        let db = ops::column_sums(dy);
        let db_ms = eng.elementwise_ms(dy.len(), 1, 0);
        let mut cost = Cost::update(ms1) + Cost::other(db_ms);
        let dx = if needs_dx {
            let (dx, ms2) = eng.linear_a_bt(dy, &self.w);
            cost += Cost::update(ms2);
            Some(dx)
        } else {
            None
        };
        (dx, LinearGrads { dw, db }, cost)
    }

    /// Applies a gradient step (used by the optimizer glue).
    pub fn params_mut(&mut self) -> (&mut DenseMatrix, &mut Vec<f32>) {
        (&mut self.w, &mut self.b)
    }
}

impl Layer for Linear {
    type Cache = LinearCache;
    type Grads = LinearGrads;

    fn forward(&self, eng: &mut Engine, x: &DenseMatrix) -> Forward<LinearCache> {
        Linear::forward(self, eng, x)
    }

    fn infer(&self, eng: &mut Engine, x: &DenseMatrix) -> (DenseMatrix, Cost) {
        Linear::infer(self, eng, x)
    }

    fn backward(
        &self,
        eng: &mut Engine,
        cache: &LinearCache,
        dy: &DenseMatrix,
        needs_dx: bool,
    ) -> (Option<DenseMatrix>, LinearGrads, Cost) {
        Linear::backward(self, eng, cache, dy, needs_dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Backend;
    use tcg_gpusim::DeviceSpec;
    use tcg_graph::gen;

    fn engine() -> Engine {
        let g = gen::erdos_renyi(64, 400, 1).unwrap();
        Engine::builder(g)
            .backend(Backend::DglLike)
            .device(DeviceSpec::rtx3090())
            .build()
            .expect("graph is symmetric")
    }

    #[test]
    fn forward_applies_bias() {
        let mut eng = engine();
        let mut layer = Linear::new(4, 3, 1);
        layer.b = vec![1.0, 2.0, 3.0];
        let x = DenseMatrix::zeros(64, 4);
        let (y, _, cost) = layer.forward(&mut eng, &x).into_parts();
        assert_eq!(y.row(0), &[1.0, 2.0, 3.0]);
        assert!(cost.update_ms > 0.0 && cost.other_ms > 0.0);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut eng = engine();
        let layer = Linear::new(3, 2, 2);
        let x = init::uniform(64, 3, -1.0, 1.0, 3);
        // Loss = sum(y^2)/2 so dy = y.
        let (y, cache, _) = layer.forward(&mut eng, &x).into_parts();
        let (dx, grads, _) = layer.backward(&mut eng, &cache, &y, true);
        let dx = dx.unwrap();

        let loss = |l: &Linear, xx: &DenseMatrix, e: &mut Engine| -> f64 {
            let (yy, _, _) = l.forward(e, xx).into_parts();
            yy.as_slice()
                .iter()
                .map(|v| (*v as f64).powi(2))
                .sum::<f64>()
                / 2.0
        };
        let eps = 1e-3_f32;
        // Check dW at a few entries.
        for &(i, j) in &[(0usize, 0usize), (2, 1), (1, 0)] {
            let mut lp = layer.clone();
            lp.w.set(i, j, lp.w.get(i, j) + eps);
            let mut lm = layer.clone();
            lm.w.set(i, j, lm.w.get(i, j) - eps);
            let fd = (loss(&lp, &x, &mut eng) - loss(&lm, &x, &mut eng)) / (2.0 * eps as f64);
            let an = grads.dw.get(i, j) as f64;
            assert!(
                (fd - an).abs() < 0.05 * (1.0 + an.abs()),
                "dW[{i},{j}]: fd {fd} vs {an}"
            );
        }
        // Check db.
        for j in 0..2 {
            let mut lp = layer.clone();
            lp.b[j] += eps;
            let mut lm = layer.clone();
            lm.b[j] -= eps;
            let fd = (loss(&lp, &x, &mut eng) - loss(&lm, &x, &mut eng)) / (2.0 * eps as f64);
            let an = grads.db[j] as f64;
            assert!(
                (fd - an).abs() < 0.05 * (1.0 + an.abs()),
                "db[{j}]: fd {fd} vs {an}"
            );
        }
        // Check dx at one entry.
        let mut xp = x.clone();
        xp.set(5, 1, xp.get(5, 1) + eps);
        let mut xm = x.clone();
        xm.set(5, 1, xm.get(5, 1) - eps);
        let fd = (loss(&layer, &xp, &mut eng) - loss(&layer, &xm, &mut eng)) / (2.0 * eps as f64);
        let an = dx.get(5, 1) as f64;
        assert!(
            (fd - an).abs() < 0.05 * (1.0 + an.abs()),
            "dx: fd {fd} vs {an}"
        );
    }
}
