//! GraphSAGE layer (Hamilton et al.) with the mean aggregator.
//!
//! `Y = X·W_self + mean(N(v))·W_neigh + b`. The paper names GraphSAGE as a
//! direct beneficiary of accelerating GCN-style aggregation (§6,
//! "improving the performance of GCN will also benefit a broad range of
//! GNNs, such as GraphSAGE"); this layer exercises the engine's
//! mean-normalized aggregation path.

use tcg_tensor::{init, ops, DenseMatrix};

use crate::engine::{Cost, Engine};
use crate::forward::{Forward, Layer};

/// One GraphSAGE (mean) layer.
#[derive(Debug, Clone)]
pub struct SageLayer {
    /// Self-connection weight, `in_dim × out_dim`.
    pub w_self: DenseMatrix,
    /// Neighbor-aggregate weight, `in_dim × out_dim`.
    pub w_neigh: DenseMatrix,
    /// Bias, `out_dim`.
    pub b: Vec<f32>,
}

/// Saved forward state.
#[derive(Debug, Clone)]
pub struct SageCache {
    x: DenseMatrix,
    mean: DenseMatrix,
}

/// Parameter gradients.
#[derive(Debug, Clone)]
pub struct SageGrads {
    /// `∂L/∂W_self`.
    pub dw_self: DenseMatrix,
    /// `∂L/∂W_neigh`.
    pub dw_neigh: DenseMatrix,
    /// `∂L/∂b`.
    pub db: Vec<f32>,
}

impl SageLayer {
    /// Xavier-initialized layer.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        SageLayer {
            w_self: init::xavier_uniform(in_dim, out_dim, seed),
            w_neigh: init::xavier_uniform(in_dim, out_dim, seed ^ 0xa5a5),
            b: vec![0.0; out_dim],
        }
    }

    /// Forward pass.
    pub fn forward(&self, eng: &mut Engine, x: &DenseMatrix) -> Forward<SageCache> {
        let (mean, agg_ms) = eng.mean_aggregate(x).expect("dims agree");
        let (mut y, ms1) = eng.linear(x, &self.w_self);
        let (y2, ms2) = eng.linear(&mean, &self.w_neigh);
        y.add_assign(&y2).expect("same shape");
        ops::add_bias_inplace(&mut y, &self.b).expect("bias length");
        let ew_ms = eng.elementwise_ms(y.len(), 2, 1);
        Forward::new(
            y,
            SageCache { x: x.clone(), mean },
            Cost::agg(agg_ms) + Cost::update(ms1 + ms2) + Cost::other(ew_ms),
        )
    }

    /// Inference-only forward: same kernels and cost as
    /// [`SageLayer::forward`] with no backward state retained.
    pub fn infer(&self, eng: &mut Engine, x: &DenseMatrix) -> (DenseMatrix, Cost) {
        let (mean, agg_ms) = eng.mean_aggregate(x).expect("dims agree");
        let (mut y, ms1) = eng.linear(x, &self.w_self);
        let (y2, ms2) = eng.linear(&mean, &self.w_neigh);
        y.add_assign(&y2).expect("same shape");
        ops::add_bias_inplace(&mut y, &self.b).expect("bias length");
        let ew_ms = eng.elementwise_ms(y.len(), 2, 1);
        (
            y,
            Cost::agg(agg_ms) + Cost::update(ms1 + ms2) + Cost::other(ew_ms),
        )
    }

    /// Backward pass.
    pub fn backward(
        &self,
        eng: &mut Engine,
        cache: &SageCache,
        dy: &DenseMatrix,
        needs_dx: bool,
    ) -> (Option<DenseMatrix>, SageGrads, Cost) {
        let (dw_self, ms1) = eng.linear_at_b(&cache.x, dy);
        let (dw_neigh, ms2) = eng.linear_at_b(&cache.mean, dy);
        let db = ops::column_sums(dy);
        let db_ms = eng.elementwise_ms(dy.len(), 1, 0);
        let mut cost = Cost::update(ms1 + ms2) + Cost::other(db_ms);
        let dx = if needs_dx {
            let (mut dx, ms3) = eng.linear_a_bt(dy, &self.w_self);
            let (dmean, ms4) = eng.linear_a_bt(dy, &self.w_neigh);
            let (dx_agg, agg_ms) = eng.mean_aggregate_t(&dmean).expect("dims agree");
            dx.add_assign(&dx_agg).expect("same shape");
            cost += Cost::update(ms3 + ms4)
                + Cost::agg(agg_ms)
                + Cost::other(eng.elementwise_ms(dx.len(), 2, 1));
            Some(dx)
        } else {
            None
        };
        (
            dx,
            SageGrads {
                dw_self,
                dw_neigh,
                db,
            },
            cost,
        )
    }
}

impl Layer for SageLayer {
    type Cache = SageCache;
    type Grads = SageGrads;

    fn forward(&self, eng: &mut Engine, x: &DenseMatrix) -> Forward<SageCache> {
        SageLayer::forward(self, eng, x)
    }

    fn infer(&self, eng: &mut Engine, x: &DenseMatrix) -> (DenseMatrix, Cost) {
        SageLayer::infer(self, eng, x)
    }

    fn backward(
        &self,
        eng: &mut Engine,
        cache: &SageCache,
        dy: &DenseMatrix,
        needs_dx: bool,
    ) -> (Option<DenseMatrix>, SageGrads, Cost) {
        SageLayer::backward(self, eng, cache, dy, needs_dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Backend, Engine};
    use tcg_gpusim::DeviceSpec;
    use tcg_graph::gen;

    fn engine(backend: Backend) -> Engine {
        let g = gen::erdos_renyi(44, 280, 1).unwrap();
        Engine::builder(g)
            .backend(backend)
            .device(DeviceSpec::rtx3090())
            .build()
            .expect("graph is symmetric")
    }

    #[test]
    fn forward_shapes_and_backend_agreement() {
        let layer = SageLayer::new(5, 4, 2);
        let x = init::uniform(44, 5, -1.0, 1.0, 3);
        let mut outs = Vec::new();
        for b in Backend::all() {
            let mut eng = engine(b);
            let (y, _, cost) = layer.forward(&mut eng, &x).into_parts();
            assert_eq!(y.shape(), (44, 4));
            assert!(cost.aggregation_ms > 0.0 && cost.update_ms > 0.0);
            outs.push(y);
        }
        for y in &outs[1..] {
            assert!(y.max_abs_diff(&outs[0]).unwrap() < 0.02);
        }
    }

    #[test]
    fn isolated_node_uses_only_self_path() {
        // A node with no neighbors: mean term is zero.
        let g = tcg_graph::CsrGraph::from_raw(3, vec![0, 1, 2, 2], vec![1, 0]).unwrap();
        let mut eng = Engine::builder(g)
            .backend(Backend::DglLike)
            .device(DeviceSpec::rtx3090())
            .build()
            .expect("graph is symmetric");
        let layer = SageLayer::new(2, 2, 4);
        let x = init::uniform(3, 2, -1.0, 1.0, 5);
        let (y, _, _) = layer.forward(&mut eng, &x).into_parts();
        let expect = tcg_tensor::gemm::gemm(&x, &layer.w_self).unwrap();
        for j in 0..2 {
            assert!((y.get(2, j) - expect.get(2, j)).abs() < 1e-4);
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut eng = engine(Backend::DglLike);
        let layer = SageLayer::new(4, 3, 6);
        let x = init::uniform(44, 4, -1.0, 1.0, 7);
        let (y, cache, _) = layer.forward(&mut eng, &x).into_parts();
        let (dx, grads, _) = layer.backward(&mut eng, &cache, &y, true);
        let dx = dx.unwrap();
        let loss = |l: &SageLayer, xx: &DenseMatrix, e: &mut Engine| -> f64 {
            let (yy, _, _) = l.forward(e, xx).into_parts();
            yy.as_slice()
                .iter()
                .map(|v| (*v as f64).powi(2))
                .sum::<f64>()
                / 2.0
        };
        let eps = 1e-3_f32;
        for &(i, j) in &[(0usize, 0usize), (3, 2), (1, 1)] {
            for which in 0..2 {
                let mut lp = layer.clone();
                let mut lm = layer.clone();
                let (wp, wm) = if which == 0 {
                    (&mut lp.w_self, &mut lm.w_self)
                } else {
                    (&mut lp.w_neigh, &mut lm.w_neigh)
                };
                wp.set(i, j, wp.get(i, j) + eps);
                wm.set(i, j, wm.get(i, j) - eps);
                let fd = (loss(&lp, &x, &mut eng) - loss(&lm, &x, &mut eng)) / (2.0 * eps as f64);
                let an = if which == 0 {
                    grads.dw_self.get(i, j)
                } else {
                    grads.dw_neigh.get(i, j)
                } as f64;
                assert!(
                    (fd - an).abs() < 0.05 * (1.0 + an.abs()),
                    "w{which}[{i},{j}]: fd {fd} vs {an}"
                );
            }
        }
        let mut xp = x.clone();
        xp.set(9, 1, xp.get(9, 1) + eps);
        let mut xm = x.clone();
        xm.set(9, 1, xm.get(9, 1) - eps);
        let fd = (loss(&layer, &xp, &mut eng) - loss(&layer, &xm, &mut eng)) / (2.0 * eps as f64);
        let an = dx.get(9, 1) as f64;
        assert!(
            (fd - an).abs() < 0.05 * (1.0 + an.abs()),
            "dx: fd {fd} vs {an}"
        );
    }
}
