//! Graph Isomorphism Network layer (Xu et al.).
//!
//! `Y = MLP((1 + ε)·X + Σ_{u∈N(v)} X_u)` — sum aggregation (plain
//! unweighted SpMM, the simplest workload the paper's kernels serve) with a
//! trainable `ε` and a two-layer MLP update. GIN is the other model the
//! paper's §2.1 names as using pure adjacency aggregation.

use tcg_profile::Phase;
use tcg_tensor::{init, ops, DenseMatrix};

use crate::engine::{Cost, Engine};
use crate::forward::{Forward, Layer};

/// One GIN layer.
#[derive(Debug, Clone)]
pub struct GinLayer {
    /// Self-weight scalar offset (the paper-trainable ε).
    pub eps: f32,
    /// MLP first weight, `in_dim × hidden`.
    pub w1: DenseMatrix,
    /// MLP first bias.
    pub b1: Vec<f32>,
    /// MLP second weight, `hidden × out_dim`.
    pub w2: DenseMatrix,
    /// MLP second bias.
    pub b2: Vec<f32>,
}

/// Saved forward state.
#[derive(Debug, Clone)]
pub struct GinCache {
    x: DenseMatrix,
    h: DenseMatrix,
    z1: DenseMatrix,
    a1: DenseMatrix,
}

/// Parameter gradients.
#[derive(Debug, Clone)]
pub struct GinGrads {
    /// `∂L/∂ε`.
    pub deps: f32,
    /// `∂L/∂W1`.
    pub dw1: DenseMatrix,
    /// `∂L/∂b1`.
    pub db1: Vec<f32>,
    /// `∂L/∂W2`.
    pub dw2: DenseMatrix,
    /// `∂L/∂b2`.
    pub db2: Vec<f32>,
}

impl GinLayer {
    /// Xavier-initialized layer with `ε = 0`.
    pub fn new(in_dim: usize, hidden: usize, out_dim: usize, seed: u64) -> Self {
        GinLayer {
            eps: 0.0,
            w1: init::xavier_uniform(in_dim, hidden, seed),
            b1: vec![0.0; hidden],
            w2: init::xavier_uniform(hidden, out_dim, seed ^ 0x61_6e),
            b2: vec![0.0; out_dim],
        }
    }

    /// Forward pass.
    pub fn forward(&self, eng: &mut Engine, x: &DenseMatrix) -> Forward<GinCache> {
        let (mut h, agg_ms) = eng.sum_aggregate(x).expect("dims agree");
        for (hv, xv) in h.as_mut_slice().iter_mut().zip(x.as_slice()) {
            *hv += (1.0 + self.eps) * xv;
        }
        let mut cost = Cost::agg(agg_ms) + Cost::other(eng.elementwise_ms(h.len(), 2, 1));
        let (mut z1, ms1) = eng.linear(&h, &self.w1);
        ops::add_bias_inplace(&mut z1, &self.b1).expect("bias length");
        let a1 = ops::relu(&z1);
        // Bias add and ReLU are two separate launches; recording them as
        // two events keeps the trace exact (`a + a == a * 2.0` in IEEE).
        cost += Cost::update(ms1)
            + Cost::other(
                eng.elementwise_tagged_ms("bias_add", Phase::Other, z1.len(), 1, 1)
                    + eng.elementwise_tagged_ms("relu", Phase::Other, z1.len(), 1, 1),
            );
        let (mut y, ms2) = eng.linear(&a1, &self.w2);
        ops::add_bias_inplace(&mut y, &self.b2).expect("bias length");
        cost += Cost::update(ms2) + Cost::other(eng.elementwise_ms(y.len(), 1, 1));
        Forward::new(
            y,
            GinCache {
                x: x.clone(),
                h,
                z1,
                a1,
            },
            cost,
        )
    }

    /// Inference-only forward: same kernels and cost as
    /// [`GinLayer::forward`] with no backward state retained.
    pub fn infer(&self, eng: &mut Engine, x: &DenseMatrix) -> (DenseMatrix, Cost) {
        let (mut h, agg_ms) = eng.sum_aggregate(x).expect("dims agree");
        for (hv, xv) in h.as_mut_slice().iter_mut().zip(x.as_slice()) {
            *hv += (1.0 + self.eps) * xv;
        }
        let mut cost = Cost::agg(agg_ms) + Cost::other(eng.elementwise_ms(h.len(), 2, 1));
        let (mut z1, ms1) = eng.linear(&h, &self.w1);
        ops::add_bias_inplace(&mut z1, &self.b1).expect("bias length");
        let a1 = ops::relu(&z1);
        cost += Cost::update(ms1)
            + Cost::other(
                eng.elementwise_tagged_ms("bias_add", Phase::Other, z1.len(), 1, 1)
                    + eng.elementwise_tagged_ms("relu", Phase::Other, z1.len(), 1, 1),
            );
        let (mut y, ms2) = eng.linear(&a1, &self.w2);
        ops::add_bias_inplace(&mut y, &self.b2).expect("bias length");
        cost += Cost::update(ms2) + Cost::other(eng.elementwise_ms(y.len(), 1, 1));
        (y, cost)
    }

    /// Backward pass.
    pub fn backward(
        &self,
        eng: &mut Engine,
        cache: &GinCache,
        dy: &DenseMatrix,
        needs_dx: bool,
    ) -> (Option<DenseMatrix>, GinGrads, Cost) {
        // MLP backward.
        let (dw2, ms1) = eng.linear_at_b(&cache.a1, dy);
        let db2 = ops::column_sums(dy);
        let (da1, ms2) = eng.linear_a_bt(dy, &self.w2);
        let dz1 = ops::relu_backward(&cache.z1, &da1).expect("same shape");
        let (dw1, ms3) = eng.linear_at_b(&cache.h, &dz1);
        let db1 = ops::column_sums(&dz1);
        let (dh, ms4) = eng.linear_a_bt(&dz1, &self.w1);
        // ReLU backward + bias-gradient reduction: two launches, two events.
        let mut cost = Cost::update(ms1 + ms2 + ms3 + ms4)
            + Cost::other(
                eng.elementwise_tagged_ms("relu_backward", Phase::Other, dz1.len(), 2, 1)
                    + eng.elementwise_tagged_ms("bias_grad", Phase::Other, dz1.len(), 2, 1),
            );

        // dε = Σ dh ⊙ x.
        let deps: f32 = dh
            .as_slice()
            .iter()
            .zip(cache.x.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        cost += Cost::other(eng.elementwise_ms(dh.len(), 2, 0));

        let dx = if needs_dx {
            // dx = (1+ε)·dh + Aᵀ dh (A symmetric, unweighted).
            let (mut dx, agg_ms) = eng.sum_aggregate(&dh).expect("dims agree");
            for (dv, hv) in dx.as_mut_slice().iter_mut().zip(dh.as_slice()) {
                *dv += (1.0 + self.eps) * hv;
            }
            cost += Cost::agg(agg_ms) + Cost::other(eng.elementwise_ms(dx.len(), 2, 1));
            Some(dx)
        } else {
            None
        };
        (
            dx,
            GinGrads {
                deps,
                dw1,
                db1,
                dw2,
                db2,
            },
            cost,
        )
    }
}

impl Layer for GinLayer {
    type Cache = GinCache;
    type Grads = GinGrads;

    fn forward(&self, eng: &mut Engine, x: &DenseMatrix) -> Forward<GinCache> {
        GinLayer::forward(self, eng, x)
    }

    fn infer(&self, eng: &mut Engine, x: &DenseMatrix) -> (DenseMatrix, Cost) {
        GinLayer::infer(self, eng, x)
    }

    fn backward(
        &self,
        eng: &mut Engine,
        cache: &GinCache,
        dy: &DenseMatrix,
        needs_dx: bool,
    ) -> (Option<DenseMatrix>, GinGrads, Cost) {
        GinLayer::backward(self, eng, cache, dy, needs_dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Backend, Engine};
    use tcg_gpusim::DeviceSpec;
    use tcg_graph::gen;

    fn engine(backend: Backend) -> Engine {
        let g = gen::erdos_renyi(40, 240, 1).unwrap();
        Engine::builder(g)
            .backend(backend)
            .device(DeviceSpec::rtx3090())
            .build()
            .expect("graph is symmetric")
    }

    #[test]
    fn forward_shapes_and_backend_agreement() {
        let layer = GinLayer::new(5, 8, 4, 2);
        let x = init::uniform(40, 5, -1.0, 1.0, 3);
        let mut outs = Vec::new();
        for b in Backend::all() {
            let mut eng = engine(b);
            let (y, _, cost) = layer.forward(&mut eng, &x).into_parts();
            assert_eq!(y.shape(), (40, 4));
            assert!(cost.aggregation_ms > 0.0 && cost.update_ms > 0.0);
            outs.push(y);
        }
        for y in &outs[1..] {
            assert!(y.max_abs_diff(&outs[0]).unwrap() < 0.02);
        }
    }

    #[test]
    fn epsilon_scales_self_contribution() {
        // With no edges, h = (1+ε)x exactly.
        let g = tcg_graph::CsrGraph::from_raw(4, vec![0; 5], vec![]).unwrap();
        let mut eng = Engine::builder(g)
            .backend(Backend::TcGnn)
            .device(DeviceSpec::rtx3090())
            .build()
            .expect("graph is symmetric");
        let mut layer = GinLayer::new(3, 4, 2, 5);
        layer.eps = 1.0;
        let x = init::uniform(4, 3, -1.0, 1.0, 6);
        let (_, cache, _) = layer.forward(&mut eng, &x).into_parts();
        for (h, xv) in cache.h.as_slice().iter().zip(x.as_slice()) {
            assert!((h - 2.0 * xv).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut eng = engine(Backend::DglLike);
        let layer = GinLayer::new(4, 6, 3, 7);
        let x = init::uniform(40, 4, -1.0, 1.0, 8);
        let (y, cache, _) = layer.forward(&mut eng, &x).into_parts();
        let (dx, grads, _) = layer.backward(&mut eng, &cache, &y, true);
        let dx = dx.unwrap();
        let loss = |l: &GinLayer, xx: &DenseMatrix, e: &mut Engine| -> f64 {
            let (yy, _, _) = l.forward(e, xx).into_parts();
            yy.as_slice()
                .iter()
                .map(|v| (*v as f64).powi(2))
                .sum::<f64>()
                / 2.0
        };
        let eps = 1e-3_f32;

        // dε.
        let mut lp = layer.clone();
        lp.eps += eps;
        let mut lm = layer.clone();
        lm.eps -= eps;
        let fd = (loss(&lp, &x, &mut eng) - loss(&lm, &x, &mut eng)) / (2.0 * eps as f64);
        assert!(
            (fd - grads.deps as f64).abs() < 0.05 * (1.0 + fd.abs()),
            "deps: fd {fd} vs {}",
            grads.deps
        );

        // dW1, dW2 spot checks.
        for &(i, j) in &[(0usize, 0usize), (3, 4)] {
            let mut lp = layer.clone();
            lp.w1.set(i, j, lp.w1.get(i, j) + eps);
            let mut lm = layer.clone();
            lm.w1.set(i, j, lm.w1.get(i, j) - eps);
            let fd = (loss(&lp, &x, &mut eng) - loss(&lm, &x, &mut eng)) / (2.0 * eps as f64);
            let an = grads.dw1.get(i, j) as f64;
            assert!((fd - an).abs() < 0.05 * (1.0 + an.abs()), "dW1[{i},{j}]");
        }
        for &(i, j) in &[(0usize, 0usize), (5, 2)] {
            let mut lp = layer.clone();
            lp.w2.set(i, j, lp.w2.get(i, j) + eps);
            let mut lm = layer.clone();
            lm.w2.set(i, j, lm.w2.get(i, j) - eps);
            let fd = (loss(&lp, &x, &mut eng) - loss(&lm, &x, &mut eng)) / (2.0 * eps as f64);
            let an = grads.dw2.get(i, j) as f64;
            assert!((fd - an).abs() < 0.05 * (1.0 + an.abs()), "dW2[{i},{j}]");
        }

        // dx spot check.
        let mut xp = x.clone();
        xp.set(11, 2, xp.get(11, 2) + eps);
        let mut xm = x.clone();
        xm.set(11, 2, xm.get(11, 2) - eps);
        let fd = (loss(&layer, &xp, &mut eng) - loss(&layer, &xm, &mut eng)) / (2.0 * eps as f64);
        let an = dx.get(11, 2) as f64;
        assert!(
            (fd - an).abs() < 0.05 * (1.0 + an.abs()),
            "dx: fd {fd} vs {an}"
        );
    }
}
