//! Graph Convolutional Network layer (Kipf & Welling).
//!
//! `Y = Â X W` with `Â = D^{-1/2} A D^{-1/2}`, computed in whichever order
//! is cheaper — exactly DGL's `GraphConv` heuristic: when `in_dim >
//! out_dim` the weight multiply runs first so aggregation happens on the
//! smaller dimension; otherwise aggregation runs first. Gradients mirror
//! the chosen order and reuse the same backend aggregation (`Âᵀ = Â`).

use tcg_tensor::{init, ops, DenseMatrix};

use crate::engine::{Cost, Engine};
use crate::forward::{Forward, Layer};

/// One GCN layer.
#[derive(Debug, Clone)]
pub struct GcnLayer {
    /// Weight matrix `in_dim × out_dim`.
    pub w: DenseMatrix,
    /// Bias `out_dim`.
    pub b: Vec<f32>,
}

/// Which operand order the forward pass used (DGL's heuristic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Order {
    /// `Y = (Â X)·W + b` — aggregation on the input dimension.
    AggregateFirst,
    /// `Y = Â(X·W) + b` — aggregation on the output dimension.
    UpdateFirst,
}

/// Saved forward state for backward.
#[derive(Debug, Clone)]
pub struct GcnCache {
    order: Order,
    /// `Â X` (aggregate-first) or `X` (update-first).
    saved: DenseMatrix,
}

/// Parameter gradients.
#[derive(Debug, Clone)]
pub struct GcnGrads {
    /// `∂L/∂W`.
    pub dw: DenseMatrix,
    /// `∂L/∂b`.
    pub db: Vec<f32>,
}

impl GcnLayer {
    /// Xavier-initialized layer.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        GcnLayer {
            w: init::xavier_uniform(in_dim, out_dim, seed),
            b: vec![0.0; out_dim],
        }
    }

    fn order(&self) -> Order {
        if self.aggregate_first() {
            Order::AggregateFirst
        } else {
            Order::UpdateFirst
        }
    }

    /// Whether the forward pass aggregates before the weight multiply
    /// (DGL's `GraphConv` heuristic: aggregate first unless `in_dim >
    /// out_dim`). Public so external orchestrators — the sharded executor
    /// in `tcg-dist` — can replay the exact same op order and stay
    /// bitwise-identical to [`GcnLayer::infer`].
    pub fn aggregate_first(&self) -> bool {
        self.w.rows() <= self.w.cols()
    }

    /// Forward pass.
    pub fn forward(&self, eng: &mut Engine, x: &DenseMatrix) -> Forward<GcnCache> {
        match self.order() {
            Order::AggregateFirst => {
                let (h_agg, agg_ms) = eng.gcn_aggregate(x).expect("graph and x dims agree");
                let (mut y, gemm_ms) = eng.linear(&h_agg, &self.w);
                ops::add_bias_inplace(&mut y, &self.b).expect("bias length matches out_dim");
                let bias_ms = eng.elementwise_ms(y.len(), 1, 1);
                Forward::new(
                    y,
                    GcnCache {
                        order: Order::AggregateFirst,
                        saved: h_agg,
                    },
                    Cost::agg(agg_ms) + Cost::update(gemm_ms) + Cost::other(bias_ms),
                )
            }
            Order::UpdateFirst => {
                let (mut h, gemm_ms) = eng.linear(x, &self.w);
                ops::add_bias_inplace(&mut h, &self.b).expect("bias length matches out_dim");
                let bias_ms = eng.elementwise_ms(h.len(), 1, 1);
                let (y, agg_ms) = eng.gcn_aggregate(&h).expect("dims agree");
                Forward::new(
                    y,
                    GcnCache {
                        order: Order::UpdateFirst,
                        saved: x.clone(),
                    },
                    Cost::update(gemm_ms) + Cost::other(bias_ms) + Cost::agg(agg_ms),
                )
            }
        }
    }

    /// Inference-only forward: identical math and kernel costs to
    /// [`GcnLayer::forward`], but no backward state is built — the
    /// aggregate-first path hands its intermediate straight to the GEMM and
    /// the update-first path never clones `x`.
    pub fn infer(&self, eng: &mut Engine, x: &DenseMatrix) -> (DenseMatrix, Cost) {
        match self.order() {
            Order::AggregateFirst => {
                let (h_agg, agg_ms) = eng.gcn_aggregate(x).expect("graph and x dims agree");
                let (mut y, gemm_ms) = eng.linear(&h_agg, &self.w);
                ops::add_bias_inplace(&mut y, &self.b).expect("bias length matches out_dim");
                let bias_ms = eng.elementwise_ms(y.len(), 1, 1);
                (
                    y,
                    Cost::agg(agg_ms) + Cost::update(gemm_ms) + Cost::other(bias_ms),
                )
            }
            Order::UpdateFirst => {
                let (mut h, gemm_ms) = eng.linear(x, &self.w);
                ops::add_bias_inplace(&mut h, &self.b).expect("bias length matches out_dim");
                let bias_ms = eng.elementwise_ms(h.len(), 1, 1);
                let (y, agg_ms) = eng.gcn_aggregate(&h).expect("dims agree");
                (
                    y,
                    Cost::update(gemm_ms) + Cost::other(bias_ms) + Cost::agg(agg_ms),
                )
            }
        }
    }

    /// Backward pass: given `dY` returns `(dX, grads, cost)`.
    ///
    /// Input layers pass `needs_dx = false` to skip the input-gradient
    /// GEMM/aggregation, as real frameworks do.
    pub fn backward(
        &self,
        eng: &mut Engine,
        cache: &GcnCache,
        dy: &DenseMatrix,
        needs_dx: bool,
    ) -> (Option<DenseMatrix>, GcnGrads, Cost) {
        match cache.order {
            Order::AggregateFirst => {
                // Y = (ÂX)W + b: dW = (ÂX)ᵀ dY, db = colsum(dY),
                // dX = Â (dY Wᵀ).
                let (dw, ms1) = eng.linear_at_b(&cache.saved, dy);
                let db = ops::column_sums(dy);
                let db_ms = eng.elementwise_ms(dy.len(), 1, 0);
                let mut cost = Cost::update(ms1) + Cost::other(db_ms);
                let dx = if needs_dx {
                    let (dh, ms2) = eng.linear_a_bt(dy, &self.w);
                    let (dx, agg_ms) = eng.gcn_aggregate(&dh).expect("dims agree");
                    cost += Cost::update(ms2) + Cost::agg(agg_ms);
                    Some(dx)
                } else {
                    None
                };
                (dx, GcnGrads { dw, db }, cost)
            }
            Order::UpdateFirst => {
                // Y = Â(XW + b): dH = Â dY; dW = Xᵀ dH; db = colsum(dH);
                // dX = dH Wᵀ.
                let (dh, agg_ms) = eng.gcn_aggregate(dy).expect("dims agree");
                let (dw, ms1) = eng.linear_at_b(&cache.saved, &dh);
                let db = ops::column_sums(&dh);
                let db_ms = eng.elementwise_ms(dh.len(), 1, 0);
                let mut cost = Cost::agg(agg_ms) + Cost::update(ms1) + Cost::other(db_ms);
                let dx = if needs_dx {
                    let (dx, ms2) = eng.linear_a_bt(&dh, &self.w);
                    cost += Cost::update(ms2);
                    Some(dx)
                } else {
                    None
                };
                (dx, GcnGrads { dw, db }, cost)
            }
        }
    }
}

impl Layer for GcnLayer {
    type Cache = GcnCache;
    type Grads = GcnGrads;

    fn forward(&self, eng: &mut Engine, x: &DenseMatrix) -> Forward<GcnCache> {
        GcnLayer::forward(self, eng, x)
    }

    fn infer(&self, eng: &mut Engine, x: &DenseMatrix) -> (DenseMatrix, Cost) {
        GcnLayer::infer(self, eng, x)
    }

    fn backward(
        &self,
        eng: &mut Engine,
        cache: &GcnCache,
        dy: &DenseMatrix,
        needs_dx: bool,
    ) -> (Option<DenseMatrix>, GcnGrads, Cost) {
        GcnLayer::backward(self, eng, cache, dy, needs_dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Backend, Engine};
    use tcg_gpusim::DeviceSpec;
    use tcg_graph::gen;

    fn engine(backend: Backend) -> Engine {
        let g = gen::erdos_renyi(48, 300, 1).unwrap();
        Engine::builder(g)
            .backend(backend)
            .device(DeviceSpec::rtx3090())
            .build()
            .expect("graph is symmetric")
    }

    #[test]
    fn order_follows_dgl_heuristic() {
        assert_eq!(GcnLayer::new(128, 16, 1).order(), Order::UpdateFirst);
        assert_eq!(GcnLayer::new(16, 64, 1).order(), Order::AggregateFirst);
        assert_eq!(GcnLayer::new(16, 16, 1).order(), Order::AggregateFirst);
    }

    #[test]
    fn both_orders_compute_the_same_function() {
        // Â(XW) = (ÂX)W: force each order via layer shapes around a square
        // weight by constructing transposed variants.
        let mut eng = engine(Backend::DglLike);
        let x = init::uniform(48, 6, -1.0, 1.0, 2);
        // in < out: aggregate-first.
        let wide = GcnLayer::new(6, 9, 3);
        // in > out with the numerically identical weight: build by hand.
        let (y_wide, _, _) = wide.forward(&mut eng, &x).into_parts();
        // Manually compute Â(X·W) and compare.
        let (h, _) = eng.linear(&x, &wide.w);
        let (y_manual, _) = eng.gcn_aggregate(&h).unwrap();
        assert!(y_wide.max_abs_diff(&y_manual).unwrap() < 2e-2);
    }

    #[test]
    fn forward_shapes_and_cost_split() {
        let mut eng = engine(Backend::TcGnn);
        let layer = GcnLayer::new(6, 4, 1);
        let x = init::uniform(48, 6, -1.0, 1.0, 2);
        let (y, _, cost) = layer.forward(&mut eng, &x).into_parts();
        assert_eq!(y.shape(), (48, 4));
        assert!(cost.aggregation_ms > 0.0);
        assert!(cost.update_ms > 0.0);
    }

    #[test]
    fn backends_produce_same_forward() {
        let layer = GcnLayer::new(5, 3, 3);
        let x = init::uniform(48, 5, -1.0, 1.0, 4);
        let mut outs = Vec::new();
        for b in Backend::all() {
            let mut eng = engine(b);
            let (y, _, _) = layer.forward(&mut eng, &x).into_parts();
            outs.push(y);
        }
        for y in &outs[1..] {
            assert!(y.max_abs_diff(&outs[0]).unwrap() < 0.02);
        }
    }

    #[test]
    fn skipping_dx_returns_none_and_costs_less() {
        let mut eng = engine(Backend::DglLike);
        let layer = GcnLayer::new(4, 3, 5);
        let x = init::uniform(48, 4, -1.0, 1.0, 6);
        let (y, cache, _) = layer.forward(&mut eng, &x).into_parts();
        let (dx_some, _, cost_full) = layer.backward(&mut eng, &cache, &y, true);
        let (dx_none, _, cost_skip) = layer.backward(&mut eng, &cache, &y, false);
        assert!(dx_some.is_some());
        assert!(dx_none.is_none());
        assert!(cost_skip.total_ms() < cost_full.total_ms());
    }

    fn check_gradients(layer: &GcnLayer, eng: &mut Engine) {
        let x = init::uniform(48, layer.w.rows(), -1.0, 1.0, 6);
        let (y, cache, _) = layer.forward(eng, &x).into_parts();
        // Loss = Σ y² / 2 ⇒ dy = y.
        let (dx, grads, _) = layer.backward(eng, &cache, &y, true);
        let dx = dx.unwrap();
        let loss = |l: &GcnLayer, xx: &DenseMatrix, e: &mut Engine| -> f64 {
            let (yy, _, _) = l.forward(e, xx).into_parts();
            yy.as_slice()
                .iter()
                .map(|v| (*v as f64).powi(2))
                .sum::<f64>()
                / 2.0
        };
        let eps = 1e-3_f32;
        for &(i, j) in &[(0usize, 0usize), (2, 1), (1, 2)] {
            let i = i.min(layer.w.rows() - 1);
            let j = j.min(layer.w.cols() - 1);
            let mut lp = layer.clone();
            lp.w.set(i, j, lp.w.get(i, j) + eps);
            let mut lm = layer.clone();
            lm.w.set(i, j, lm.w.get(i, j) - eps);
            let fd = (loss(&lp, &x, eng) - loss(&lm, &x, eng)) / (2.0 * eps as f64);
            let an = grads.dw.get(i, j) as f64;
            assert!(
                (fd - an).abs() < 0.05 * (1.0 + an.abs()),
                "dW[{i},{j}]: fd {fd} vs analytic {an}"
            );
        }
        for j in 0..layer.w.cols() {
            let mut lp = layer.clone();
            lp.b[j] += eps;
            let mut lm = layer.clone();
            lm.b[j] -= eps;
            let fd = (loss(&lp, &x, eng) - loss(&lm, &x, eng)) / (2.0 * eps as f64);
            let an = grads.db[j] as f64;
            assert!((fd - an).abs() < 0.05 * (1.0 + an.abs()), "db[{j}]");
        }
        let mut xp = x.clone();
        xp.set(7, 2, xp.get(7, 2) + eps);
        let mut xm = x.clone();
        xm.set(7, 2, xm.get(7, 2) - eps);
        let fd = (loss(layer, &xp, eng) - loss(layer, &xm, eng)) / (2.0 * eps as f64);
        let an = dx.get(7, 2) as f64;
        assert!(
            (fd - an).abs() < 0.05 * (1.0 + an.abs()),
            "dx: fd {fd} vs {an}"
        );
    }

    #[test]
    fn gradients_match_finite_differences_aggregate_first() {
        let mut eng = engine(Backend::DglLike);
        check_gradients(&GcnLayer::new(4, 6, 5), &mut eng);
    }

    #[test]
    fn gradients_match_finite_differences_update_first() {
        let mut eng = engine(Backend::DglLike);
        check_gradients(&GcnLayer::new(6, 3, 5), &mut eng);
    }
}
