//! GNN layers with hand-derived backward passes.

pub mod agnn;
pub mod gcn;
pub mod gin;
pub mod linear;
pub mod sage;

pub use agnn::AgnnLayer;
pub use gcn::GcnLayer;
pub use gin::GinLayer;
pub use linear::Linear;
pub use sage::SageLayer;
