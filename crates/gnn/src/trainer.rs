//! End-to-end training loops with per-phase simulated timing — the
//! measurement harness behind the paper's Table 1 and Figure 6.

use tcg_graph::Dataset;
use tcg_profile::Phase;

use crate::engine::{Cost, Engine};
use crate::loss::masked_cross_entropy;
use crate::model::{AgnnModel, GcnModel, GinModel, SageModel};
use crate::optim::Adam;

/// Opens epoch `epoch` on the engine's profiler, if one is attached, so
/// every event the epoch records carries its index.
fn prof_begin_epoch(eng: &Engine, epoch: u32) {
    if let Some(p) = eng.profiler() {
        p.write().expect("profiler lock").begin_epoch(epoch);
    }
}

/// Closes the current profiler epoch, folding its events into a rollup
/// that cross-checks against the pushed [`EpochStats`].
fn prof_finish_epoch(eng: &Engine) {
    if let Some(p) = eng.profiler() {
        p.write().expect("profiler lock").finish_epoch();
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Hidden dimension (paper: 16 for GCN, 32 for AGNN).
    pub hidden: usize,
    /// Propagation layers for AGNN (paper: 4). GCN is fixed at 2 layers.
    pub layers: usize,
    /// Training epochs.
    pub epochs: u32,
    /// Adam learning rate.
    pub lr: f32,
    /// Parameter initialization seed.
    pub seed: u64,
}

impl TrainConfig {
    /// The paper's GCN setting: 2 layers, 16 hidden.
    pub fn gcn_paper() -> Self {
        TrainConfig {
            hidden: 16,
            layers: 2,
            epochs: 10,
            lr: 0.01,
            seed: 42,
        }
    }

    /// The paper's AGNN setting: 4 layers, 32 hidden.
    pub fn agnn_paper() -> Self {
        TrainConfig {
            hidden: 32,
            layers: 4,
            epochs: 10,
            lr: 0.01,
            seed: 42,
        }
    }

    /// Same config with a different epoch count.
    pub fn with_epochs(mut self, epochs: u32) -> Self {
        self.epochs = epochs;
        self
    }
}

/// Per-epoch measurements.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Mean training loss.
    pub loss: f64,
    /// Training-split accuracy.
    pub train_accuracy: f64,
    /// Simulated GPU cost of the epoch, split by phase.
    pub cost: Cost,
}

/// Result of one training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Backend label.
    pub backend: &'static str,
    /// Per-epoch stats.
    pub epochs: Vec<EpochStats>,
    /// One-time preprocessing (SGT) in modeled ms.
    pub preprocessing_ms: f64,
}

impl TrainResult {
    /// Mean per-epoch cost.
    pub fn avg_epoch_cost(&self) -> Cost {
        let n = self.epochs.len().max(1) as f64;
        let sum = self
            .epochs
            .iter()
            .fold(Cost::default(), |acc, e| acc + e.cost);
        Cost {
            aggregation_ms: sum.aggregation_ms / n,
            update_ms: sum.update_ms / n,
            other_ms: sum.other_ms / n,
        }
    }

    /// Mean simulated milliseconds per epoch.
    pub fn avg_epoch_ms(&self) -> f64 {
        self.avg_epoch_cost().total_ms()
    }

    /// Total simulated time including preprocessing.
    pub fn total_ms(&self) -> f64 {
        self.preprocessing_ms + self.epochs.iter().map(|e| e.cost.total_ms()).sum::<f64>()
    }

    /// Fraction of epoch time spent in sparse aggregation (Table 1's
    /// "Aggr. %").
    pub fn aggregation_fraction(&self) -> f64 {
        let c = self.avg_epoch_cost();
        if c.total_ms() == 0.0 {
            0.0
        } else {
            c.aggregation_ms / c.total_ms()
        }
    }

    /// Final epoch's training accuracy.
    pub fn final_accuracy(&self) -> f64 {
        self.epochs.last().map_or(0.0, |e| e.train_accuracy)
    }

    /// First epoch's loss minus last epoch's loss (positive = learning).
    pub fn loss_drop(&self) -> f64 {
        match (self.epochs.first(), self.epochs.last()) {
            (Some(f), Some(l)) => f.loss - l.loss,
            _ => 0.0,
        }
    }
}

/// Trains the paper's 2-layer GCN on `ds` using `eng`'s backend.
pub fn train_gcn(eng: &mut Engine, ds: &Dataset, cfg: TrainConfig) -> TrainResult {
    let mut model = GcnModel::new(ds.spec.feat_dim, cfg.hidden, ds.spec.num_classes, cfg.seed);
    let mut adam = Adam::new(cfg.lr);
    let mut epochs = Vec::with_capacity(cfg.epochs as usize);
    for epoch in 0..cfg.epochs {
        prof_begin_epoch(eng, epoch);
        let (logits, cache, fwd) = model.forward(eng, &ds.features);
        let lo = masked_cross_entropy(&logits, &ds.labels, &ds.train_mask);
        let loss_ms = eng.elementwise_tagged_ms("loss", Phase::Other, logits.len(), 2, 1);
        let (grads, bwd) = model.backward(eng, &cache, &lo.dlogits);
        let opt = model.apply_grads(eng, &mut adam, &grads);
        prof_finish_epoch(eng);
        epochs.push(EpochStats {
            loss: lo.loss,
            train_accuracy: lo.accuracy,
            cost: fwd + bwd + opt + Cost::other(loss_ms),
        });
    }
    TrainResult {
        backend: eng.backend().name(),
        epochs,
        preprocessing_ms: eng.preprocessing_ms(),
    }
}

/// Trains the paper's 4-layer AGNN on `ds` using `eng`'s backend.
pub fn train_agnn(eng: &mut Engine, ds: &Dataset, cfg: TrainConfig) -> TrainResult {
    let mut model = AgnnModel::new(
        ds.spec.feat_dim,
        cfg.hidden,
        ds.spec.num_classes,
        cfg.layers,
        cfg.seed,
    );
    let mut adam = Adam::new(cfg.lr);
    let mut epochs = Vec::with_capacity(cfg.epochs as usize);
    for epoch in 0..cfg.epochs {
        prof_begin_epoch(eng, epoch);
        let (logits, cache, fwd) = model.forward(eng, &ds.features);
        let lo = masked_cross_entropy(&logits, &ds.labels, &ds.train_mask);
        let loss_ms = eng.elementwise_tagged_ms("loss", Phase::Other, logits.len(), 2, 1);
        let (grads, bwd) = model.backward(eng, &cache, &lo.dlogits);
        let opt = model.apply_grads(eng, &mut adam, &grads);
        prof_finish_epoch(eng);
        epochs.push(EpochStats {
            loss: lo.loss,
            train_accuracy: lo.accuracy,
            cost: fwd + bwd + opt + Cost::other(loss_ms),
        });
    }
    TrainResult {
        backend: eng.backend().name(),
        epochs,
        preprocessing_ms: eng.preprocessing_ms(),
    }
}

/// Trains a 2-layer GraphSAGE (mean aggregator) on `ds`.
pub fn train_sage(eng: &mut Engine, ds: &Dataset, cfg: TrainConfig) -> TrainResult {
    let mut model = SageModel::new(ds.spec.feat_dim, cfg.hidden, ds.spec.num_classes, cfg.seed);
    let mut adam = Adam::new(cfg.lr);
    let mut epochs = Vec::with_capacity(cfg.epochs as usize);
    for epoch in 0..cfg.epochs {
        prof_begin_epoch(eng, epoch);
        let (logits, cache, fwd) = model.forward(eng, &ds.features);
        let lo = masked_cross_entropy(&logits, &ds.labels, &ds.train_mask);
        let loss_ms = eng.elementwise_tagged_ms("loss", Phase::Other, logits.len(), 2, 1);
        let (grads, bwd) = model.backward(eng, &cache, &lo.dlogits);
        let opt = model.apply_grads(eng, &mut adam, &grads);
        prof_finish_epoch(eng);
        epochs.push(EpochStats {
            loss: lo.loss,
            train_accuracy: lo.accuracy,
            cost: fwd + bwd + opt + Cost::other(loss_ms),
        });
    }
    TrainResult {
        backend: eng.backend().name(),
        epochs,
        preprocessing_ms: eng.preprocessing_ms(),
    }
}

/// Trains a 2-layer GIN on `ds`.
pub fn train_gin(eng: &mut Engine, ds: &Dataset, cfg: TrainConfig) -> TrainResult {
    let mut model = GinModel::new(ds.spec.feat_dim, cfg.hidden, ds.spec.num_classes, cfg.seed);
    let mut adam = Adam::new(cfg.lr);
    let mut epochs = Vec::with_capacity(cfg.epochs as usize);
    for epoch in 0..cfg.epochs {
        prof_begin_epoch(eng, epoch);
        let (logits, cache, fwd) = model.forward(eng, &ds.features);
        let lo = masked_cross_entropy(&logits, &ds.labels, &ds.train_mask);
        let loss_ms = eng.elementwise_tagged_ms("loss", Phase::Other, logits.len(), 2, 1);
        let (grads, bwd) = model.backward(eng, &cache, &lo.dlogits);
        let opt = model.apply_grads(eng, &mut adam, &grads);
        prof_finish_epoch(eng);
        epochs.push(EpochStats {
            loss: lo.loss,
            train_accuracy: lo.accuracy,
            cost: fwd + bwd + opt + Cost::other(loss_ms),
        });
    }
    TrainResult {
        backend: eng.backend().name(),
        epochs,
        preprocessing_ms: eng.preprocessing_ms(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Backend;
    use tcg_gpusim::DeviceSpec;
    use tcg_graph::datasets::{DatasetSpec, GraphClass};

    fn tiny_dataset() -> Dataset {
        DatasetSpec {
            name: "tiny-cora",
            class: GraphClass::TypeI,
            num_nodes: 300,
            num_edges: 2400,
            feat_dim: 32,
            num_classes: 4,
        }
        .materialize(7)
        .unwrap()
    }

    #[test]
    fn gcn_training_learns() {
        let ds = tiny_dataset();
        let mut eng = Engine::new(Backend::TcGnn, ds.graph.clone(), DeviceSpec::rtx3090());
        let cfg = TrainConfig {
            hidden: 16,
            layers: 2,
            epochs: 30,
            lr: 0.02,
            seed: 1,
        };
        let result = train_gcn(&mut eng, &ds, cfg);
        assert!(
            result.loss_drop() > 0.1,
            "loss should fall: {:?}",
            result.loss_drop()
        );
        assert!(
            result.final_accuracy() > 1.5 / 4.0,
            "accuracy above chance: {}",
            result.final_accuracy()
        );
        assert!(result.avg_epoch_ms() > 0.0);
        assert!(result.aggregation_fraction() > 0.0);
    }

    #[test]
    fn agnn_training_learns() {
        let ds = tiny_dataset();
        let mut eng = Engine::new(Backend::DglLike, ds.graph.clone(), DeviceSpec::rtx3090());
        let cfg = TrainConfig {
            hidden: 16,
            layers: 2,
            epochs: 25,
            lr: 0.02,
            seed: 2,
        };
        let result = train_agnn(&mut eng, &ds, cfg);
        assert!(
            result.loss_drop() > 0.05,
            "loss drop {}",
            result.loss_drop()
        );
        assert!(result.final_accuracy() > 1.2 / 4.0);
    }

    #[test]
    fn backends_converge_to_similar_losses() {
        let ds = tiny_dataset();
        let cfg = TrainConfig {
            hidden: 8,
            layers: 2,
            epochs: 10,
            lr: 0.02,
            seed: 3,
        };
        let mut losses = Vec::new();
        for b in Backend::all() {
            let mut eng = Engine::new(b, ds.graph.clone(), DeviceSpec::rtx3090());
            let r = train_gcn(&mut eng, &ds, cfg);
            losses.push(r.epochs.last().unwrap().loss);
        }
        for l in &losses[1..] {
            assert!(
                (l - losses[0]).abs() < 0.05,
                "backends should train identically: {losses:?}"
            );
        }
    }

    #[test]
    fn aggregation_dominates_epoch_time() {
        // Table 1's headline: aggregation takes the majority of GCN epoch
        // time even though Type I feature dims are large — measured at Cora
        // scale (scaled 2× down to keep the test fast).
        let ds = tcg_graph::datasets::spec_by_name("Cora")
            .unwrap()
            .scaled(2)
            .materialize(11)
            .unwrap();
        let mut eng = Engine::new(Backend::DglLike, ds.graph.clone(), DeviceSpec::rtx3090());
        let r = train_gcn(&mut eng, &ds, TrainConfig::gcn_paper().with_epochs(2));
        assert!(
            r.aggregation_fraction() > 0.4,
            "aggregation fraction {}",
            r.aggregation_fraction()
        );
    }

    #[test]
    fn sage_and_gin_training_learn() {
        let ds = tiny_dataset();
        let cfg = TrainConfig {
            hidden: 16,
            layers: 2,
            epochs: 30,
            lr: 0.02,
            seed: 9,
        };
        let mut eng = Engine::new(Backend::TcGnn, ds.graph.clone(), DeviceSpec::rtx3090());
        let sage = train_sage(&mut eng, &ds, cfg);
        assert!(
            sage.loss_drop() > 0.1,
            "sage loss drop {}",
            sage.loss_drop()
        );
        assert!(sage.final_accuracy() > 1.5 / 4.0);
        let mut eng = Engine::new(Backend::DglLike, ds.graph.clone(), DeviceSpec::rtx3090());
        let gin = train_gin(&mut eng, &ds, cfg);
        assert!(gin.loss_drop() > 0.1, "gin loss drop {}", gin.loss_drop());
        assert!(gin.final_accuracy() > 1.5 / 4.0);
    }

    #[test]
    fn tcgnn_not_slower_than_dgl_per_epoch() {
        let ds = tiny_dataset();
        let cfg = TrainConfig::gcn_paper().with_epochs(2);
        let mut e1 = Engine::new(Backend::DglLike, ds.graph.clone(), DeviceSpec::rtx3090());
        let dgl = train_gcn(&mut e1, &ds, cfg);
        let mut e2 = Engine::new(Backend::TcGnn, ds.graph.clone(), DeviceSpec::rtx3090());
        let tc = train_gcn(&mut e2, &ds, cfg);
        assert!(
            tc.avg_epoch_ms() < dgl.avg_epoch_ms(),
            "TC-GNN {} ms vs DGL {} ms",
            tc.avg_epoch_ms(),
            dgl.avg_epoch_ms()
        );
    }
}
