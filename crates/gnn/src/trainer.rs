//! End-to-end training loops with per-phase simulated timing — the
//! measurement harness behind the paper's Table 1 and Figure 6.

use tcg_fault::FaultReport;
use tcg_graph::Dataset;
use tcg_profile::Phase;
use tcg_tensor::DenseMatrix;

use crate::engine::{Cost, Engine};
use crate::forward::Forward;
use crate::loss::masked_cross_entropy;
use crate::model::{AgnnModel, GcnModel, GinModel, SageModel};
use crate::optim::Adam;

/// Opens epoch `epoch` on the engine's profiler, if one is attached, so
/// every event the epoch records carries its index.
fn prof_begin_epoch(eng: &Engine, epoch: u32) {
    if let Some(p) = eng.profiler() {
        p.write().expect("profiler lock").begin_epoch(epoch);
    }
}

/// Closes the current profiler epoch, folding its events into a rollup
/// that cross-checks against the pushed [`EpochStats`].
fn prof_finish_epoch(eng: &Engine) {
    if let Some(p) = eng.profiler() {
        p.write().expect("profiler lock").finish_epoch();
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Hidden dimension (paper: 16 for GCN, 32 for AGNN).
    pub hidden: usize,
    /// Propagation layers for AGNN (paper: 4). GCN is fixed at 2 layers.
    pub layers: usize,
    /// Training epochs.
    pub epochs: u32,
    /// Adam learning rate.
    pub lr: f32,
    /// Parameter initialization seed.
    pub seed: u64,
}

impl TrainConfig {
    /// The paper's GCN setting: 2 layers, 16 hidden.
    pub fn gcn_paper() -> Self {
        TrainConfig {
            hidden: 16,
            layers: 2,
            epochs: 10,
            lr: 0.01,
            seed: 42,
        }
    }

    /// The paper's AGNN setting: 4 layers, 32 hidden.
    pub fn agnn_paper() -> Self {
        TrainConfig {
            hidden: 32,
            layers: 4,
            epochs: 10,
            lr: 0.01,
            seed: 42,
        }
    }

    /// Same config with a different epoch count.
    pub fn with_epochs(mut self, epochs: u32) -> Self {
        self.epochs = epochs;
        self
    }
}

/// Per-epoch measurements.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Mean training loss.
    pub loss: f64,
    /// Training-split accuracy.
    pub train_accuracy: f64,
    /// Simulated GPU cost of the epoch, split by phase.
    pub cost: Cost,
}

/// Result of one training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Backend label.
    pub backend: &'static str,
    /// Per-epoch stats.
    pub epochs: Vec<EpochStats>,
    /// One-time preprocessing (SGT) in modeled ms.
    pub preprocessing_ms: f64,
    /// Fault accounting: injections, retries, degradations. All zeros for a
    /// fault-free run.
    pub fault_report: FaultReport,
    /// Epochs whose state was rolled back to the last checkpoint and
    /// replayed on the fallback path after a poisoned loss/gradient.
    pub epochs_rolled_back: u32,
}

impl TrainResult {
    /// Mean per-epoch cost.
    pub fn avg_epoch_cost(&self) -> Cost {
        let n = self.epochs.len().max(1) as f64;
        let sum = self
            .epochs
            .iter()
            .fold(Cost::default(), |acc, e| acc + e.cost);
        Cost {
            aggregation_ms: sum.aggregation_ms / n,
            update_ms: sum.update_ms / n,
            other_ms: sum.other_ms / n,
        }
    }

    /// Mean simulated milliseconds per epoch.
    pub fn avg_epoch_ms(&self) -> f64 {
        self.avg_epoch_cost().total_ms()
    }

    /// Total simulated time including preprocessing.
    pub fn total_ms(&self) -> f64 {
        self.preprocessing_ms + self.epochs.iter().map(|e| e.cost.total_ms()).sum::<f64>()
    }

    /// Fraction of epoch time spent in sparse aggregation (Table 1's
    /// "Aggr. %").
    pub fn aggregation_fraction(&self) -> f64 {
        let c = self.avg_epoch_cost();
        if c.total_ms() == 0.0 {
            0.0
        } else {
            c.aggregation_ms / c.total_ms()
        }
    }

    /// Final epoch's training accuracy.
    pub fn final_accuracy(&self) -> f64 {
        self.epochs.last().map_or(0.0, |e| e.train_accuracy)
    }

    /// First epoch's loss minus last epoch's loss (positive = learning).
    pub fn loss_drop(&self) -> f64 {
        match (self.epochs.first(), self.epochs.last()) {
            (Some(f), Some(l)) => f.loss - l.loss,
            _ => 0.0,
        }
    }
}

/// A model the generic training loop can drive: forward to logits,
/// backward from the logits gradient, and one optimizer step.
///
/// `Clone` is the checkpoint mechanism — under an attached fault plan the
/// loop snapshots `(model, optimizer)` at each epoch boundary and restores
/// the pair if the epoch's loss or gradients come back poisoned.
pub trait TrainableModel: Clone {
    /// Intermediate activations the backward pass needs.
    type Cache;
    /// Parameter gradients produced by the backward pass.
    type Grads;

    /// Forward pass to logits.
    fn forward(&self, eng: &mut Engine, x: &DenseMatrix) -> Forward<Self::Cache>;

    /// Backward pass from the logits gradient.
    fn backward(
        &self,
        eng: &mut Engine,
        cache: &Self::Cache,
        dlogits: &DenseMatrix,
    ) -> (Self::Grads, Cost);

    /// Applies one Adam step; returns the optimizer's simulated cost.
    fn apply_grads(&mut self, eng: &mut Engine, adam: &mut Adam, grads: &Self::Grads) -> Cost;

    /// Whether no parameter has been contaminated by NaN/Inf — consulted
    /// after the optimizer step when a fault plan is active, because an ECC
    /// flip in a *backward* aggregation poisons gradients rather than
    /// logits.
    fn params_finite(&self) -> bool;
}

macro_rules! impl_trainable {
    ($model:ty, $cache:ty, $grads:ty) => {
        impl TrainableModel for $model {
            type Cache = $cache;
            type Grads = $grads;
            fn forward(&self, eng: &mut Engine, x: &DenseMatrix) -> Forward<Self::Cache> {
                <$model>::forward(self, eng, x)
            }
            fn backward(
                &self,
                eng: &mut Engine,
                cache: &Self::Cache,
                dlogits: &DenseMatrix,
            ) -> (Self::Grads, Cost) {
                <$model>::backward(self, eng, cache, dlogits)
            }
            fn apply_grads(
                &mut self,
                eng: &mut Engine,
                adam: &mut Adam,
                grads: &Self::Grads,
            ) -> Cost {
                <$model>::apply_grads(self, eng, adam, grads)
            }
            fn params_finite(&self) -> bool {
                <$model>::params_finite(self)
            }
        }
    };
}

impl_trainable!(
    GcnModel,
    crate::model::GcnModelCache,
    crate::model::GcnModelGrads
);
impl_trainable!(
    AgnnModel,
    crate::model::AgnnModelCache,
    crate::model::AgnnModelGrads
);
impl_trainable!(
    SageModel,
    crate::model::SageModelCache,
    crate::model::SageModelGrads
);
impl_trainable!(
    GinModel,
    crate::model::GinModelCache,
    crate::model::GinModelGrads
);

/// Outcome of one epoch attempt.
struct EpochAttempt {
    loss: f64,
    accuracy: f64,
    cost: Cost,
    /// Loss or gradients contained NaN/Inf — an unrecovered ECC flip.
    poisoned: bool,
}

/// Runs one training epoch. When the loss or the logits gradient carries
/// NaN/Inf (an ECC flip that slipped past the engine's scan), the epoch
/// aborts *before* the optimizer step so parameters are never contaminated.
fn run_epoch<M: TrainableModel>(
    eng: &mut Engine,
    ds: &Dataset,
    model: &mut M,
    adam: &mut Adam,
) -> EpochAttempt {
    let (logits, cache, fwd) = model.forward(eng, &ds.features).into_parts();
    let lo = masked_cross_entropy(&logits, &ds.labels, &ds.train_mask);
    let loss_ms = eng.elementwise_tagged_ms("loss", Phase::Other, logits.len(), 2, 1);
    let poisoned = !lo.loss.is_finite()
        || logits.as_slice().iter().any(|v| !v.is_finite())
        || lo.dlogits.as_slice().iter().any(|v| !v.is_finite());
    if poisoned {
        return EpochAttempt {
            loss: lo.loss,
            accuracy: lo.accuracy,
            cost: fwd + Cost::other(loss_ms),
            poisoned: true,
        };
    }
    let (grads, bwd) = model.backward(eng, &cache, &lo.dlogits);
    let opt = model.apply_grads(eng, adam, &grads);
    // A flip in a backward aggregation contaminates parameters, not this
    // epoch's logits; catch it here so the *next* epoch never runs on NaN
    // weights. Checked only under a fault plan — fault-free runs skip the
    // scan entirely.
    let poisoned = eng.fault_plan().is_some() && !model.params_finite();
    EpochAttempt {
        loss: lo.loss,
        accuracy: lo.accuracy,
        cost: fwd + bwd + opt + Cost::other(loss_ms),
        poisoned,
    }
}

/// The generic training loop: per-epoch checkpointing and poisoned-epoch
/// rollback activate only when the engine carries a fault plan, so a
/// fault-free run does no extra cloning and records no extra events.
pub fn train_model<M: TrainableModel>(
    eng: &mut Engine,
    ds: &Dataset,
    cfg: TrainConfig,
    model: M,
) -> TrainResult {
    train_model_returning(eng, ds, cfg, model).1
}

/// [`train_model`] that also hands back the trained parameters — the entry
/// point for callers that freeze the model afterwards (e.g. a serving
/// session).
pub fn train_model_returning<M: TrainableModel>(
    eng: &mut Engine,
    ds: &Dataset,
    cfg: TrainConfig,
    mut model: M,
) -> (M, TrainResult) {
    let mut adam = Adam::new(cfg.lr);
    let mut epochs = Vec::with_capacity(cfg.epochs as usize);
    let mut epochs_rolled_back = 0u32;
    let resilient = eng.fault_plan().is_some();
    for epoch in 0..cfg.epochs {
        let checkpoint = if resilient {
            Some((model.clone(), adam.clone()))
        } else {
            None
        };
        prof_begin_epoch(eng, epoch);
        let mut attempt = run_epoch(eng, ds, &mut model, &mut adam);
        if attempt.poisoned {
            if let Some((m0, a0)) = checkpoint {
                // Discard the contaminated epoch's state and replay it on
                // the CUDA-core fallback path with injection suppressed;
                // RNG draws are untouched, so later epochs see the exact
                // fault schedule they would have seen anyway.
                model = m0;
                adam = a0;
                epochs_rolled_back += 1;
                let wasted = attempt.cost;
                eng.set_forced_fallback(true);
                attempt = run_epoch(eng, ds, &mut model, &mut adam);
                eng.set_forced_fallback(false);
                attempt.cost += wasted;
            }
        }
        prof_finish_epoch(eng);
        epochs.push(EpochStats {
            loss: attempt.loss,
            train_accuracy: attempt.accuracy,
            cost: attempt.cost,
        });
    }
    let result = TrainResult {
        backend: eng.backend().name(),
        epochs,
        preprocessing_ms: eng.preprocessing_ms(),
        fault_report: eng.fault_report(),
        epochs_rolled_back,
    };
    (model, result)
}

/// Trains the paper's 2-layer GCN on `ds` using `eng`'s backend.
pub fn train_gcn(eng: &mut Engine, ds: &Dataset, cfg: TrainConfig) -> TrainResult {
    let model = GcnModel::new(ds.spec.feat_dim, cfg.hidden, ds.spec.num_classes, cfg.seed);
    train_model(eng, ds, cfg, model)
}

/// Trains the paper's 4-layer AGNN on `ds` using `eng`'s backend.
pub fn train_agnn(eng: &mut Engine, ds: &Dataset, cfg: TrainConfig) -> TrainResult {
    let model = AgnnModel::new(
        ds.spec.feat_dim,
        cfg.hidden,
        ds.spec.num_classes,
        cfg.layers,
        cfg.seed,
    );
    train_model(eng, ds, cfg, model)
}

/// Trains a 2-layer GraphSAGE (mean aggregator) on `ds`.
pub fn train_sage(eng: &mut Engine, ds: &Dataset, cfg: TrainConfig) -> TrainResult {
    let model = SageModel::new(ds.spec.feat_dim, cfg.hidden, ds.spec.num_classes, cfg.seed);
    train_model(eng, ds, cfg, model)
}

/// Trains a 2-layer GIN on `ds`.
pub fn train_gin(eng: &mut Engine, ds: &Dataset, cfg: TrainConfig) -> TrainResult {
    let model = GinModel::new(ds.spec.feat_dim, cfg.hidden, ds.spec.num_classes, cfg.seed);
    train_model(eng, ds, cfg, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Backend;
    use tcg_gpusim::DeviceSpec;
    use tcg_graph::datasets::{DatasetSpec, GraphClass};

    fn tiny_dataset() -> Dataset {
        DatasetSpec {
            name: "tiny-cora",
            class: GraphClass::TypeI,
            num_nodes: 300,
            num_edges: 2400,
            feat_dim: 32,
            num_classes: 4,
        }
        .materialize(7)
        .unwrap()
    }

    #[test]
    fn gcn_training_learns() {
        let ds = tiny_dataset();
        let mut eng = Engine::builder(ds.graph.clone())
            .backend(Backend::TcGnn)
            .device(DeviceSpec::rtx3090())
            .build()
            .expect("graph is symmetric");
        let cfg = TrainConfig {
            hidden: 16,
            layers: 2,
            epochs: 30,
            lr: 0.02,
            seed: 1,
        };
        let result = train_gcn(&mut eng, &ds, cfg);
        assert!(
            result.loss_drop() > 0.1,
            "loss should fall: {:?}",
            result.loss_drop()
        );
        assert!(
            result.final_accuracy() > 1.5 / 4.0,
            "accuracy above chance: {}",
            result.final_accuracy()
        );
        assert!(result.avg_epoch_ms() > 0.0);
        assert!(result.aggregation_fraction() > 0.0);
    }

    #[test]
    fn agnn_training_learns() {
        let ds = tiny_dataset();
        let mut eng = Engine::builder(ds.graph.clone())
            .backend(Backend::DglLike)
            .device(DeviceSpec::rtx3090())
            .build()
            .expect("graph is symmetric");
        let cfg = TrainConfig {
            hidden: 16,
            layers: 2,
            epochs: 25,
            lr: 0.02,
            seed: 2,
        };
        let result = train_agnn(&mut eng, &ds, cfg);
        assert!(
            result.loss_drop() > 0.05,
            "loss drop {}",
            result.loss_drop()
        );
        assert!(result.final_accuracy() > 1.2 / 4.0);
    }

    #[test]
    fn backends_converge_to_similar_losses() {
        let ds = tiny_dataset();
        let cfg = TrainConfig {
            hidden: 8,
            layers: 2,
            epochs: 10,
            lr: 0.02,
            seed: 3,
        };
        let mut losses = Vec::new();
        for b in Backend::all() {
            let mut eng = Engine::builder(ds.graph.clone())
                .backend(b)
                .device(DeviceSpec::rtx3090())
                .build()
                .expect("graph is symmetric");
            let r = train_gcn(&mut eng, &ds, cfg);
            losses.push(r.epochs.last().unwrap().loss);
        }
        for l in &losses[1..] {
            assert!(
                (l - losses[0]).abs() < 0.05,
                "backends should train identically: {losses:?}"
            );
        }
    }

    #[test]
    fn aggregation_dominates_epoch_time() {
        // Table 1's headline: aggregation takes the majority of GCN epoch
        // time even though Type I feature dims are large — measured at Cora
        // scale (scaled 2× down to keep the test fast).
        let ds = tcg_graph::datasets::spec_by_name("Cora")
            .unwrap()
            .scaled(2)
            .materialize(11)
            .unwrap();
        let mut eng = Engine::builder(ds.graph.clone())
            .backend(Backend::DglLike)
            .device(DeviceSpec::rtx3090())
            .build()
            .expect("graph is symmetric");
        let r = train_gcn(&mut eng, &ds, TrainConfig::gcn_paper().with_epochs(2));
        assert!(
            r.aggregation_fraction() > 0.4,
            "aggregation fraction {}",
            r.aggregation_fraction()
        );
    }

    #[test]
    fn sage_and_gin_training_learn() {
        let ds = tiny_dataset();
        let cfg = TrainConfig {
            hidden: 16,
            layers: 2,
            epochs: 30,
            lr: 0.02,
            seed: 9,
        };
        let mut eng = Engine::builder(ds.graph.clone())
            .backend(Backend::TcGnn)
            .device(DeviceSpec::rtx3090())
            .build()
            .expect("graph is symmetric");
        let sage = train_sage(&mut eng, &ds, cfg);
        assert!(
            sage.loss_drop() > 0.1,
            "sage loss drop {}",
            sage.loss_drop()
        );
        assert!(sage.final_accuracy() > 1.5 / 4.0);
        let mut eng = Engine::builder(ds.graph.clone())
            .backend(Backend::DglLike)
            .device(DeviceSpec::rtx3090())
            .build()
            .expect("graph is symmetric");
        let gin = train_gin(&mut eng, &ds, cfg);
        assert!(gin.loss_drop() > 0.1, "gin loss drop {}", gin.loss_drop());
        assert!(gin.final_accuracy() > 1.5 / 4.0);
    }

    #[test]
    fn resilient_training_rolls_back_poisoned_epochs() {
        use crate::engine::RecoveryPolicy;
        use tcg_fault::{FaultConfig, FaultPlan};
        let ds = tiny_dataset();
        let cfg = TrainConfig {
            hidden: 16,
            layers: 2,
            epochs: 8,
            lr: 0.02,
            seed: 4,
        };
        let run = || {
            let mut eng = Engine::builder(ds.graph.clone())
                .backend(Backend::TcGnn)
                .device(DeviceSpec::rtx3090())
                .build()
                .expect("graph is symmetric");
            eng.attach_fault_plan(FaultPlan::new(
                13,
                FaultConfig {
                    ecc_rate: 0.4,
                    ..FaultConfig::none()
                },
            ));
            // Scan off: flips reach the trainer as NaN, exercising the
            // checkpoint/rollback path rather than the engine's fallback.
            eng.set_recovery_policy(RecoveryPolicy {
                ecc_scan: false,
                ..RecoveryPolicy::default()
            });
            train_gcn(&mut eng, &ds, cfg)
        };
        let r1 = run();
        assert!(
            r1.epochs_rolled_back > 0,
            "expected poisoned epochs at ecc_rate 0.4: {:?}",
            r1.fault_report
        );
        // Replayed epochs land on the fallback path, so every recorded
        // loss is finite and parameters were never contaminated.
        assert!(r1.epochs.iter().all(|e| e.loss.is_finite()));
        assert!(r1.loss_drop() > 0.0, "training still learns under faults");
        // The whole fault trajectory is deterministic.
        let r2 = run();
        assert_eq!(r1.epochs_rolled_back, r2.epochs_rolled_back);
        assert_eq!(r1.fault_report, r2.fault_report);
        for (a, b) in r1.epochs.iter().zip(&r2.epochs) {
            assert_eq!(a.loss, b.loss);
        }
    }

    #[test]
    fn fault_free_run_reports_zero_faults() {
        let ds = tiny_dataset();
        let mut eng = Engine::builder(ds.graph.clone())
            .backend(Backend::TcGnn)
            .device(DeviceSpec::rtx3090())
            .build()
            .expect("graph is symmetric");
        let r = train_gcn(&mut eng, &ds, TrainConfig::gcn_paper().with_epochs(2));
        assert_eq!(r.fault_report.total_injected(), 0);
        assert_eq!(r.fault_report.retried, 0);
        assert_eq!(r.fault_report.degraded, 0);
        assert_eq!(r.epochs_rolled_back, 0);
    }

    #[test]
    fn tcgnn_not_slower_than_dgl_per_epoch() {
        let ds = tiny_dataset();
        let cfg = TrainConfig::gcn_paper().with_epochs(2);
        let mut e1 = Engine::builder(ds.graph.clone())
            .backend(Backend::DglLike)
            .device(DeviceSpec::rtx3090())
            .build()
            .expect("graph is symmetric");
        let dgl = train_gcn(&mut e1, &ds, cfg);
        let mut e2 = Engine::builder(ds.graph.clone())
            .backend(Backend::TcGnn)
            .device(DeviceSpec::rtx3090())
            .build()
            .expect("graph is symmetric");
        let tc = train_gcn(&mut e2, &ds, cfg);
        assert!(
            tc.avg_epoch_ms() < dgl.avg_epoch_ms(),
            "TC-GNN {} ms vs DGL {} ms",
            tc.avg_epoch_ms(),
            dgl.avg_epoch_ms()
        );
    }
}
