//! End-to-end GNN framework over the simulated GPU — the paper's
//! "framework level".
//!
//! The paper integrates TC-GNN into PyTorch and compares end-to-end
//! *training* against DGL and PyTorch-Geometric (its Figure 6). This crate
//! plays the PyTorch role: [`engine::Engine`] binds a graph to one of three
//! aggregation backends —
//!
//! - [`engine::Backend::DglLike`]: cuSPARSE-class CSR SpMM / per-edge SDDMM
//!   plus DGL's framework behaviour (runtime degree-normalization passes,
//!   three-kernel edge softmax);
//! - [`engine::Backend::PygLike`]: torch-scatter aggregation (edge-parallel
//!   atomics) plus PyG's materialization of per-edge feature intermediates;
//! - [`engine::Backend::TcGnn`]: the paper's kernels over a one-time SGT
//!   translation, normalization folded into edge values, fused edge softmax.
//!
//! On top of the engine sit [`layers`] (GCN and AGNN with hand-derived
//! backward passes, verified against finite differences in the tests),
//! [`loss`], [`optim::Adam`], and [`trainer`] which runs full training
//! loops and attributes simulated GPU milliseconds to the aggregation /
//! update / other phases — the split behind the paper's Table 1 and the
//! end-to-end numbers behind Figure 6.

pub mod engine;
pub mod forward;
pub mod layers;
pub mod loss;
pub mod model;
pub mod optim;
pub mod trainer;

pub use engine::{Backend, Cost, Engine, EngineBuilder, RecoveryPolicy};
pub use forward::{Forward, Layer};
pub use model::{AgnnModel, GcnModel, GinModel, SageModel};
pub use trainer::{
    train_agnn, train_gcn, train_gin, train_model, train_model_returning, train_sage, TrainConfig,
    TrainResult, TrainableModel,
};
