//! Graph (de)serialization: JSON snapshots, SNAP-style edge lists, and
//! MatrixMarket files.
//!
//! JSON carries graph topology for experiment reproducibility. The text
//! formats let the library consume *real* datasets — the paper's Type III
//! graphs are all published as SNAP edge lists, and graph-kernel datasets
//! commonly ship as MatrixMarket — so a user with the originals can swap
//! out the synthetic stand-ins. Feature matrices are never serialized with
//! graphs (they can be hundreds of megabytes and are regenerated
//! deterministically from `(spec, seed)`).

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::{CooGraph, CsrGraph, GraphError, NodeId, Result};

/// Ceiling on the node count a text loader will materialize. A single
/// corrupted id (one flipped high bit in `src dst`) would otherwise make
/// `max id + 1` allocate hundreds of gigabytes before any structural
/// validation runs; past this bound the file is treated as malformed.
const MAX_TEXT_NODES: usize = 1 << 28;

/// Saves a CSR graph as JSON.
pub fn save_csr(graph: &CsrGraph, path: &Path) -> Result<()> {
    let file = File::create(path)?;
    serde_json::to_writer(BufWriter::new(file), graph)?;
    Ok(())
}

/// Loads a CSR graph from JSON and re-validates its invariants.
pub fn load_csr(path: &Path) -> Result<CsrGraph> {
    let file = File::open(path)?;
    let g: CsrGraph = serde_json::from_reader(BufReader::new(file))?;
    // Serde restores fields blindly; re-run the structural validation so a
    // hand-edited file cannot smuggle a malformed graph into the kernels.
    CsrGraph::from_raw(
        g.num_nodes(),
        g.node_pointer().to_vec(),
        g.edge_list().to_vec(),
    )
}

/// Loads a SNAP-style edge list: one `src dst` pair per line, `#`- or `%`-
/// prefixed comment lines ignored, node ids zero-based.
///
/// The node count is `max id + 1`. With `symmetrize`, the reverse of every
/// edge is added (SNAP graphs are directed crawls; GNN training uses the
/// undirected version, as the paper does). Self loops and duplicate edges
/// are removed either way.
pub fn load_edge_list(path: &Path, symmetrize: bool) -> Result<CsrGraph> {
    let file = File::open(path)?;
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
    let mut max_id: u64 = 0;
    for (lineno, line) in BufReader::new(file).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u64> {
            tok.and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| GraphError::Io {
                    message: format!("malformed edge at line {}", lineno + 1),
                })
        };
        let a = parse(it.next())?;
        let b = parse(it.next())?;
        if a > u64::from(NodeId::MAX) || b > u64::from(NodeId::MAX) {
            return Err(GraphError::Io {
                message: format!("node id too large at line {}", lineno + 1),
            });
        }
        max_id = max_id.max(a).max(b);
        if a != b {
            pairs.push((a as NodeId, b as NodeId));
        }
    }
    let n = if pairs.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    if n > MAX_TEXT_NODES {
        return Err(GraphError::Io {
            message: format!("node id {max_id} exceeds the loader bound of {MAX_TEXT_NODES} nodes"),
        });
    }
    let mut coo = CooGraph::new(n);
    for (a, b) in pairs {
        coo.push_edge(a, b);
    }
    if symmetrize {
        coo.symmetrize();
    }
    coo.into_csr()
}

/// Writes a graph as a SNAP-style edge list (with a header comment).
pub fn save_edge_list(graph: &CsrGraph, path: &Path) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(
        w,
        "# Nodes: {} Edges: {}",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for (s, d) in graph.iter_edges() {
        writeln!(w, "{s}\t{d}")?;
    }
    Ok(())
}

/// Loads a MatrixMarket `coordinate` file as a graph (1-based indices;
/// `pattern` or `real` fields; `general` or `symmetric` layouts).
///
/// Values of `real` entries are discarded — the adjacency structure is what
/// GNN aggregation consumes; weights belong to the runtime edge-value
/// arrays.
pub fn load_matrix_market(path: &Path) -> Result<CsrGraph> {
    let file = File::open(path)?;
    let mut lines = BufReader::new(file).lines();

    let header = lines.next().transpose()?.unwrap_or_default();
    if !header.starts_with("%%MatrixMarket") {
        return Err(GraphError::Io {
            message: "missing MatrixMarket header".into(),
        });
    }
    let lower = header.to_ascii_lowercase();
    if !lower.contains("coordinate") {
        return Err(GraphError::Io {
            message: "only coordinate-format MatrixMarket is supported".into(),
        });
    }
    let symmetric = lower.contains("symmetric");

    // Skip comments, read the size line.
    let mut size_line = String::new();
    for line in lines.by_ref() {
        let line = line?;
        if !line.trim_start().starts_with('%') && !line.trim().is_empty() {
            size_line = line;
            break;
        }
    }
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .filter_map(|t| t.parse().ok())
        .collect();
    if dims.len() < 3 {
        return Err(GraphError::Io {
            message: "malformed MatrixMarket size line".into(),
        });
    }
    let n = dims[0].max(dims[1]);
    if n > MAX_TEXT_NODES {
        return Err(GraphError::Io {
            message: format!(
                "size line declares {n} nodes, above the loader bound of {MAX_TEXT_NODES}"
            ),
        });
    }
    let declared_nnz = dims[2];

    let mut coo = CooGraph::new(n);
    let mut entries = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (a, b) = match (
            it.next().and_then(|s| s.parse::<usize>().ok()),
            it.next().and_then(|s| s.parse::<usize>().ok()),
        ) {
            (Some(a), Some(b)) if a >= 1 && b >= 1 && a <= n && b <= n => (a - 1, b - 1),
            _ => {
                return Err(GraphError::Io {
                    message: format!("malformed MatrixMarket entry: {t}"),
                })
            }
        };
        entries += 1;
        if a != b {
            coo.push_edge(a as NodeId, b as NodeId);
            if symmetric {
                coo.push_edge(b as NodeId, a as NodeId);
            }
        }
    }
    // A truncated download silently drops trailing entry lines; the size
    // line is the ground truth, so any disagreement means a damaged file.
    if entries != declared_nnz {
        return Err(GraphError::Io {
            message: format!("size line declares {declared_nnz} entries, file has {entries}"),
        });
    }
    coo.into_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tcg_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = gen::erdos_renyi(200, 1500, 5).unwrap();
        let path = tmp("g.json");
        save_csr(&g, &path).unwrap();
        let g2 = load_csr(&path).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_tampered_file() {
        let path = tmp("bad.json");
        // node_pointer claims 2 edges but edge_list has 1: must be rejected.
        std::fs::write(
            &path,
            r#"{"num_nodes":2,"node_pointer":[0,2,2],"edge_list":[1]}"#,
        )
        .unwrap();
        assert!(load_csr(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_csr(Path::new("/nonexistent/graph.json")).is_err());
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = gen::rmat_default(128, 1000, 6).unwrap();
        let path = tmp("g.txt");
        save_edge_list(&g, &path).unwrap();
        let g2 = load_edge_list(&path, false).unwrap();
        // Node count can differ if the max id is isolated; edges must match.
        let e1: Vec<_> = g.iter_edges().collect();
        let e2: Vec<_> = g2.iter_edges().collect();
        assert_eq!(e1, e2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn edge_list_parses_comments_and_symmetrizes() {
        let path = tmp("snap.txt");
        std::fs::write(&path, "# SNAP header\n% other comment\n0 1\n1\t2\n2 2\n").unwrap();
        let g = load_edge_list(&path, true).unwrap();
        assert_eq!(g.num_nodes(), 3);
        // (0,1),(1,0),(1,2),(2,1); self loop (2,2) dropped.
        assert_eq!(g.num_edges(), 4);
        assert!(g.is_symmetric());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn edge_list_rejects_garbage() {
        let path = tmp("garbage.txt");
        std::fs::write(&path, "0 1\nfoo bar\n").unwrap();
        assert!(load_edge_list(&path, false).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn matrix_market_general_and_symmetric() {
        let path = tmp("m.mtx");
        std::fs::write(
            &path,
            "%%MatrixMarket matrix coordinate pattern symmetric\n% comment\n4 4 3\n1 2\n3 4\n2 2\n",
        )
        .unwrap();
        let g = load_matrix_market(&path).unwrap();
        assert_eq!(g.num_nodes(), 4);
        // (0,1),(1,0),(2,3),(3,2); diagonal (2,2) dropped.
        assert_eq!(g.num_edges(), 4);
        assert!(g.is_symmetric());
        std::fs::remove_file(&path).ok();

        let path2 = tmp("m2.mtx");
        std::fs::write(
            &path2,
            "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 2 0.5\n2 3 1.5\n",
        )
        .unwrap();
        let g2 = load_matrix_market(&path2).unwrap();
        assert_eq!(g2.num_edges(), 2);
        assert!(!g2.is_symmetric());
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn matrix_market_rejects_bad_files() {
        let path = tmp("bad.mtx");
        std::fs::write(&path, "not a header\n3 3 1\n1 2\n").unwrap();
        assert!(load_matrix_market(&path).is_err());
        std::fs::write(
            &path,
            "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n9 9\n",
        )
        .unwrap();
        assert!(load_matrix_market(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn edge_list_rejects_absurd_node_id() {
        // One flipped high bit in an id must not trigger a multi-gigabyte
        // allocation; the loader reports the file as malformed instead.
        let path = tmp("bigid.txt");
        std::fs::write(&path, "0 1\n2 1099511627776\n").unwrap();
        let err = load_edge_list(&path, false).unwrap_err();
        assert!(matches!(err, GraphError::Io { .. }), "got {err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn matrix_market_rejects_truncated_file() {
        // Size line promises 4 entries, the file was cut off after 2.
        let path = tmp("trunc.mtx");
        std::fs::write(
            &path,
            "%%MatrixMarket matrix coordinate pattern general\n5 5 4\n1 2\n2 3\n",
        )
        .unwrap();
        let err = load_matrix_market(&path).unwrap_err();
        match err {
            GraphError::Io { message } => {
                assert!(message.contains("declares 4"), "{message}")
            }
            other => panic!("expected Io error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn matrix_market_rejects_absurd_dims() {
        let path = tmp("bigdims.mtx");
        std::fs::write(
            &path,
            "%%MatrixMarket matrix coordinate pattern general\n999999999999 3 1\n1 2\n",
        )
        .unwrap();
        assert!(load_matrix_market(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_edge_list_gives_empty_graph() {
        let path = tmp("empty.txt");
        std::fs::write(&path, "# nothing here\n").unwrap();
        let g = load_edge_list(&path, true).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        std::fs::remove_file(&path).ok();
    }
}
