//! Error types for graph construction and validation.

use std::fmt;

/// Errors produced while building or validating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referenced a node id `>= num_nodes`.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// The declared node count.
        num_nodes: usize,
    },
    /// A CSR `node_pointer` array was malformed (wrong length, non-monotone,
    /// or final entry not equal to the edge count).
    MalformedNodePointer {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The adjacency rows were required to be sorted but were not.
    UnsortedRow {
        /// Row (source node) where the violation was found.
        row: usize,
    },
    /// A duplicate edge was found where duplicates are disallowed.
    DuplicateEdge {
        /// Source node.
        src: u32,
        /// Destination node.
        dst: u32,
    },
    /// Dataset materialization was asked for an unknown dataset name.
    UnknownDataset {
        /// The name that failed to resolve.
        name: String,
    },
    /// An IO or serialization failure while loading/saving a graph.
    Io {
        /// Underlying error message.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node id {node} out of range for {num_nodes} nodes")
            }
            GraphError::MalformedNodePointer { reason } => {
                write!(f, "malformed node_pointer: {reason}")
            }
            GraphError::UnsortedRow { row } => {
                write!(f, "adjacency row {row} is not sorted")
            }
            GraphError::DuplicateEdge { src, dst } => {
                write!(f, "duplicate edge ({src}, {dst})")
            }
            GraphError::UnknownDataset { name } => {
                write!(f, "unknown dataset: {name}")
            }
            GraphError::Io { message } => write!(f, "io error: {message}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io {
            message: e.to_string(),
        }
    }
}

impl From<serde_json::Error> for GraphError {
    fn from(e: serde_json::Error) -> Self {
        GraphError::Io {
            message: e.to_string(),
        }
    }
}
