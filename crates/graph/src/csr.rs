//! Compressed Sparse Row graph — the paper's `nodePointer` / `edgeList`.

use serde::{Deserialize, Serialize};

use crate::{GraphError, NodeId, Result};

/// Typed content hash of a [`CsrGraph`] — the value returned by
/// [`CsrGraph::fingerprint`].
///
/// Wrapping the raw FNV-1a word in a newtype keeps translation-cache keys,
/// serve-report stamps, and trace metadata from being confused with other
/// `u64`s (edge counts, seeds, checksums). Two graphs share a version iff
/// their CSR arrays are identical.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct GraphVersion {
    raw: u64,
}

impl GraphVersion {
    /// Wraps a raw hash word (for tests and deserialized reports).
    pub fn from_u64(raw: u64) -> Self {
        GraphVersion { raw }
    }

    /// The raw 64-bit hash, for serialization into reports and traces.
    pub fn as_u64(self) -> u64 {
        self.raw
    }
}

impl std::fmt::Display for GraphVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.raw)
    }
}

/// A graph in CSR format.
///
/// `node_pointer` has `num_nodes + 1` entries; the neighbors of node `v`
/// are `edge_list[node_pointer[v] .. node_pointer[v + 1]]`, sorted
/// ascending with no duplicates. This is the exact structure the paper's
/// Algorithm 1 consumes (`nodePointer`, `edgeList`) and every kernel in
/// `tcg-kernels` reads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    num_nodes: usize,
    node_pointer: Vec<usize>,
    edge_list: Vec<NodeId>,
}

impl CsrGraph {
    /// Builds a CSR graph from raw arrays, validating all invariants.
    ///
    /// Invariants checked:
    /// - `node_pointer.len() == num_nodes + 1`, starts at 0, monotone
    ///   non-decreasing, ends at `edge_list.len()`;
    /// - every neighbor id is `< num_nodes`;
    /// - each row is strictly ascending (sorted, duplicate-free).
    pub fn from_raw(
        num_nodes: usize,
        node_pointer: Vec<usize>,
        edge_list: Vec<NodeId>,
    ) -> Result<Self> {
        if node_pointer.len() != num_nodes + 1 {
            return Err(GraphError::MalformedNodePointer {
                reason: format!(
                    "length {} != num_nodes + 1 = {}",
                    node_pointer.len(),
                    num_nodes + 1
                ),
            });
        }
        if node_pointer.first() != Some(&0) {
            return Err(GraphError::MalformedNodePointer {
                reason: "first entry must be 0".into(),
            });
        }
        if *node_pointer.last().expect("non-empty") != edge_list.len() {
            return Err(GraphError::MalformedNodePointer {
                reason: format!(
                    "last entry {} != edge count {}",
                    node_pointer.last().unwrap(),
                    edge_list.len()
                ),
            });
        }
        for w in node_pointer.windows(2) {
            if w[1] < w[0] {
                return Err(GraphError::MalformedNodePointer {
                    reason: "non-monotone".into(),
                });
            }
        }
        let g = CsrGraph {
            num_nodes,
            node_pointer,
            edge_list,
        };
        for v in 0..num_nodes {
            let row = g.neighbors(v);
            for &u in row {
                if u as usize >= num_nodes {
                    return Err(GraphError::NodeOutOfRange { node: u, num_nodes });
                }
            }
            for w in row.windows(2) {
                if w[1] <= w[0] {
                    return Err(if w[1] == w[0] {
                        GraphError::DuplicateEdge {
                            src: v as NodeId,
                            dst: w[0],
                        }
                    } else {
                        GraphError::UnsortedRow { row: v }
                    });
                }
            }
        }
        Ok(g)
    }

    /// Builds CSR from a `(src, dst)` list already sorted by `(src, dst)`
    /// with duplicates removed (what [`crate::CooGraph::into_csr`] provides).
    pub fn from_sorted_coo(num_nodes: usize, src: &[NodeId], dst: &[NodeId]) -> Result<Self> {
        let mut node_pointer = vec![0usize; num_nodes + 1];
        for &s in src {
            if s as usize >= num_nodes {
                return Err(GraphError::NodeOutOfRange { node: s, num_nodes });
            }
            node_pointer[s as usize + 1] += 1;
        }
        for i in 0..num_nodes {
            node_pointer[i + 1] += node_pointer[i];
        }
        Self::from_raw(num_nodes, node_pointer, dst.to_vec())
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges (non-zeros of the adjacency matrix).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edge_list.len()
    }

    /// The row pointer array (`nodePointer` in the paper).
    #[inline]
    pub fn node_pointer(&self) -> &[usize] {
        &self.node_pointer
    }

    /// The concatenated neighbor lists (`edgeList` in the paper).
    #[inline]
    pub fn edge_list(&self) -> &[NodeId] {
        &self.edge_list
    }

    /// Neighbors of node `v` (sorted ascending).
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[NodeId] {
        &self.edge_list[self.node_pointer[v]..self.node_pointer[v + 1]]
    }

    /// Out-degree of node `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.node_pointer[v + 1] - self.node_pointer[v]
    }

    /// Yields `(src, dst)` for every edge, row by row.
    pub fn iter_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes)
            .flat_map(move |v| self.neighbors(v).iter().map(move |&u| (v as NodeId, u)))
    }

    /// Returns the transposed graph (reverse of every edge).
    ///
    /// Needed for backward passes: if aggregation uses `A`, its gradient
    /// uses `Aᵀ`. For symmetrized graphs this is equal to `self`.
    pub fn transpose(&self) -> CsrGraph {
        let mut counts = vec![0usize; self.num_nodes + 1];
        for &d in &self.edge_list {
            counts[d as usize + 1] += 1;
        }
        for i in 0..self.num_nodes {
            counts[i + 1] += counts[i];
        }
        let node_pointer = counts.clone();
        let mut cursor = counts;
        let mut edge_list = vec![0 as NodeId; self.edge_list.len()];
        for v in 0..self.num_nodes {
            for &u in self.neighbors(v) {
                edge_list[cursor[u as usize]] = v as NodeId;
                cursor[u as usize] += 1;
            }
        }
        // Rows come out sorted because we scan sources in ascending order.
        CsrGraph {
            num_nodes: self.num_nodes,
            node_pointer,
            edge_list,
        }
    }

    /// Transposes the graph together with a per-edge value array, returning
    /// the transposed graph and the values realigned to its edge order.
    ///
    /// Needed by backward passes over *weighted* aggregation (AGNN's
    /// attention matrix is not symmetric even on a symmetric graph).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.num_edges()`.
    pub fn transpose_with_values(&self, values: &[f32]) -> (CsrGraph, Vec<f32>) {
        assert_eq!(values.len(), self.num_edges());
        let mut counts = vec![0usize; self.num_nodes + 1];
        for &d in &self.edge_list {
            counts[d as usize + 1] += 1;
        }
        for i in 0..self.num_nodes {
            counts[i + 1] += counts[i];
        }
        let node_pointer = counts.clone();
        let mut cursor = counts;
        let mut edge_list = vec![0 as NodeId; self.edge_list.len()];
        let mut out_vals = vec![0.0f32; values.len()];
        let mut e = 0usize;
        for v in 0..self.num_nodes {
            for &u in self.neighbors(v) {
                let slot = cursor[u as usize];
                edge_list[slot] = v as NodeId;
                out_vals[slot] = values[e];
                cursor[u as usize] += 1;
                e += 1;
            }
        }
        (
            CsrGraph {
                num_nodes: self.num_nodes,
                node_pointer,
                edge_list,
            },
            out_vals,
        )
    }

    /// Edge permutation realizing the transpose: `perm[i]` is the index in
    /// `self`'s edge order of the `i`-th edge of `self.transpose()`.
    ///
    /// Lets per-epoch edge values be realigned for `Aᵀ` aggregation with a
    /// single gather (`vals_t[i] = vals[perm[i]]`) instead of rebuilding the
    /// transposed graph each time.
    pub fn transpose_permutation(&self) -> Vec<u32> {
        let mut counts = vec![0usize; self.num_nodes + 1];
        for &d in &self.edge_list {
            counts[d as usize + 1] += 1;
        }
        for i in 0..self.num_nodes {
            counts[i + 1] += counts[i];
        }
        let mut cursor = counts;
        let mut perm = vec![0u32; self.edge_list.len()];
        let mut e = 0usize;
        for v in 0..self.num_nodes {
            for &u in self.neighbors(v) {
                perm[cursor[u as usize]] = e as u32;
                cursor[u as usize] += 1;
                e += 1;
            }
        }
        perm
    }

    /// True if the edge set is symmetric (`(u,v)` present iff `(v,u)`).
    pub fn is_symmetric(&self) -> bool {
        let t = self.transpose();
        self.node_pointer == t.node_pointer && self.edge_list == t.edge_list
    }

    /// Checks whether edge `(v, u)` exists (binary search on the row).
    pub fn has_edge(&self, v: usize, u: NodeId) -> bool {
        self.neighbors(v).binary_search(&u).is_ok()
    }

    /// GCN symmetric normalization values `1 / sqrt(d_src * d_dst)` per edge,
    /// aligned with `edge_list` order (`D^{-1/2} A D^{-1/2}`).
    ///
    /// Degrees of isolated endpoints are clamped to 1 so values stay finite.
    pub fn gcn_norm_edge_values(&self) -> Vec<f32> {
        let deg: Vec<f32> = (0..self.num_nodes)
            .map(|v| self.degree(v).max(1) as f32)
            .collect();
        let mut vals = Vec::with_capacity(self.num_edges());
        for v in 0..self.num_nodes {
            let dv = deg[v];
            for &u in self.neighbors(v) {
                vals.push(1.0 / (dv * deg[u as usize]).sqrt());
            }
        }
        vals
    }

    /// Bytes used by the CSR arrays (for the Table 3 memory-consumption
    /// column).
    pub fn memory_bytes(&self) -> usize {
        self.node_pointer.len() * std::mem::size_of::<usize>()
            + self.edge_list.len() * std::mem::size_of::<NodeId>()
    }

    /// Bytes a dense `N×N` f32 adjacency of this graph would take (Table 2).
    pub fn dense_adjacency_bytes(&self) -> u128 {
        (self.num_nodes as u128) * (self.num_nodes as u128) * 4
    }

    /// Stable content hash over the graph's structure: node count, row
    /// pointers, and column indices, folded through FNV-1a (64-bit).
    ///
    /// Two graphs share a fingerprint iff their CSR arrays are identical, so
    /// the value is a sound cache key for structure-derived artifacts such as
    /// SGT translations. The hash is a pure function of the arrays — no
    /// pointer identity, no randomized hasher state — so it is stable across
    /// processes and runs.
    pub fn fingerprint(&self) -> GraphVersion {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(self.num_nodes as u64);
        for &p in &self.node_pointer {
            eat(p as u64);
        }
        for &u in &self.edge_list {
            eat(u64::from(u));
        }
        GraphVersion { raw: h }
    }

    /// Content hash of one `win_size`-row window: the degrees and neighbor
    /// lists of rows `w * win_size .. min((w + 1) * win_size, num_nodes)`.
    ///
    /// The hash depends only on rows inside the window, never on absolute
    /// edge offsets, so an edit to some other window leaves it unchanged.
    /// That invariance is what lets the serve-side translation cache reuse
    /// per-window SGT state across graph versions.
    ///
    /// # Panics
    ///
    /// Panics if `win_size == 0` or the window is out of range.
    pub fn window_fingerprint(&self, win_size: usize, w: usize) -> u64 {
        assert!(win_size > 0, "window size must be positive");
        let lo = w * win_size;
        assert!(
            lo < self.num_nodes,
            "window {w} out of range for {} nodes (win_size {win_size})",
            self.num_nodes
        );
        let hi = (lo + win_size).min(self.num_nodes);
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(win_size as u64);
        eat((hi - lo) as u64);
        for v in lo..hi {
            eat(self.degree(v) as u64);
            for &u in self.neighbors(v) {
                eat(u64::from(u));
            }
        }
        h
    }

    /// [`Self::window_fingerprint`] for every window, in window order.
    /// Returns `ceil(num_nodes / win_size)` hashes.
    pub fn window_fingerprints(&self, win_size: usize) -> Vec<u64> {
        assert!(win_size > 0, "window size must be positive");
        let windows = self.num_nodes.div_ceil(win_size);
        (0..windows)
            .map(|w| self.window_fingerprint(win_size, w))
            .collect()
    }

    /// Inserts directed edge `(src, dst)`, keeping the row sorted and
    /// duplicate-free. Returns `Ok(true)` if the edge was added, `Ok(false)`
    /// if it was already present, and an error if either endpoint is out of
    /// range. `O(E)` worst case (suffix of `edge_list` shifts right).
    pub fn insert_edge(&mut self, src: NodeId, dst: NodeId) -> Result<bool> {
        let s = src as usize;
        if s >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: src,
                num_nodes: self.num_nodes,
            });
        }
        if dst as usize >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: dst,
                num_nodes: self.num_nodes,
            });
        }
        match self.neighbors(s).binary_search(&dst) {
            Ok(_) => Ok(false),
            Err(i) => {
                self.edge_list.insert(self.node_pointer[s] + i, dst);
                for p in &mut self.node_pointer[s + 1..] {
                    *p += 1;
                }
                Ok(true)
            }
        }
    }

    /// Removes directed edge `(src, dst)`. Returns `Ok(true)` if the edge
    /// existed and was removed, `Ok(false)` if it was absent, and an error
    /// if either endpoint is out of range. `O(E)` worst case.
    pub fn remove_edge(&mut self, src: NodeId, dst: NodeId) -> Result<bool> {
        let s = src as usize;
        if s >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: src,
                num_nodes: self.num_nodes,
            });
        }
        if dst as usize >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: dst,
                num_nodes: self.num_nodes,
            });
        }
        match self.neighbors(s).binary_search(&dst) {
            Ok(i) => {
                self.edge_list.remove(self.node_pointer[s] + i);
                for p in &mut self.node_pointer[s + 1..] {
                    *p -= 1;
                }
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    /// The subgraph induced by the nodes with `keep[v] == true`: kept nodes
    /// are renumbered densely in their original order, and an edge survives
    /// iff both endpoints are kept. Rows stay sorted and duplicate-free, so
    /// the result is always a valid CSR graph; symmetry is preserved.
    ///
    /// This is the primitive the oracle's input shrinker uses to minimize a
    /// failing graph while keeping it well-formed.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != self.num_nodes()`.
    pub fn induced_subgraph(&self, keep: &[bool]) -> CsrGraph {
        assert_eq!(keep.len(), self.num_nodes, "keep mask length mismatch");
        let mut new_id = vec![NodeId::MAX; self.num_nodes];
        let mut n = 0 as NodeId;
        for v in 0..self.num_nodes {
            if keep[v] {
                new_id[v] = n;
                n += 1;
            }
        }
        let mut node_pointer = Vec::with_capacity(n as usize + 1);
        node_pointer.push(0usize);
        let mut edge_list = Vec::new();
        for v in 0..self.num_nodes {
            if !keep[v] {
                continue;
            }
            for &u in self.neighbors(v) {
                if keep[u as usize] {
                    edge_list.push(new_id[u as usize]);
                }
            }
            node_pointer.push(edge_list.len());
        }
        // Remapping is monotone on kept ids, so each row stays sorted.
        CsrGraph {
            num_nodes: n as usize,
            node_pointer,
            edge_list,
        }
    }

    /// The paper's "effective computation" metric: `nnz / N²` (Table 2).
    pub fn effective_compute_ratio(&self) -> f64 {
        if self.num_nodes == 0 {
            return 0.0;
        }
        self.num_edges() as f64 / (self.num_nodes as f64 * self.num_nodes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrGraph {
        // 0 -> 1,2 ; 1 -> 2 ; 2 -> (none) ; 3 -> 0
        CsrGraph::from_raw(4, vec![0, 2, 3, 3, 4], vec![1, 2, 2, 0]).unwrap()
    }

    #[test]
    fn from_raw_validates() {
        // Wrong pointer length.
        assert!(CsrGraph::from_raw(2, vec![0, 1], vec![0]).is_err());
        // First not zero.
        assert!(CsrGraph::from_raw(1, vec![1, 1], vec![]).is_err());
        // Last != edge count.
        assert!(CsrGraph::from_raw(1, vec![0, 2], vec![0]).is_err());
        // Non-monotone.
        assert!(CsrGraph::from_raw(2, vec![0, 1, 0], vec![0]).is_err());
        // Out-of-range neighbor.
        assert!(matches!(
            CsrGraph::from_raw(2, vec![0, 1, 1], vec![5]),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        // Unsorted row.
        assert!(matches!(
            CsrGraph::from_raw(3, vec![0, 2, 2, 2], vec![2, 1]),
            Err(GraphError::UnsortedRow { .. })
        ));
        // Duplicate edge.
        assert!(matches!(
            CsrGraph::from_raw(3, vec![0, 2, 2, 2], vec![1, 1]),
            Err(GraphError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = small();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(2, 0));
    }

    #[test]
    fn iter_edges_complete() {
        let g = small();
        let edges: Vec<_> = g.iter_edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (3, 0)]);
    }

    #[test]
    fn transpose_involution() {
        let g = small();
        let t = g.transpose();
        assert_eq!(t.neighbors(0), &[3]);
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert_eq!(t.transpose(), g);
        assert_eq!(t.num_edges(), g.num_edges());
    }

    #[test]
    fn transpose_with_values_realignment() {
        let g = small();
        let vals = vec![10.0, 20.0, 30.0, 40.0]; // (0,1)=10 (0,2)=20 (1,2)=30 (3,0)=40
        let (t, tv) = g.transpose_with_values(&vals);
        assert_eq!(t, g.transpose());
        // t edges row 0: [3] val 40; row 1: [0] val 10; row 2: [0,1] vals 20,30.
        assert_eq!(tv, vec![40.0, 10.0, 20.0, 30.0]);
    }

    #[test]
    fn transpose_permutation_matches_transpose_with_values() {
        let g = small();
        let vals = vec![10.0, 20.0, 30.0, 40.0];
        let (_, tv) = g.transpose_with_values(&vals);
        let perm = g.transpose_permutation();
        let via_perm: Vec<f32> = perm.iter().map(|&i| vals[i as usize]).collect();
        assert_eq!(tv, via_perm);
    }

    #[test]
    fn symmetry_detection() {
        let g = small();
        assert!(!g.is_symmetric());
        let sym = CsrGraph::from_raw(3, vec![0, 1, 3, 4], vec![1, 0, 2, 1]).unwrap();
        assert!(sym.is_symmetric());
    }

    #[test]
    fn gcn_norm_values() {
        // Symmetric path 0-1-2.
        let g = CsrGraph::from_raw(3, vec![0, 1, 3, 4], vec![1, 0, 2, 1]).unwrap();
        let vals = g.gcn_norm_edge_values();
        // Edge (0,1): 1/sqrt(1*2); edge (1,0): 1/sqrt(2*1); (1,2): 1/sqrt(2*1); (2,1): 1/sqrt(1*2).
        let e = 1.0 / (2.0f32).sqrt();
        for v in vals {
            assert!((v - e).abs() < 1e-6);
        }
    }

    #[test]
    fn metric_helpers() {
        let g = small();
        assert_eq!(g.dense_adjacency_bytes(), 4 * 4 * 4);
        assert!((g.effective_compute_ratio() - 4.0 / 16.0).abs() < 1e-12);
        assert!(g.memory_bytes() > 0);
    }

    #[test]
    fn induced_subgraph_renumbers_and_filters() {
        let g = small(); // edges (0,1) (0,2) (1,2) (3,0)
                         // Drop node 1: survivors 0,2,3 → new ids 0,1,2. Surviving edges:
                         // (0,2)→(0,1) and (3,0)→(2,0).
        let sub = g.induced_subgraph(&[true, false, true, true]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.iter_edges().collect::<Vec<_>>(), vec![(0, 1), (2, 0)]);
        // Keeping everything is the identity.
        assert_eq!(g.induced_subgraph(&[true; 4]), g);
        // Keeping nothing is the empty graph.
        let empty = g.induced_subgraph(&[false; 4]);
        assert_eq!(empty.num_nodes(), 0);
        assert_eq!(empty.num_edges(), 0);
    }

    #[test]
    fn induced_subgraph_preserves_symmetry() {
        let sym = CsrGraph::from_raw(3, vec![0, 1, 3, 4], vec![1, 0, 2, 1]).unwrap();
        assert!(sym.is_symmetric());
        let sub = sym.induced_subgraph(&[true, true, false]);
        assert!(sub.is_symmetric());
        assert_eq!(sub.iter_edges().collect::<Vec<_>>(), vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn fingerprint_is_deterministic_and_content_addressed() {
        let g = small();
        // Stable across calls and across separately constructed copies.
        assert_eq!(g.fingerprint(), g.fingerprint());
        let same = CsrGraph::from_raw(4, vec![0, 2, 3, 3, 4], vec![1, 2, 2, 0]).unwrap();
        assert_eq!(g.fingerprint(), same.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_structure() {
        let g = small();
        // Different edge target.
        let other = CsrGraph::from_raw(4, vec![0, 2, 3, 3, 4], vec![1, 3, 2, 0]).unwrap();
        assert_ne!(g.fingerprint(), other.fingerprint());
        // Same edge list, different row boundaries.
        let shifted = CsrGraph::from_raw(4, vec![0, 2, 2, 3, 4], vec![1, 2, 2, 0]).unwrap();
        assert_ne!(g.fingerprint(), shifted.fingerprint());
        // Extra isolated node changes the node count.
        let padded = CsrGraph::from_raw(5, vec![0, 2, 3, 3, 4, 4], vec![1, 2, 2, 0]).unwrap();
        assert_ne!(g.fingerprint(), padded.fingerprint());
        // Empty graphs of different sizes differ too.
        let e1 = CsrGraph::from_raw(1, vec![0, 0], vec![]).unwrap();
        let e2 = CsrGraph::from_raw(2, vec![0, 0, 0], vec![]).unwrap();
        assert_ne!(e1.fingerprint(), e2.fingerprint());
    }

    #[test]
    fn graph_version_newtype_round_trips() {
        let v = small().fingerprint();
        assert_eq!(GraphVersion::from_u64(v.as_u64()), v);
        assert_eq!(format!("{v}").len(), 16); // zero-padded hex
    }

    #[test]
    fn insert_edge_keeps_rows_sorted_and_deduped() {
        let mut g = small();
        // Already present: no-op.
        assert!(!g.insert_edge(0, 1).unwrap());
        assert_eq!(g.num_edges(), 4);
        // New edge lands in sorted position.
        assert!(g.insert_edge(0, 0).unwrap());
        assert_eq!(g.neighbors(0), &[0, 1, 2]);
        // Later rows shifted, content intact.
        assert_eq!(g.neighbors(1), &[2]);
        assert_eq!(g.neighbors(3), &[0]);
        assert_eq!(
            g,
            CsrGraph::from_raw(4, g.node_pointer().to_vec(), g.edge_list().to_vec()).unwrap()
        );
        // Out-of-range endpoints are typed errors.
        assert!(matches!(
            g.insert_edge(9, 0),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            g.insert_edge(0, 9),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn remove_edge_inverse_of_insert() {
        let mut g = small();
        assert!(g.remove_edge(0, 2).unwrap());
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.num_edges(), 3);
        // Absent edge: no-op.
        assert!(!g.remove_edge(0, 2).unwrap());
        // Round-trip back to the original.
        assert!(g.insert_edge(0, 2).unwrap());
        assert_eq!(g, small());
        assert!(matches!(
            g.remove_edge(9, 0),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn window_fingerprint_is_window_local() {
        // Two windows of 2 rows each.
        let g = small();
        let before = g.window_fingerprints(2);
        assert_eq!(before.len(), 2);
        // Mutate a row in window 1 only.
        let mut h = g.clone();
        h.insert_edge(3, 1).unwrap();
        let after = h.window_fingerprints(2);
        assert_eq!(before[0], after[0], "untouched window hash must not move");
        assert_ne!(before[1], after[1], "touched window hash must move");
        // Whole-graph versions differ even though window 0 matches.
        assert_ne!(g.fingerprint(), h.fingerprint());
        // Ragged last window still hashes.
        let odd = CsrGraph::from_raw(3, vec![0, 1, 3, 4], vec![1, 0, 2, 1]).unwrap();
        assert_eq!(odd.window_fingerprints(2).len(), 2);
        // Empty graph has no windows.
        let empty = CsrGraph::from_raw(0, vec![0], vec![]).unwrap();
        assert!(empty.window_fingerprints(16).is_empty());
    }
}
