//! The paper's Table 4 dataset registry, backed by synthetic generators.
//!
//! Every entry reproduces the published node count, edge count, feature
//! dimension and class count. Structure per class:
//!
//! - **Type I** (Citeseer, Cora, Pubmed, PPI): citation-style preferential
//!   attachment with locality (dense feature dim, few nodes);
//! - **Type II** (PROTEINS_full, OVCAR-8H, Yeast, DD, YeastH): disjoint
//!   unions of small dense components — the PyG graph-kernel collections;
//! - **Type III** (amazon0505, artist, com-amazon, soc-BlogCatalog,
//!   amazon0601): large R-MAT power-law graphs.
//!
//! Features are generated from per-class centroids plus noise and labels are
//! locally correlated, so GNN training on these stand-ins actually learns
//! (integration tests assert above-chance accuracy); this matters because the
//! paper's Figure 6 measures *end-to-end training*.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use tcg_tensor::DenseMatrix;

use crate::{gen, CsrGraph, GraphError, Result};

/// The paper's dataset taxonomy (Table 4's "Type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphClass {
    /// Small citation-style graphs with high-dimensional features.
    TypeI,
    /// Sets of small dense subgraphs, intra-graph edges only.
    TypeII,
    /// Large, highly irregular power-law graphs.
    TypeIII,
}

impl std::fmt::Display for GraphClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphClass::TypeI => write!(f, "I"),
            GraphClass::TypeII => write!(f, "II"),
            GraphClass::TypeIII => write!(f, "III"),
        }
    }
}

/// A Table 4 row: everything needed to materialize a synthetic stand-in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// Structural class.
    pub class: GraphClass,
    /// Target node count (exact).
    pub num_nodes: usize,
    /// Target directed edge count (approximate: generators land within a few
    /// percent after dedup).
    pub num_edges: usize,
    /// Node feature dimension.
    pub feat_dim: usize,
    /// Number of label classes.
    pub num_classes: usize,
}

/// A materialized dataset: graph + features + labels + split masks.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The originating spec.
    pub spec: DatasetSpec,
    /// Symmetric adjacency in CSR.
    pub graph: CsrGraph,
    /// `num_nodes × feat_dim` node features.
    pub features: DenseMatrix,
    /// Per-node class label.
    pub labels: Vec<u32>,
    /// Training-node mask.
    pub train_mask: Vec<bool>,
}

/// All 14 rows of the paper's Table 4.
pub const TABLE4: [DatasetSpec; 14] = [
    DatasetSpec {
        name: "Citeseer",
        class: GraphClass::TypeI,
        num_nodes: 3_327,
        num_edges: 9_464,
        feat_dim: 3_703,
        num_classes: 6,
    },
    DatasetSpec {
        name: "Cora",
        class: GraphClass::TypeI,
        num_nodes: 2_708,
        num_edges: 10_858,
        feat_dim: 1_433,
        num_classes: 7,
    },
    DatasetSpec {
        name: "Pubmed",
        class: GraphClass::TypeI,
        num_nodes: 19_717,
        num_edges: 88_676,
        feat_dim: 500,
        num_classes: 3,
    },
    DatasetSpec {
        name: "PPI",
        class: GraphClass::TypeI,
        num_nodes: 56_944,
        num_edges: 818_716,
        feat_dim: 50,
        num_classes: 121,
    },
    DatasetSpec {
        name: "PROTEINS_full",
        class: GraphClass::TypeII,
        num_nodes: 43_471,
        num_edges: 162_088,
        feat_dim: 29,
        num_classes: 2,
    },
    DatasetSpec {
        name: "OVCAR-8H",
        class: GraphClass::TypeII,
        num_nodes: 1_890_931,
        num_edges: 3_946_402,
        feat_dim: 66,
        num_classes: 2,
    },
    DatasetSpec {
        name: "Yeast",
        class: GraphClass::TypeII,
        num_nodes: 1_714_644,
        num_edges: 3_636_546,
        feat_dim: 74,
        num_classes: 2,
    },
    DatasetSpec {
        name: "DD",
        class: GraphClass::TypeII,
        num_nodes: 334_925,
        num_edges: 1_686_092,
        feat_dim: 89,
        num_classes: 2,
    },
    DatasetSpec {
        name: "YeastH",
        class: GraphClass::TypeII,
        num_nodes: 3_139_988,
        num_edges: 6_487_230,
        feat_dim: 75,
        num_classes: 2,
    },
    DatasetSpec {
        name: "amazon0505",
        class: GraphClass::TypeIII,
        num_nodes: 410_236,
        num_edges: 4_878_875,
        feat_dim: 96,
        num_classes: 22,
    },
    DatasetSpec {
        name: "artist",
        class: GraphClass::TypeIII,
        num_nodes: 50_515,
        num_edges: 1_638_396,
        feat_dim: 100,
        num_classes: 12,
    },
    DatasetSpec {
        name: "com-amazon",
        class: GraphClass::TypeIII,
        num_nodes: 334_863,
        num_edges: 1_851_744,
        feat_dim: 96,
        num_classes: 22,
    },
    DatasetSpec {
        name: "soc-BlogCatalog",
        class: GraphClass::TypeIII,
        num_nodes: 88_784,
        num_edges: 2_093_195,
        feat_dim: 128,
        num_classes: 39,
    },
    DatasetSpec {
        name: "amazon0601",
        class: GraphClass::TypeIII,
        num_nodes: 403_394,
        num_edges: 3_387_388,
        feat_dim: 96,
        num_classes: 22,
    },
];

/// Looks a spec up by its paper name (case-insensitive).
pub fn spec_by_name(name: &str) -> Result<&'static DatasetSpec> {
    TABLE4
        .iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| GraphError::UnknownDataset { name: name.into() })
}

/// The subset the paper's Table 1 profiles (Cora, Citeseer, Pubmed).
pub fn table1_specs() -> Vec<&'static DatasetSpec> {
    ["Cora", "Citeseer", "Pubmed"]
        .iter()
        .map(|n| spec_by_name(n).expect("registry contains Table 1 datasets"))
        .collect()
}

/// The subset the paper's Table 2 inspects (OVCAR-8H, Yeast, DD).
pub fn table2_specs() -> Vec<&'static DatasetSpec> {
    ["OVCAR-8H", "Yeast", "DD"]
        .iter()
        .map(|n| spec_by_name(n).expect("registry contains Table 2 datasets"))
        .collect()
}

/// The Type III subset used by Table 5 / tSparse & Triton comparison.
pub fn type3_specs() -> Vec<&'static DatasetSpec> {
    TABLE4
        .iter()
        .filter(|s| s.class == GraphClass::TypeIII)
        .collect()
}

impl DatasetSpec {
    /// Returns a copy scaled down by `factor` (nodes and edges divided,
    /// feature dim preserved). Used by tests and criterion benches so
    /// wall-clock stays sane on small machines; `factor = 1` is the paper
    /// configuration.
    pub fn scaled(&self, factor: usize) -> DatasetSpec {
        let f = factor.max(1);
        DatasetSpec {
            num_nodes: (self.num_nodes / f).max(64),
            num_edges: (self.num_edges / f).max(256),
            ..self.clone()
        }
    }

    /// Component size bounds for Type II generation: chosen so the average
    /// matches graph-kernel collections (tens of nodes per small graph).
    fn component_bounds(&self) -> (usize, usize) {
        (16, 48)
    }

    /// Generates the graph topology only.
    pub fn generate_graph(&self, seed: u64) -> Result<CsrGraph> {
        match self.class {
            GraphClass::TypeI => gen::citation(self.num_nodes, self.num_edges, seed),
            GraphClass::TypeII => {
                let (lo, hi) = self.component_bounds();
                gen::community(self.num_nodes, self.num_edges, lo, hi, seed)
            }
            GraphClass::TypeIII => gen::rmat_default(self.num_nodes, self.num_edges, seed),
        }
    }

    /// Materializes graph + features + labels + split.
    ///
    /// Labels are assigned from contiguous regions (Type I/III) or generator
    /// components (Type II) with 10% uniform noise; features are class
    /// centroids plus uniform noise so that aggregation over homophilous
    /// neighborhoods is genuinely informative.
    pub fn materialize(&self, seed: u64) -> Result<Dataset> {
        let graph = self.generate_graph(seed)?;
        let n = self.num_nodes;
        let k = self.num_classes.max(2);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_1abe15);

        // Label assignment.
        let mut labels = vec![0u32; n];
        match self.class {
            GraphClass::TypeII => {
                let (lo, hi) = self.component_bounds();
                let starts = gen::community_partition(n, lo, hi, seed);
                for c in 0..starts.len() - 1 {
                    let lab = (c % k) as u32;
                    labels[starts[c]..starts[c + 1]].fill(lab);
                }
            }
            _ => {
                // Regions must be wider than the citation generator's
                // locality window (n/20) for edges to stay homophilous.
                let chunk = (n / (k * 2)).max(1);
                for (v, l) in labels.iter_mut().enumerate() {
                    *l = ((v / chunk) % k) as u32;
                }
            }
        }
        for l in labels.iter_mut() {
            if rng.random::<f64>() < 0.10 {
                *l = rng.random_range(0..k) as u32;
            }
        }

        // Class centroids in feature space; features = centroid + noise.
        let d = self.feat_dim;
        let mut centroids = DenseMatrix::zeros(k, d);
        for c in 0..k {
            for j in 0..d {
                centroids.set(c, j, rng.random_range(-1.0..1.0));
            }
        }
        let mut features = DenseMatrix::zeros(n, d);
        for (v, &lab) in labels.iter().enumerate() {
            let cen = centroids.row(lab as usize).to_vec();
            let row = features.row_mut(v);
            for (j, f) in row.iter_mut().enumerate() {
                *f = 0.6 * cen[j] + rng.random_range(-0.5..0.5);
            }
        }

        // 30% train split, deterministic.
        let train_mask: Vec<bool> = (0..n).map(|_| rng.random::<f64>() < 0.3).collect();

        Ok(Dataset {
            spec: self.clone(),
            graph,
            features,
            labels,
            train_mask,
        })
    }
}

impl Dataset {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Fraction of labeled training nodes.
    pub fn train_fraction(&self) -> f64 {
        self.train_mask.iter().filter(|&&m| m).count() as f64 / self.train_mask.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_paper_counts() {
        assert_eq!(TABLE4.len(), 14);
        let cora = spec_by_name("cora").unwrap();
        assert_eq!(cora.num_nodes, 2708);
        assert_eq!(cora.feat_dim, 1433);
        assert_eq!(cora.num_classes, 7);
        assert!(spec_by_name("nope").is_err());
        assert_eq!(table1_specs().len(), 3);
        assert_eq!(table2_specs().len(), 3);
        assert_eq!(type3_specs().len(), 5);
    }

    #[test]
    fn scaled_reduces_but_keeps_dims() {
        let s = spec_by_name("Pubmed").unwrap().scaled(10);
        assert_eq!(s.num_nodes, 1971);
        assert_eq!(s.feat_dim, 500);
    }

    #[test]
    fn materialize_small_dataset() {
        let spec = spec_by_name("Cora").unwrap().scaled(4);
        let ds = spec.materialize(42).unwrap();
        assert_eq!(ds.num_nodes(), spec.num_nodes);
        assert_eq!(ds.features.shape(), (spec.num_nodes, spec.feat_dim));
        assert_eq!(ds.labels.len(), spec.num_nodes);
        assert!(ds.labels.iter().all(|&l| (l as usize) < spec.num_classes));
        let frac = ds.train_fraction();
        assert!((0.2..0.4).contains(&frac), "train fraction {frac}");
        assert!(ds.graph.is_symmetric());
    }

    #[test]
    fn materialize_is_deterministic() {
        let spec = spec_by_name("Cora").unwrap().scaled(8);
        let a = spec.materialize(1).unwrap();
        let b = spec.materialize(1).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.features, b.features);
    }

    #[test]
    fn type2_labels_constant_within_component() {
        let spec = DatasetSpec {
            name: "mini-kernel",
            class: GraphClass::TypeII,
            num_nodes: 600,
            num_edges: 4000,
            feat_dim: 8,
            num_classes: 2,
        };
        let ds = spec.materialize(5).unwrap();
        // Most edges should connect same-label nodes (10% noise allowed).
        let same = ds
            .graph
            .iter_edges()
            .filter(|&(s, d)| ds.labels[s as usize] == ds.labels[d as usize])
            .count();
        let frac = same as f64 / ds.num_edges() as f64;
        assert!(frac > 0.7, "homophily too low: {frac}");
    }

    #[test]
    fn homophily_holds_for_type1() {
        let spec = spec_by_name("Cora").unwrap().scaled(4);
        let ds = spec.materialize(3).unwrap();
        let same = ds
            .graph
            .iter_edges()
            .filter(|&(s, d)| ds.labels[s as usize] == ds.labels[d as usize])
            .count();
        let frac = same as f64 / ds.num_edges() as f64;
        assert!(frac > 0.4, "citation homophily too low: {frac}");
    }
}
