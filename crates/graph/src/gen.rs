//! Synthetic graph generators.
//!
//! Each generator targets a *directed* non-zero count (`target_edges`, i.e.
//! the nnz of the symmetric adjacency matrix, which is how the paper's
//! Table 4 counts edges) and produces a symmetric, duplicate-free
//! [`CsrGraph`]. The three families map onto the paper's dataset classes:
//!
//! - [`citation`] / [`watts_strogatz`]: Type I — small graphs, skewed degree
//!   distribution with locality (shared neighbors abound, which is what SGT
//!   condenses);
//! - [`community`]: Type II — disjoint small dense subgraphs, intra-graph
//!   edges only (the graph-kernel datasets PyG bundles);
//! - [`rmat`]: Type III — large power-law graphs with highly irregular,
//!   scattered connectivity;
//! - [`erdos_renyi`]: structure-free control used by tests and ablations.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{CooGraph, CsrGraph, NodeId, Result};

/// Collects undirected pairs into a symmetric CSR graph.
fn finish(num_nodes: usize, pairs: Vec<(NodeId, NodeId)>) -> Result<CsrGraph> {
    let mut coo = CooGraph::new(num_nodes);
    for (a, b) in pairs {
        if a != b {
            coo.push_edge(a, b);
        }
    }
    coo.symmetrize();
    coo.into_csr()
}

/// Erdős–Rényi G(n, m): `target_edges / 2` undirected pairs sampled
/// uniformly, then symmetrized.
pub fn erdos_renyi(num_nodes: usize, target_edges: usize, seed: u64) -> Result<CsrGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let want = target_edges / 2;
    let mut pairs = Vec::with_capacity(want);
    for _ in 0..want {
        let a = rng.random_range(0..num_nodes) as NodeId;
        let b = rng.random_range(0..num_nodes) as NodeId;
        pairs.push((a, b));
    }
    finish(num_nodes, pairs)
}

/// R-MAT generator (Chakrabarti et al.) — recursive quadrant descent with
/// probabilities `(a, b, c, d)`; the classic skewed setting
/// `(0.57, 0.19, 0.19, 0.05)` yields power-law graphs like the SNAP
/// Type III datasets.
pub fn rmat(
    num_nodes: usize,
    target_edges: usize,
    probs: (f64, f64, f64, f64),
    seed: u64,
) -> Result<CsrGraph> {
    let (a, b, c, _d) = probs;
    let mut rng = StdRng::seed_from_u64(seed);
    let scale = (num_nodes.max(2) as f64).log2().ceil() as u32;
    let side = 1usize << scale;
    let want = target_edges / 2;
    // Oversample ~15% to compensate for dedup and out-of-range clipping.
    let attempts = want + want / 6;
    let mut pairs = Vec::with_capacity(attempts);
    for _ in 0..attempts {
        let (mut x0, mut y0, mut len) = (0usize, 0usize, side);
        while len > 1 {
            len /= 2;
            let r: f64 = rng.random();
            if r < a {
                // top-left: nothing to add
            } else if r < a + b {
                y0 += len;
            } else if r < a + b + c {
                x0 += len;
            } else {
                x0 += len;
                y0 += len;
            }
        }
        if x0 < num_nodes && y0 < num_nodes && x0 != y0 {
            pairs.push((x0 as NodeId, y0 as NodeId));
        }
    }
    finish(num_nodes, pairs)
}

/// R-MAT with the standard skew `(0.57, 0.19, 0.19, 0.05)`.
pub fn rmat_default(num_nodes: usize, target_edges: usize, seed: u64) -> Result<CsrGraph> {
    rmat(num_nodes, target_edges, (0.57, 0.19, 0.19, 0.05), seed)
}

/// Watts–Strogatz small-world ring: each node linked to `k/2` neighbors on
/// each side, each link rewired with probability `beta`.
pub fn watts_strogatz(num_nodes: usize, k: usize, beta: f64, seed: u64) -> Result<CsrGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let half = (k / 2).max(1);
    let mut pairs = Vec::with_capacity(num_nodes * half);
    for v in 0..num_nodes {
        for j in 1..=half {
            let mut u = (v + j) % num_nodes;
            if rng.random::<f64>() < beta {
                u = rng.random_range(0..num_nodes);
            }
            pairs.push((v as NodeId, u as NodeId));
        }
    }
    finish(num_nodes, pairs)
}

/// Citation-style generator: preferential attachment with a locality bias.
///
/// Every new node attaches `m ≈ target_edges / (2 num_nodes)` edges; each
/// endpoint is, with probability `locality`, a node from the recent window
/// (papers cite recent papers — this produces the column clustering that
/// makes SGT shine on Type I graphs), otherwise sampled preferentially from
/// previously used endpoints (power-law hubs).
pub fn citation(num_nodes: usize, target_edges: usize, seed: u64) -> Result<CsrGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = (target_edges / 2 / num_nodes.max(1)).max(1);
    let locality = 0.7_f64;
    let window = (num_nodes / 20).max(4);
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(target_edges);
    let mut pairs = Vec::with_capacity(num_nodes * m);
    for v in 1..num_nodes {
        for _ in 0..m {
            let u = if rng.random::<f64>() < locality || endpoints.is_empty() {
                let lo = v.saturating_sub(window);
                rng.random_range(lo..v)
            } else {
                endpoints[rng.random_range(0..endpoints.len())] as usize
            };
            if u != v {
                pairs.push((v as NodeId, u as NodeId));
                endpoints.push(u as NodeId);
                endpoints.push(v as NodeId);
            }
        }
    }
    finish(num_nodes, pairs)
}

/// Type II generator: a disjoint union of small dense components.
///
/// Nodes are split into contiguous components whose sizes are uniform in
/// `[comp_min, comp_max]`; edges are sampled only *within* components until
/// the global target is met. No inter-component edges exist, matching the
/// paper's description of the graph-kernel datasets ("intra-graph edge
/// connections without inter-graph edge connections").
pub fn community(
    num_nodes: usize,
    target_edges: usize,
    comp_min: usize,
    comp_max: usize,
    seed: u64,
) -> Result<CsrGraph> {
    assert!(comp_min >= 2 && comp_max >= comp_min);
    let mut rng = StdRng::seed_from_u64(seed);
    // Carve node range into components.
    let mut starts = vec![0usize];
    let mut pos = 0usize;
    while pos < num_nodes {
        let sz = rng.random_range(comp_min..=comp_max).min(num_nodes - pos);
        pos += sz.max(2).min(num_nodes - pos);
        starts.push(pos);
    }
    let ncomp = starts.len() - 1;
    let want = target_edges / 2;
    let mut pairs = Vec::with_capacity(want + want / 8);
    // Sample edges component-proportionally.
    for _ in 0..(want + want / 8) {
        let c = rng.random_range(0..ncomp);
        let (lo, hi) = (starts[c], starts[c + 1]);
        if hi - lo < 2 {
            continue;
        }
        let a = rng.random_range(lo..hi) as NodeId;
        let b = rng.random_range(lo..hi) as NodeId;
        if a != b {
            pairs.push((a, b));
        }
    }
    finish(num_nodes, pairs)
}

/// Component boundaries used by [`community`] for a given configuration —
/// exposed so dataset labeling can reuse the same partition.
pub fn community_partition(
    num_nodes: usize,
    comp_min: usize,
    comp_max: usize,
    seed: u64,
) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut starts = vec![0usize];
    let mut pos = 0usize;
    while pos < num_nodes {
        let sz = rng.random_range(comp_min..=comp_max).min(num_nodes - pos);
        pos += sz.max(2).min(num_nodes - pos);
        starts.push(pos);
    }
    starts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_basic_properties() {
        let g = erdos_renyi(500, 4000, 1).unwrap();
        assert_eq!(g.num_nodes(), 500);
        assert!(g.is_symmetric());
        // Dedup shrinks a little; should be within 25% of target.
        assert!(g.num_edges() > 3000 && g.num_edges() <= 4000);
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat_default(1 << 12, 40_000, 2).unwrap();
        assert!(g.is_symmetric());
        let max_deg = (0..g.num_nodes()).map(|v| g.degree(v)).max().unwrap();
        let avg = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(
            (max_deg as f64) > 8.0 * avg,
            "R-MAT should have hubs: max {max_deg}, avg {avg}"
        );
    }

    #[test]
    fn watts_strogatz_degree_concentrated() {
        let g = watts_strogatz(400, 6, 0.1, 3).unwrap();
        assert!(g.is_symmetric());
        let avg = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!((4.0..8.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn citation_reaches_target_scale() {
        let g = citation(2708, 10858, 4).unwrap();
        assert!(g.is_symmetric());
        let ratio = g.num_edges() as f64 / 10858.0;
        assert!((0.5..1.3).contains(&ratio), "edge ratio {ratio}");
    }

    #[test]
    fn community_has_no_intercomponent_edges() {
        let seed = 7;
        let g = community(300, 3000, 10, 20, seed).unwrap();
        let starts = community_partition(300, 10, 20, seed);
        // Map node -> component index.
        let mut comp = vec![0usize; 300];
        for c in 0..starts.len() - 1 {
            for v in starts[c]..starts[c + 1] {
                comp[v] = c;
            }
        }
        for (s, d) in g.iter_edges() {
            assert_eq!(
                comp[s as usize], comp[d as usize],
                "edge ({s},{d}) crosses components"
            );
        }
        assert!(g.is_symmetric());
    }

    #[test]
    fn generators_are_deterministic() {
        let a = rmat_default(1024, 8000, 9).unwrap();
        let b = rmat_default(1024, 8000, 9).unwrap();
        assert_eq!(a, b);
        let c = rmat_default(1024, 8000, 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn no_self_loops_from_generators() {
        let g = erdos_renyi(200, 2000, 11).unwrap();
        for (s, d) in g.iter_edges() {
            assert_ne!(s, d);
        }
    }
}
