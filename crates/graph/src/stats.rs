//! Structural statistics used by the motivation tables and figure captions.

use serde::{Deserialize, Serialize};

use crate::CsrGraph;

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Node count.
    pub num_nodes: usize,
    /// Directed edge count (nnz).
    pub num_edges: usize,
    /// Mean out-degree.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Number of isolated (degree-0) nodes.
    pub isolated_nodes: usize,
    /// nnz / N² — the paper's "effective computation" of a dense approach.
    pub density: f64,
    /// Gini coefficient of the degree distribution: 0 = perfectly regular,
    /// →1 = extremely skewed. Type III graphs score high here.
    pub degree_gini: f64,
}

/// Computes [`GraphStats`] for a graph.
pub fn graph_stats(g: &CsrGraph) -> GraphStats {
    let n = g.num_nodes();
    let mut degrees: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let max_degree = degrees.iter().copied().max().unwrap_or(0);
    let isolated = degrees.iter().filter(|&&d| d == 0).count();
    let avg = if n == 0 {
        0.0
    } else {
        g.num_edges() as f64 / n as f64
    };
    degrees.sort_unstable();
    let total: f64 = degrees.iter().map(|&d| d as f64).sum();
    let gini = if total > 0.0 && n > 1 {
        let mut cum = 0.0_f64;
        let mut weighted = 0.0_f64;
        for (i, &d) in degrees.iter().enumerate() {
            cum += d as f64;
            let _ = i;
            weighted += cum;
        }
        // Gini = 1 - 2 * B where B is the area under the Lorenz curve.
        let b = weighted / (n as f64 * total);
        (1.0 - 2.0 * b + 1.0 / n as f64).clamp(0.0, 1.0)
    } else {
        0.0
    };
    GraphStats {
        num_nodes: n,
        num_edges: g.num_edges(),
        avg_degree: avg,
        max_degree,
        isolated_nodes: isolated,
        density: g.effective_compute_ratio(),
        degree_gini: gini,
    }
}

/// Per-row-window neighbor statistics, quantifying the *neighbor sharing*
/// SGT exploits: for each window of `win_size` rows, the ratio of total
/// neighbor references to distinct neighbors. High sharing ⇒ SGT condenses
/// many columns into few.
pub fn neighbor_sharing_ratio(g: &CsrGraph, win_size: usize) -> f64 {
    let n = g.num_nodes();
    if n == 0 || g.num_edges() == 0 {
        return 1.0;
    }
    let mut total_refs = 0usize;
    let mut total_unique = 0usize;
    let mut seen = Vec::new();
    for w0 in (0..n).step_by(win_size) {
        let w1 = (w0 + win_size).min(n);
        seen.clear();
        for v in w0..w1 {
            seen.extend_from_slice(g.neighbors(v));
        }
        total_refs += seen.len();
        seen.sort_unstable();
        seen.dedup();
        total_unique += seen.len();
    }
    if total_unique == 0 {
        1.0
    } else {
        total_refs as f64 / total_unique as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stats_of_regular_ring() {
        let g = gen::watts_strogatz(100, 4, 0.0, 1).unwrap();
        let s = graph_stats(&g);
        assert_eq!(s.num_nodes, 100);
        assert_eq!(s.max_degree, 4);
        assert!((s.avg_degree - 4.0).abs() < 1e-9);
        assert_eq!(s.isolated_nodes, 0);
        assert!(
            s.degree_gini < 0.05,
            "ring is regular: gini {}",
            s.degree_gini
        );
    }

    #[test]
    fn rmat_gini_exceeds_er() {
        let er = gen::erdos_renyi(4096, 40_000, 2).unwrap();
        let rm = gen::rmat_default(4096, 40_000, 2).unwrap();
        let g_er = graph_stats(&er).degree_gini;
        let g_rm = graph_stats(&rm).degree_gini;
        assert!(
            g_rm > g_er + 0.1,
            "R-MAT should be more skewed: {g_rm} vs {g_er}"
        );
    }

    #[test]
    fn sharing_high_for_communities() {
        // Dense communities of ~20 nodes inside 16-row windows share heavily.
        let comm = gen::community(1000, 12_000, 16, 24, 3).unwrap();
        let er = gen::erdos_renyi(1000, 12_000, 3).unwrap();
        let s_comm = neighbor_sharing_ratio(&comm, 16);
        let s_er = neighbor_sharing_ratio(&er, 16);
        assert!(
            s_comm > s_er,
            "community sharing {s_comm} should exceed ER {s_er}"
        );
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::CsrGraph::from_raw(0, vec![0], vec![]).unwrap();
        let s = graph_stats(&g);
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(neighbor_sharing_ratio(&g, 16), 1.0);
    }
}
