//! Large synthetic graphs for the distributed-execution benchmarks.
//!
//! [`power_law`] is a deterministic Barabási–Albert-style preferential-
//! attachment generator: each new node attaches to `m ≈ avg_degree / 2`
//! existing nodes sampled proportionally to their current degree (via an
//! endpoint pool), which yields the heavy-tailed degree distribution of
//! the paper's Type III datasets — a handful of hub rows own a large share
//! of the non-zeros, which is exactly the imbalance the `tcg-dist`
//! partitioner must handle (HC-SpMM, arXiv 2412.08902, makes the same
//! observation for hybrid kernel selection).
//!
//! Unlike [`crate::gen::rmat`], which targets an edge *count*, this
//! generator targets a node count and an average degree so multi-million
//! node graphs can be sized directly.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{CooGraph, CsrGraph, NodeId, Result};

/// Deterministic Barabási–Albert-style power-law graph.
///
/// `avg_degree` is the target mean *directed* degree of the final
/// symmetric graph (each undirected attachment contributes two directed
/// edges); the attachment count per node is `m = max(1, avg_degree / 2)`.
/// The first `m + 1` nodes form a seed clique so early samples have
/// endpoints to land on. The same `(seed, num_nodes, avg_degree)` triple
/// always produces a [`CsrGraph`] with the same
/// [`CsrGraph::fingerprint`].
pub fn power_law(seed: u64, num_nodes: usize, avg_degree: usize) -> Result<CsrGraph> {
    let m = (avg_degree / 2).max(1);
    if num_nodes <= m + 1 {
        // Degenerate sizes: fall back to a clique over all nodes.
        let mut pairs = Vec::new();
        for a in 0..num_nodes {
            for b in (a + 1)..num_nodes {
                pairs.push((a as NodeId, b as NodeId));
            }
        }
        return finish(num_nodes, pairs);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Every accepted undirected edge pushes both endpoints, so sampling a
    // pool slot uniformly samples nodes proportionally to degree.
    let mut pool: Vec<NodeId> = Vec::with_capacity(2 * m * num_nodes);
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::with_capacity(m * num_nodes);
    let core = m + 1;
    for a in 0..core {
        for b in (a + 1)..core {
            pairs.push((a as NodeId, b as NodeId));
            pool.push(a as NodeId);
            pool.push(b as NodeId);
        }
    }
    let mut picked: Vec<NodeId> = Vec::with_capacity(m);
    for v in core..num_nodes {
        picked.clear();
        // Up to 4·m draws to collect m distinct targets; duplicates are
        // re-rolled, and any shortfall is filled uniformly so the
        // attachment count stays exact.
        let mut attempts = 0;
        while picked.len() < m && attempts < 4 * m {
            attempts += 1;
            let t = pool[rng.random_range(0..pool.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        while picked.len() < m {
            let t = rng.random_range(0..v) as NodeId;
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            pairs.push((v as NodeId, t));
            pool.push(v as NodeId);
            pool.push(t);
        }
    }
    finish(num_nodes, pairs)
}

/// Collects undirected pairs into a symmetric, deduplicated CSR graph
/// (same contract as the `gen` module's generators).
fn finish(num_nodes: usize, pairs: Vec<(NodeId, NodeId)>) -> Result<CsrGraph> {
    let mut coo = CooGraph::new(num_nodes);
    for (a, b) in pairs {
        if a != b {
            coo.push_edge(a, b);
        }
    }
    coo.symmetrize();
    coo.into_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_across_runs() {
        let a = power_law(7, 4000, 8).unwrap();
        let b = power_law(7, 4000, 8).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // A different seed moves the fingerprint.
        let c = power_law(8, 4000, 8).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn degree_distribution_has_a_heavy_tail() {
        let g = power_law(2023, 20_000, 8).unwrap();
        let n = g.num_nodes();
        let mut degs: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = degs.iter().sum();
        // Preferential attachment: the top 1% of nodes must own a
        // disproportionate share of the edges (far above the uniform 1%),
        // and the hub degree must dwarf the mean.
        let top = n / 100;
        let top_share: usize = degs[..top].iter().sum();
        assert!(
            top_share * 10 > total,
            "top 1% owns {top_share} of {total} directed edges"
        );
        let mean = total as f64 / n as f64;
        assert!(
            degs[0] as f64 > 10.0 * mean,
            "hub degree {} vs mean {mean:.1}",
            degs[0]
        );
        // The average degree lands near the request.
        assert!((mean - 8.0).abs() < 2.0, "mean degree {mean:.2}");
    }

    #[test]
    fn output_is_symmetric_and_exact_node_count() {
        let g = power_law(5, 3000, 6).unwrap();
        assert_eq!(g.num_nodes(), 3000);
        assert!(g.is_symmetric());
    }

    #[test]
    fn degenerate_sizes_fall_back_to_a_clique() {
        let g = power_law(1, 3, 16).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 6); // K3, both directions
    }
}
