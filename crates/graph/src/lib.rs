//! Graph containers and dataset generation for the TC-GNN reproduction.
//!
//! The paper evaluates on 14 real-world graphs (its Table 4) spanning three
//! structural classes: small citation-style graphs with high-dimensional
//! features (Type I), collections of disjoint small dense subgraphs from the
//! graph-kernel benchmarks (Type II), and large irregular power-law graphs
//! (Type III). Those datasets are not redistributable here, so
//! [`datasets`] provides *synthetic stand-ins* matched on node count, edge
//! count, feature dimension, class count and — the property TC-GNN's Sparse
//! Graph Translation actually exploits — neighbor-sharing structure per type.
//!
//! The [`CsrGraph`] layout (`node_pointer` + `edge_list`) mirrors exactly the
//! `nodePointer`/`edgeList` arrays of the paper's Algorithm 1.

pub mod coo;
pub mod csr;
pub mod datasets;
pub mod error;
pub mod gen;
pub mod io;
pub mod stats;
pub mod synth;

pub use coo::CooGraph;
pub use csr::{CsrGraph, GraphVersion};
pub use datasets::{Dataset, DatasetSpec, GraphClass};
pub use error::GraphError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Node identifier type: `u32` covers the largest paper dataset
/// (YeastH, 3.14 M nodes) with headroom.
pub type NodeId = u32;
