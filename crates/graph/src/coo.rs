//! Coordinate-format (edge list) graph, the builder format.

use serde::{Deserialize, Serialize};

use crate::{GraphError, NodeId, Result};

/// A graph as an explicit edge list.
///
/// COO is the natural output format of the synthetic generators; it is
/// converted once to [`crate::CsrGraph`] for everything downstream. Edges are
/// directed; undirected graphs are represented by storing both directions
/// (see [`CooGraph::symmetrize`]), matching how GNN frameworks store
/// adjacency.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CooGraph {
    num_nodes: usize,
    src: Vec<NodeId>,
    dst: Vec<NodeId>,
}

impl CooGraph {
    /// Creates an empty edge list over `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        CooGraph {
            num_nodes,
            src: Vec::new(),
            dst: Vec::new(),
        }
    }

    /// Creates a COO graph from parallel endpoint arrays.
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if any endpoint is out of
    /// range, and [`GraphError::MalformedNodePointer`] if the arrays have
    /// different lengths.
    pub fn from_edges(num_nodes: usize, src: Vec<NodeId>, dst: Vec<NodeId>) -> Result<Self> {
        if src.len() != dst.len() {
            return Err(GraphError::MalformedNodePointer {
                reason: format!("src len {} != dst len {}", src.len(), dst.len()),
            });
        }
        for &v in src.iter().chain(dst.iter()) {
            if v as usize >= num_nodes {
                return Err(GraphError::NodeOutOfRange { node: v, num_nodes });
            }
        }
        Ok(CooGraph {
            num_nodes,
            src,
            dst,
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of (directed) edges currently stored.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }

    /// Source endpoints.
    #[inline]
    pub fn src(&self) -> &[NodeId] {
        &self.src
    }

    /// Destination endpoints.
    #[inline]
    pub fn dst(&self) -> &[NodeId] {
        &self.dst
    }

    /// Appends one directed edge (unchecked against duplicates).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if an endpoint is out of range; generators call
    /// this in hot loops so release builds skip the check and the final
    /// [`CooGraph::into_csr`] validation catches violations.
    #[inline]
    pub fn push_edge(&mut self, s: NodeId, d: NodeId) {
        debug_assert!((s as usize) < self.num_nodes && (d as usize) < self.num_nodes);
        self.src.push(s);
        self.dst.push(d);
    }

    /// Adds the reverse of every edge, making the edge set symmetric.
    /// Duplicates introduced here are removed by [`CooGraph::dedup`].
    pub fn symmetrize(&mut self) {
        let n = self.src.len();
        self.src.reserve(n);
        self.dst.reserve(n);
        for i in 0..n {
            let (s, d) = (self.src[i], self.dst[i]);
            if s != d {
                self.src.push(d);
                self.dst.push(s);
            }
        }
    }

    /// Adds a self loop to every node (GCN's renormalization trick uses
    /// `A + I`). Existing self loops are not duplicated after [`dedup`].
    ///
    /// [`dedup`]: CooGraph::dedup
    pub fn add_self_loops(&mut self) {
        for v in 0..self.num_nodes as NodeId {
            self.src.push(v);
            self.dst.push(v);
        }
    }

    /// Sorts edges by `(src, dst)` and removes duplicates.
    pub fn dedup(&mut self) {
        let mut pairs: Vec<(NodeId, NodeId)> = self
            .src
            .iter()
            .copied()
            .zip(self.dst.iter().copied())
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        self.src.clear();
        self.dst.clear();
        for (s, d) in pairs {
            self.src.push(s);
            self.dst.push(d);
        }
    }

    /// Converts to CSR, sorting and deduplicating along the way.
    pub fn into_csr(mut self) -> Result<crate::CsrGraph> {
        self.dedup();
        crate::CsrGraph::from_sorted_coo(self.num_nodes, &self.src, &self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_validates_range() {
        assert!(CooGraph::from_edges(3, vec![0, 1], vec![2, 3]).is_err());
        assert!(CooGraph::from_edges(4, vec![0, 1], vec![2, 3]).is_ok());
        assert!(CooGraph::from_edges(4, vec![0], vec![1, 2]).is_err());
    }

    #[test]
    fn symmetrize_doubles_non_loops() {
        let mut g = CooGraph::from_edges(3, vec![0, 1, 2], vec![1, 2, 2]).unwrap();
        g.symmetrize();
        // Edge (2,2) is a self loop and is not mirrored.
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn dedup_removes_duplicates_and_sorts() {
        let mut g = CooGraph::from_edges(3, vec![1, 0, 1, 0], vec![2, 1, 2, 1]).unwrap();
        g.dedup();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.src(), &[0, 1]);
        assert_eq!(g.dst(), &[1, 2]);
    }

    #[test]
    fn self_loops_then_dedup() {
        let mut g = CooGraph::from_edges(2, vec![0, 0], vec![0, 1]).unwrap();
        g.add_self_loops();
        g.dedup();
        // Edges: (0,0), (0,1), (1,1).
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn into_csr_roundtrip() {
        let g = CooGraph::from_edges(4, vec![2, 0, 0, 3], vec![1, 3, 1, 0]).unwrap();
        let csr = g.into_csr().unwrap();
        assert_eq!(csr.num_nodes(), 4);
        assert_eq!(csr.num_edges(), 4);
        assert_eq!(csr.neighbors(0), &[1, 3]);
        assert_eq!(csr.neighbors(1), &[] as &[NodeId]);
        assert_eq!(csr.neighbors(2), &[1]);
        assert_eq!(csr.neighbors(3), &[0]);
    }
}
