//! Incremental SGT: delta-translation of dynamic graphs.
//!
//! Algorithm 1 is windowed over `TC_BLK_H = 16` rows, so an edge insert or
//! delete only ever changes the translated structure of *its own row
//! window*: condensation, chunking and `AToX` slots of every other window
//! are untouched — only their global edge offsets shift by the (constant)
//! change in preceding edge count. [`TranslatedGraph::apply_delta`] exploits
//! exactly this: it re-runs Algorithm 1 + 2 for the touched windows and
//! *splices* the untouched windows' arrays with corrected offsets, which is
//! `O(E)` copying but skips the sort-dominated translation work everywhere
//! the graph did not change.
//!
//! The result is guaranteed bitwise-identical to a from-scratch translation
//! — touched windows go through the very same `translate_window` /
//! `assemble_window_into` code path, and untouched windows are pure copies
//! modulo offset arithmetic. The oracle's metamorphic suite asserts this
//! identity (checksum + full struct equality) over random edit scripts.

use tcg_fault::TcgError;
use tcg_graph::{CsrGraph, NodeId};

use crate::translate::{
    assemble_window_into, post_validate, translate_window, BlockArrays, TranslatedGraph,
};

/// A batch of edge insertions and deletions against a [`CsrGraph`].
///
/// Deltas are *strict*: applying an insert of an existing edge or a delete
/// of a missing edge is an error (use [`CsrGraph::has_edge`] to build toggle
/// semantics on top). An edge may not appear in both sets. Endpoint node ids
/// must be in range; deltas never add or remove nodes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeDelta {
    inserts: Vec<(NodeId, NodeId)>,
    deletes: Vec<(NodeId, NodeId)>,
}

impl EdgeDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a directed edge insertion (chainable).
    pub fn insert(mut self, src: NodeId, dst: NodeId) -> Self {
        self.inserts.push((src, dst));
        self
    }

    /// Adds a directed edge deletion (chainable).
    pub fn delete(mut self, src: NodeId, dst: NodeId) -> Self {
        self.deletes.push((src, dst));
        self
    }

    /// Inserts both directions of `{u, v}` — serving requires symmetric
    /// graphs, so mutations normally come in undirected pairs.
    pub fn insert_undirected(self, u: NodeId, v: NodeId) -> Self {
        let d = self.insert(u, v);
        if u == v {
            d
        } else {
            d.insert(v, u)
        }
    }

    /// Deletes both directions of `{u, v}`.
    pub fn delete_undirected(self, u: NodeId, v: NodeId) -> Self {
        let d = self.delete(u, v);
        if u == v {
            d
        } else {
            d.delete(v, u)
        }
    }

    /// Push-style [`Self::insert`] for loop bodies.
    pub fn push_insert(&mut self, src: NodeId, dst: NodeId) {
        self.inserts.push((src, dst));
    }

    /// Push-style [`Self::delete`] for loop bodies.
    pub fn push_delete(&mut self, src: NodeId, dst: NodeId) {
        self.deletes.push((src, dst));
    }

    /// The directed insertions, as recorded.
    pub fn inserts(&self) -> &[(NodeId, NodeId)] {
        &self.inserts
    }

    /// The directed deletions, as recorded.
    pub fn deletes(&self) -> &[(NodeId, NodeId)] {
        &self.deletes
    }

    /// True when the delta carries no operations.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Total operation count.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Sorts and deduplicates both operation lists in place. Strictness
    /// (no edge in both lists, no duplicate net effect) is still checked at
    /// [`Self::apply_to`] time.
    pub fn normalize(&mut self) {
        self.inserts.sort_unstable();
        self.inserts.dedup();
        self.deletes.sort_unstable();
        self.deletes.dedup();
    }

    /// Applies the delta to `csr`, returning the mutated graph.
    ///
    /// Errors with [`TcgError::InvalidInput`] if an endpoint is out of
    /// range, an inserted edge already exists, a deleted edge is missing, or
    /// an edge appears in both sets.
    pub fn apply_to(&self, csr: &CsrGraph) -> Result<CsrGraph, TcgError> {
        for &(s, d) in &self.inserts {
            if self.deletes.contains(&(s, d)) {
                return Err(TcgError::InvalidInput {
                    what: "edge delta",
                    detail: format!("edge ({s}, {d}) appears in both inserts and deletes"),
                });
            }
        }
        let mut out = csr.clone();
        for &(s, d) in &self.deletes {
            match out.remove_edge(s, d) {
                Ok(true) => {}
                Ok(false) => {
                    return Err(TcgError::InvalidInput {
                        what: "edge delta",
                        detail: format!("delete of missing edge ({s}, {d})"),
                    })
                }
                Err(e) => {
                    return Err(TcgError::InvalidInput {
                        what: "edge delta",
                        detail: format!("delete ({s}, {d}): {e}"),
                    })
                }
            }
        }
        for &(s, d) in &self.inserts {
            match out.insert_edge(s, d) {
                Ok(true) => {}
                Ok(false) => {
                    return Err(TcgError::InvalidInput {
                        what: "edge delta",
                        detail: format!("insert of existing edge ({s}, {d})"),
                    })
                }
                Err(e) => {
                    return Err(TcgError::InvalidInput {
                        what: "edge delta",
                        detail: format!("insert ({s}, {d}): {e}"),
                    })
                }
            }
        }
        Ok(out)
    }

    /// The sorted, deduplicated row windows (of height `win_size`) whose
    /// translated structure this delta invalidates. Only *source* rows
    /// matter: SGT condenses neighbor ids per source-row window, so an edge
    /// `(s, d)` lives entirely in window `s / win_size`.
    pub fn touched_windows(&self, win_size: usize) -> Vec<usize> {
        assert!(win_size > 0, "window size must be positive");
        let mut ws: Vec<usize> = self
            .inserts
            .iter()
            .chain(self.deletes.iter())
            .map(|&(s, _)| s as usize / win_size)
            .collect();
        ws.sort_unstable();
        ws.dedup();
        ws
    }
}

/// What [`TranslatedGraph::apply_delta`] did, for metrics and reports.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaReport {
    /// Windows whose translation was recomputed (sorted, deduplicated).
    pub touched_windows: Vec<usize>,
    /// Windows whose translation was spliced through unchanged.
    pub preserved_windows: usize,
    /// Edges (post-delta) inside the recomputed windows.
    pub retranslated_edges: usize,
    /// Directed insertions applied.
    pub inserts: usize,
    /// Directed deletions applied.
    pub deletes: usize,
    /// Modeled host cost of the delta translation (same clock as
    /// [`crate::overhead::model_ms`]).
    pub model_ms: f64,
    /// Modeled host cost a from-scratch translation would have paid.
    pub full_model_ms: f64,
}

impl TranslatedGraph {
    /// Incrementally updates `self` to translate `csr`, where `csr` is the
    /// *post-delta* graph and `self` currently translates the pre-delta
    /// graph. Only the windows touched by `delta` are re-run through
    /// Algorithm 1 + 2; every other window's arrays are spliced over with
    /// corrected edge offsets.
    ///
    /// The node count must be unchanged (deltas never add or remove nodes)
    /// and the edge counts must reconcile
    /// (`old_edges + inserts - deletes == csr.num_edges()`); violations are
    /// [`TcgError::InvalidInput`]. Under `TCG_VERIFY=1` (or debug builds)
    /// the result is validated against `csr` before returning.
    pub fn apply_delta(
        &mut self,
        csr: &CsrGraph,
        delta: &EdgeDelta,
    ) -> Result<DeltaReport, TcgError> {
        let windows = csr.num_nodes().div_ceil(self.win_size);
        if windows != self.num_row_windows {
            return Err(TcgError::InvalidInput {
                what: "edge delta",
                detail: format!(
                    "graph has {} windows but translation has {} — deltas cannot change \
                     the node count",
                    windows, self.num_row_windows
                ),
            });
        }
        let old_edges = self.edge_to_col.len();
        if old_edges + delta.inserts().len() != csr.num_edges() + delta.deletes().len() {
            return Err(TcgError::InvalidInput {
                what: "edge delta",
                detail: format!(
                    "delta does not reconcile: {old_edges} old edges + {} inserts - {} \
                     deletes != {} new edges",
                    delta.inserts().len(),
                    delta.deletes().len(),
                    csr.num_edges()
                ),
            });
        }
        let mut touched = delta.touched_windows(self.win_size);
        touched.retain(|&w| w < windows);
        for &(s, d) in delta.inserts().iter().chain(delta.deletes().iter()) {
            if s as usize >= csr.num_nodes() || d as usize >= csr.num_nodes() {
                return Err(TcgError::InvalidInput {
                    what: "edge delta",
                    detail: format!("edge ({s}, {d}) out of range for {} nodes", csr.num_nodes()),
                });
            }
        }
        self.retranslate_windows(csr, &touched)?;
        let np = csr.node_pointer();
        let retranslated_edges = touched
            .iter()
            .map(|&w| {
                let lo = w * self.win_size;
                let hi = ((w + 1) * self.win_size).min(csr.num_nodes());
                np[hi] - np[lo]
            })
            .sum();
        Ok(DeltaReport {
            preserved_windows: windows - touched.len(),
            retranslated_edges,
            inserts: delta.inserts().len(),
            deletes: delta.deletes().len(),
            model_ms: crate::overhead::model_delta_ms(csr, touched.len(), retranslated_edges),
            full_model_ms: crate::overhead::model_ms(csr),
            touched_windows: touched,
        })
    }

    /// Rebuilds the translation for `csr` by re-running Algorithm 1 + 2 on
    /// the windows in `touched` (sorted, deduplicated, in range) and
    /// splicing every other window's existing arrays with corrected edge
    /// offsets.
    ///
    /// Soundness precondition: every window *not* in `touched` must have
    /// identical CSR content (same rows, same neighbor lists) in `csr` as in
    /// the graph this translation was built from. The caller either derives
    /// `touched` from an [`EdgeDelta`] (windows are independent under SGT)
    /// or from matching per-window graph fingerprints
    /// ([`CsrGraph::window_fingerprint`]). An untouched window whose edge
    /// count nonetheless changed is detected and reported as
    /// [`TcgError::CorruptMeta`].
    pub fn retranslate_windows(
        &mut self,
        csr: &CsrGraph,
        touched: &[usize],
    ) -> Result<(), TcgError> {
        let n = csr.num_nodes();
        let windows = n.div_ceil(self.win_size);
        if windows != self.num_row_windows {
            return Err(TcgError::InvalidInput {
                what: "retranslate_windows",
                detail: format!(
                    "graph has {windows} windows but translation has {}",
                    self.num_row_windows
                ),
            });
        }
        for &w in touched {
            if w >= windows {
                return Err(TcgError::InvalidInput {
                    what: "retranslate_windows",
                    detail: format!("window {w} out of range: {windows} row windows"),
                });
            }
        }
        debug_assert!(touched.windows(2).all(|p| p[0] < p[1]), "sorted + deduped");

        let num_edges = csr.num_edges();
        let np = csr.node_pointer();
        let old_spans = self.window_edge_spans();

        let mut edge_to_col = vec![0u32; num_edges];
        let mut edge_to_row = vec![0 as NodeId; num_edges];
        let mut win_partition = Vec::with_capacity(windows);
        let mut win_unique = Vec::with_capacity(windows);
        let mut arrays = BlockArrays::with_capacity(
            self.block_ptr.len().saturating_sub(1),
            num_edges,
            self.block_atox.len(),
        );

        let mut ti = 0usize;
        for w in 0..windows {
            let row_lo = w * self.win_size;
            let row_hi = ((w + 1) * self.win_size).min(n);
            let (new_lo, new_hi) = (np[row_lo], np[row_hi]);
            if ti < touched.len() && touched[ti] == w {
                ti += 1;
                let o = translate_window(
                    csr,
                    w,
                    self.win_size,
                    self.blk_w,
                    &mut edge_to_col[new_lo..new_hi],
                    &mut edge_to_row[new_lo..new_hi],
                    new_lo,
                );
                win_partition.push(o.blocks);
                win_unique.push(o.unique);
                assemble_window_into(&o, w, self.win_size, self.blk_w, &mut arrays);
            } else {
                let (old_lo, old_hi) = (old_spans[w], old_spans[w + 1]);
                if old_hi - old_lo != new_hi - new_lo {
                    return Err(TcgError::CorruptMeta {
                        what: "retranslate_windows",
                        detail: format!(
                            "untouched window {w}: edge count changed {} -> {} — the \
                             touched-window set does not cover the graph edit",
                            old_hi - old_lo,
                            new_hi - new_lo
                        ),
                    });
                }
                edge_to_col[new_lo..new_hi].copy_from_slice(&self.edge_to_col[old_lo..old_hi]);
                edge_to_row[new_lo..new_hi].copy_from_slice(&self.edge_to_row[old_lo..old_hi]);
                win_partition.push(self.win_partition[w]);
                win_unique.push(self.win_unique[w]);
                let (b_lo, b_hi) = (self.win_block_start[w], self.win_block_start[w + 1]);
                // Untouched content is identical; only the global edge ids in
                // `perm_orig` shift by the net edge-count change upstream.
                let shift = new_lo as i64 - old_lo as i64;
                for b in b_lo..b_hi {
                    for pos in self.block_ptr[b]..self.block_ptr[b + 1] {
                        arrays
                            .perm_orig
                            .push((i64::from(self.perm_orig[pos]) + shift) as u32);
                        arrays.perm_pack.push(self.perm_pack[pos]);
                    }
                    arrays.block_ptr.push(arrays.perm_pack.len());
                    arrays.block_atox.extend_from_slice(
                        &self.block_atox[self.block_atox_ptr[b]..self.block_atox_ptr[b + 1]],
                    );
                    arrays.block_atox_ptr.push(arrays.block_atox.len());
                }
            }
        }

        let mut win_block_start = Vec::with_capacity(windows + 1);
        win_block_start.push(0usize);
        for &blocks in &win_partition {
            win_block_start.push(win_block_start.last().unwrap() + blocks as usize);
        }

        self.win_partition = win_partition;
        self.edge_to_col = edge_to_col;
        self.edge_to_row = edge_to_row;
        self.win_unique = win_unique;
        self.win_block_start = win_block_start;
        self.block_ptr = arrays.block_ptr;
        self.perm_orig = arrays.perm_orig;
        self.perm_pack = arrays.perm_pack;
        self.block_atox = arrays.block_atox;
        self.block_atox_ptr = arrays.block_atox_ptr;

        post_validate(self, csr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::Sgt;
    use tcg_graph::gen;

    fn full(csr: &CsrGraph) -> TranslatedGraph {
        Sgt::builder().translate(csr).expect("translate")
    }

    #[test]
    fn delta_builder_and_touched_windows() {
        let d = EdgeDelta::new()
            .insert_undirected(1, 40)
            .delete(17, 3)
            .insert(17, 5);
        assert_eq!(d.inserts(), &[(1, 40), (40, 1), (17, 5)]);
        assert_eq!(d.deletes(), &[(17, 3)]);
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        // Sources 1, 40, 17, 17 at win 16 → windows {0, 1, 2}.
        assert_eq!(d.touched_windows(16), vec![0, 1, 2]);
    }

    #[test]
    fn apply_to_is_strict() {
        let g = gen::erdos_renyi(64, 400, 3).unwrap();
        let (s, d) = g.iter_edges().next().unwrap();
        // Insert of an existing edge fails.
        assert!(EdgeDelta::new().insert(s, d).apply_to(&g).is_err());
        // Delete of a missing edge fails.
        let mut missing = None;
        'outer: for u in 0..64u32 {
            for v in 0..64u32 {
                if u != v && !g.has_edge(u as usize, v) {
                    missing = Some((u, v));
                    break 'outer;
                }
            }
        }
        let (u, v) = missing.unwrap();
        assert!(EdgeDelta::new().delete(u, v).apply_to(&g).is_err());
        // Same edge in both sets fails.
        assert!(EdgeDelta::new()
            .insert(u, v)
            .delete(u, v)
            .apply_to(&g)
            .is_err());
        // Out-of-range endpoint fails.
        assert!(EdgeDelta::new().insert(0, 500).apply_to(&g).is_err());
        // A valid toggle round-trips.
        let g2 = EdgeDelta::new().insert(u, v).apply_to(&g).unwrap();
        assert!(g2.has_edge(u as usize, v));
        let g3 = EdgeDelta::new().delete(u, v).apply_to(&g2).unwrap();
        assert_eq!(g3, g);
    }

    #[test]
    fn apply_delta_matches_from_scratch_bitwise() {
        let g = gen::rmat_default(512, 4000, 11).unwrap();
        let mut t = full(&g);
        // A batch touching two windows: one insert, one delete.
        let (s, d) = g.iter_edges().last().unwrap();
        let mut ins = None;
        'outer: for u in [3u32, 100, 200] {
            for v in 0..512u32 {
                if u != v && !g.has_edge(u as usize, v) {
                    ins = Some((u, v));
                    break 'outer;
                }
            }
        }
        let (u, v) = ins.unwrap();
        let delta = EdgeDelta::new().insert(u, v).delete(s, d);
        let g2 = delta.apply_to(&g).unwrap();
        let report = t.apply_delta(&g2, &delta).unwrap();
        let scratch = full(&g2);
        assert_eq!(t.checksum(), scratch.checksum());
        assert_eq!(t, scratch, "bitwise identity with from-scratch translation");
        assert!(t.validate(&g2).is_ok());
        assert!(report.preserved_windows + report.touched_windows.len() == t.num_row_windows);
        assert!(report.model_ms < report.full_model_ms);
    }

    #[test]
    fn apply_delta_rejects_mismatched_graph() {
        let g = gen::erdos_renyi(100, 600, 5).unwrap();
        let mut t = full(&g);
        // Wrong node count.
        let other = gen::erdos_renyi(200, 600, 5).unwrap();
        assert!(t.apply_delta(&other, &EdgeDelta::new()).is_err());
        // Delta that does not reconcile edge counts.
        let (s, d) = g.iter_edges().next().unwrap();
        let g2 = EdgeDelta::new().delete(s, d).apply_to(&g).unwrap();
        assert!(t.apply_delta(&g2, &EdgeDelta::new()).is_err());
    }

    #[test]
    fn window_fingerprints_move_only_for_touched_windows() {
        let g = gen::rmat_default(512, 4000, 7).unwrap();
        let t = full(&g);
        let before = t.window_fingerprints();
        // Delete one edge; only its window's translated fingerprint moves.
        let (s, d) = g.iter_edges().next().unwrap();
        let delta = EdgeDelta::new().delete(s, d);
        let g2 = delta.apply_to(&g).unwrap();
        let mut t2 = t.clone();
        t2.apply_delta(&g2, &delta).unwrap();
        let after = t2.window_fingerprints();
        let touched = delta.touched_windows(t.win_size);
        for w in 0..t.num_row_windows {
            if touched.contains(&w) {
                assert_ne!(before[w], after[w], "window {w} must change");
            } else {
                assert_eq!(before[w], after[w], "window {w} must be invariant");
            }
        }
        // CSR-side window fingerprints agree on which windows moved.
        let csr_before = g.window_fingerprints(t.win_size);
        let csr_after = g2.window_fingerprints(t.win_size);
        for w in 0..t.num_row_windows {
            assert_eq!(
                csr_before[w] == csr_after[w],
                !touched.contains(&w),
                "window {w}"
            );
        }
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = gen::citation(300, 2400, 9).unwrap();
        let mut t = full(&g);
        let before = t.clone();
        let report = t.apply_delta(&g, &EdgeDelta::new()).unwrap();
        assert_eq!(t, before);
        assert!(report.touched_windows.is_empty());
        assert_eq!(report.preserved_windows, t.num_row_windows);
    }
}
