//! TCU block census: how many tiles must be traversed with vs without SGT.
//!
//! This is the quantity behind the paper's Figure 7(a): across all row
//! windows, the number of `TC_BLK_H × blk_w` tiles containing at least one
//! non-zero. Without SGT a window's non-zeros are scattered over the raw
//! column space; with SGT they occupy `ceil(unique / blk_w)` consecutive
//! tiles. The paper reports an average reduction of **67.47%**, lower on
//! Type II graphs whose columns are already clustered.

use serde::{Deserialize, Serialize};
use tcg_graph::CsrGraph;

use crate::translate::Sgt;
use crate::{TC_BLK_H, TC_BLK_W};

/// Result of a block census for one geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockCensus {
    /// Tile height used (16).
    pub blk_h: usize,
    /// Tile width used (8 for SpMM operands, 16 for SDDMM outputs).
    pub blk_w: usize,
    /// Non-empty tiles when sliding over the *raw* adjacency.
    pub blocks_without_sgt: u64,
    /// Tiles after condensation.
    pub blocks_with_sgt: u64,
}

impl BlockCensus {
    /// Percentage of tiles eliminated by SGT.
    pub fn reduction_pct(&self) -> f64 {
        if self.blocks_without_sgt == 0 {
            return 0.0;
        }
        100.0 * (1.0 - self.blocks_with_sgt as f64 / self.blocks_without_sgt as f64)
    }
}

/// Counts non-empty tiles with and without SGT for the given geometry.
pub fn census_with(csr: &CsrGraph, blk_h: usize, blk_w: usize) -> BlockCensus {
    let n = csr.num_nodes();
    let mut without = 0u64;
    let mut col_blocks: Vec<u32> = Vec::new();
    for w0 in (0..n).step_by(blk_h) {
        let w1 = (w0 + blk_h).min(n);
        col_blocks.clear();
        for v in w0..w1 {
            col_blocks.extend(csr.neighbors(v).iter().map(|&u| u / blk_w as u32));
        }
        col_blocks.sort_unstable();
        col_blocks.dedup();
        without += col_blocks.len() as u64;
    }
    let t = Sgt::builder()
        .window(blk_h)
        .block_width(blk_w)
        .translate(csr)
        .expect("valid census geometry");
    BlockCensus {
        blk_h,
        blk_w,
        blocks_without_sgt: without,
        blocks_with_sgt: t.total_tc_blocks(),
    }
}

/// The SpMM census with the paper's TF-32 geometry (`16×8`).
pub fn census(csr: &CsrGraph) -> BlockCensus {
    census_with(csr, TC_BLK_H, TC_BLK_W)
}

/// The SDDMM census (`16×16` output tiles, §6.3).
pub fn census_sddmm(csr: &CsrGraph) -> BlockCensus {
    census_with(csr, TC_BLK_H, TC_BLK_H)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcg_graph::gen;

    #[test]
    fn sgt_never_increases_blocks() {
        for seed in 0..5 {
            let g = gen::rmat_default(2048, 20_000, seed).unwrap();
            let c = census(&g);
            assert!(
                c.blocks_with_sgt <= c.blocks_without_sgt,
                "seed {seed}: {c:?}"
            );
        }
    }

    #[test]
    fn scattered_graph_big_reduction() {
        // ER columns are uniformly scattered: most raw tiles hold one edge.
        let g = gen::erdos_renyi(4096, 30_000, 1).unwrap();
        let c = census(&g);
        assert!(
            c.reduction_pct() > 50.0,
            "expected strong reduction on scattered graph, got {:.1}%",
            c.reduction_pct()
        );
    }

    #[test]
    fn clustered_graph_smaller_reduction() {
        // Type II-style: components of ≤ 24 nodes already give dense tiles.
        let comm = gen::community(4096, 30_000, 16, 24, 2).unwrap();
        let er = gen::erdos_renyi(4096, 30_000, 2).unwrap();
        let r_comm = census(&comm).reduction_pct();
        let r_er = census(&er).reduction_pct();
        assert!(
            r_comm < r_er,
            "Type II reduction {r_comm:.1}% should be below ER {r_er:.1}%"
        );
    }

    #[test]
    fn exact_census_on_hand_graph() {
        // One 16-row window; neighbors {0, 100, 200} from row 0.
        let g = CsrGraph::from_raw(
            256,
            {
                let mut p = vec![0usize; 257];
                p.iter_mut().skip(1).for_each(|x| *x = 3);
                p
            },
            vec![0, 100, 200],
        )
        .unwrap();
        let c = census(&g);
        // Window 0 (rows 0..16): raw col-blocks {0, 12, 25} → 3 tiles;
        // SGT: 3 unique → 1 tile. Other windows empty.
        assert_eq!(c.blocks_without_sgt, 3);
        assert_eq!(c.blocks_with_sgt, 1);
        assert!((c.reduction_pct() - 66.666).abs() < 0.1);
    }

    #[test]
    fn sddmm_census_uses_wider_tiles() {
        let g = gen::rmat_default(2048, 20_000, 3).unwrap();
        let spmm = census(&g);
        let sddmm = census_sddmm(&g);
        assert_eq!(sddmm.blk_w, 16);
        assert!(sddmm.blocks_without_sgt <= spmm.blocks_without_sgt);
        assert!(sddmm.blocks_with_sgt <= spmm.blocks_with_sgt);
    }

    #[test]
    fn empty_graph_census() {
        let g = CsrGraph::from_raw(0, vec![0], vec![]).unwrap();
        let c = census(&g);
        assert_eq!(c.blocks_without_sgt, 0);
        assert_eq!(c.reduction_pct(), 0.0);
    }
}
