//! SGT preprocessing-cost accounting (Figure 7(b)).
//!
//! The paper reports SGT's one-time cost at an average **4.43%** of
//! end-to-end training time. Comparing our *measured host wall-clock* for
//! SGT against *simulated GPU milliseconds* for training would mix two
//! clocks, so this module provides both:
//!
//! - [`measure_ms`]: actual wall-clock of running the translation here;
//! - [`model_ms`]: a calibrated cost model of SGT on the paper's platform
//!   (sort-dominated: `O(E log W)` with a per-edge constant fitted to a
//!   multi-core Xeon feeding an RTX 3090 training loop), used by the
//!   Figure 7(b) reproduction so numerator and denominator live on the same
//!   simulated clock.

use std::time::Instant;

use tcg_graph::CsrGraph;

use crate::translate::{Sgt, TranslatedGraph};

/// Per-edge processing cost of SGT on the modeled host, in nanoseconds.
///
/// Dominated by the per-window sort + dedup + binary-search mapping. The
/// translation parallelizes embarrassingly over row windows (the paper
/// notes this; `translate_parallel` implements it), so the modeled constant
/// reflects the paper's 8-core Xeon 4110 running all cores: ~7 ns of
/// amortized work per edge.
pub const HOST_NS_PER_EDGE: f64 = 7.0;

/// Fixed per-window cost (loop + allocation amortization), nanoseconds.
pub const HOST_NS_PER_WINDOW: f64 = 20.0;

/// Modeled one-time SGT cost in milliseconds on the reference platform.
pub fn model_ms(csr: &CsrGraph) -> f64 {
    let e = csr.num_edges() as f64;
    let w = csr.num_nodes().div_ceil(crate::TC_BLK_H) as f64;
    // log factor of the window-local sort; windows hold E/W edges on average.
    let avg = (e / w.max(1.0)).max(2.0);
    (e * HOST_NS_PER_EDGE * avg.log2().max(1.0) / 4.0 + w * HOST_NS_PER_WINDOW) / 1e6
}

/// Per-edge cost of *splicing* an untouched window during delta
/// translation, nanoseconds: a straight memcpy plus one offset add, far
/// below the sort-dominated [`HOST_NS_PER_EDGE`].
pub const HOST_NS_PER_SPLICED_EDGE: f64 = 0.5;

/// Modeled host cost of an incremental delta translation: the touched
/// windows pay the full sort-dominated per-edge rate of [`model_ms`], the
/// untouched remainder pays only the splice copy. Same simulated clock as
/// [`model_ms`], so the two are directly comparable (and
/// `model_delta_ms <= model_ms` whenever fewer than all windows are
/// touched).
pub fn model_delta_ms(csr: &CsrGraph, touched_windows: usize, retranslated_edges: usize) -> f64 {
    let e = retranslated_edges as f64;
    let w = touched_windows as f64;
    let avg = (e / w.max(1.0)).max(2.0);
    let spliced = (csr.num_edges().saturating_sub(retranslated_edges)) as f64;
    let total_w = csr.num_nodes().div_ceil(crate::TC_BLK_H) as f64;
    (e * HOST_NS_PER_EDGE * avg.log2().max(1.0) / 4.0
        + w * HOST_NS_PER_WINDOW
        + spliced * HOST_NS_PER_SPLICED_EDGE
        + (total_w - w).max(0.0) * HOST_NS_PER_WINDOW * 0.25)
        / 1e6
}

/// Runs the translation, returning it with measured wall-clock milliseconds.
pub fn measure_ms(csr: &CsrGraph) -> (TranslatedGraph, f64) {
    let start = Instant::now();
    let t = Sgt::builder()
        .translate(csr)
        .expect("default SGT geometry is valid");
    (t, start.elapsed().as_secs_f64() * 1e3)
}

/// Overhead percentage of a one-time cost against a recurring training run:
/// `100 · sgt / (sgt + epochs · epoch_cost)` — the Figure 7(b) quantity.
pub fn overhead_pct(sgt_ms: f64, epoch_ms: f64, epochs: u32) -> f64 {
    let total = sgt_ms + epoch_ms * f64::from(epochs);
    if total <= 0.0 {
        return 0.0;
    }
    100.0 * sgt_ms / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcg_graph::gen;

    #[test]
    fn model_scales_with_edges() {
        let small = gen::erdos_renyi(1000, 5_000, 1).unwrap();
        let large = gen::erdos_renyi(1000, 50_000, 1).unwrap();
        assert!(model_ms(&large) > 5.0 * model_ms(&small));
        assert!(model_ms(&small) > 0.0);
    }

    #[test]
    fn measure_returns_translation_and_positive_time() {
        let g = gen::rmat_default(4096, 40_000, 2).unwrap();
        let (t, ms) = measure_ms(&g);
        assert_eq!(t.edge_to_col.len(), g.num_edges());
        assert!(ms >= 0.0);
    }

    #[test]
    fn delta_model_cheaper_than_full_when_few_windows_touched() {
        let g = gen::erdos_renyi(4000, 40_000, 2).unwrap();
        let full = model_ms(&g);
        // One touched window holding ~avg edges.
        let avg_edges = g.num_edges() / g.num_nodes().div_ceil(crate::TC_BLK_H);
        let delta = model_delta_ms(&g, 1, avg_edges);
        assert!(delta < full, "delta {delta} ms vs full {full} ms");
        // Touching everything costs at least the full translation's edge work.
        let all = model_delta_ms(&g, g.num_nodes().div_ceil(crate::TC_BLK_H), g.num_edges());
        assert!(all >= full * 0.9);
    }

    #[test]
    fn overhead_amortizes_with_epochs() {
        let one = overhead_pct(10.0, 5.0, 1);
        let many = overhead_pct(10.0, 5.0, 200);
        assert!(one > 60.0);
        assert!(many < 2.0);
        assert!(overhead_pct(0.0, 0.0, 0) == 0.0);
    }
}
