//! The translation itself: Algorithm 1, sequential and parallel.

use serde::{Deserialize, Serialize};
use tcg_fault::TcgError;
use tcg_graph::{CsrGraph, NodeId};

use crate::{TC_BLK_H, TC_BLK_W};

/// Shorthand for building a [`TcgError::CorruptMeta`].
fn corrupt(what: &'static str, detail: String) -> TcgError {
    TcgError::CorruptMeta { what, detail }
}

/// The output of Sparse Graph Translation over a CSR graph.
///
/// Core fields follow the paper's Algorithm 1: `win_partition[w]` is the
/// number of `TC_BLK_H × TC_BLK_W` TCU blocks in row window `w`;
/// `edge_to_col[e]` is the condensed column index (window-local) of edge
/// `e`; `edge_to_row[e]` is the source row of edge `e`.
///
/// The `perm_*` arrays implement Algorithm 2's `GetChunk`: within each
/// window, edges are re-ordered by condensed column so that every TC block
/// owns a *contiguous chunk* (`block_ptr`) — the kernels stream exactly
/// their chunk instead of filtering the whole window per block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranslatedGraph {
    /// Row-window height used (16 for TF-32).
    pub win_size: usize,
    /// TCU operand tile width used (8 for TF-32).
    pub blk_w: usize,
    /// Number of row windows (`ceil(num_nodes / win_size)`).
    pub num_row_windows: usize,
    /// TC blocks per row window: `ceil(unique_neighbors / blk_w)`.
    pub win_partition: Vec<u32>,
    /// Condensed column per edge, indexed by global edge id.
    pub edge_to_col: Vec<u32>,
    /// Source row per edge, indexed by global edge id.
    pub edge_to_row: Vec<NodeId>,
    /// Distinct neighbor count per row window (`eArrClean.size`).
    pub win_unique: Vec<u32>,
    /// Prefix sums of `win_partition`: window `w`'s blocks are the global
    /// block ids `[win_block_start[w], win_block_start[w + 1])`.
    pub win_block_start: Vec<usize>,
    /// Edge-chunk offsets per global block id (length `total_blocks + 1`):
    /// block `b` owns sorted positions `[block_ptr[b], block_ptr[b + 1])`.
    pub block_ptr: Vec<usize>,
    /// Original edge id at each sorted position.
    pub perm_orig: Vec<u32>,
    /// Packed tile coordinate at each sorted position:
    /// `row_in_window * blk_w + col_in_block`, one byte per edge (valid
    /// because `win_size × blk_w ≤ 256`). Kernels stream this instead of
    /// separate row/column arrays — 1 B of metadata per non-zero.
    pub perm_pack: Vec<u8>,
    /// Per-block `sparse_AToX_index` storage: the unique neighbor ids of
    /// block `b`, in condensed-column order, at
    /// `block_atox[block_atox_ptr[b] .. block_atox_ptr[b + 1]]`.
    pub block_atox: Vec<NodeId>,
    /// Offsets into [`TranslatedGraph::block_atox`] (length
    /// `total_blocks + 1`).
    pub block_atox_ptr: Vec<usize>,
}

impl TranslatedGraph {
    /// Total TCU blocks across all windows (SpMM mode, operand tiles).
    pub fn total_tc_blocks(&self) -> u64 {
        self.win_partition.iter().map(|&b| b as u64).sum()
    }

    /// Total TCU blocks when the translated graph drives SDDMM, where the
    /// sparse tile is the `16×16` *output* and two SpMM-width block columns
    /// fuse into one (paper Listing 3 line 9:
    /// `(blockPartition[bid]·BLK_W + BLK_H − 1) / BLK_H`).
    pub fn total_sddmm_blocks(&self) -> u64 {
        self.win_partition
            .iter()
            .map(|&b| (b as u64 * TC_BLK_W as u64).div_ceil(TC_BLK_H as u64))
            .sum()
    }

    /// Edge index range `[start, end)` of row window `w` in the CSR arrays.
    ///
    /// Returns [`TcgError::InvalidInput`] if `w` is not a window of this
    /// translation, and [`TcgError::CorruptMeta`] if the graph does not have
    /// the node count this translation was built for (a mismatched
    /// graph/translation pair would otherwise read out of bounds).
    pub fn window_edge_range(&self, csr: &CsrGraph, w: usize) -> Result<(usize, usize), TcgError> {
        if w >= self.num_row_windows {
            return Err(TcgError::InvalidInput {
                what: "sgt window index",
                detail: format!(
                    "window {w} out of range: translation has {} row windows",
                    self.num_row_windows
                ),
            });
        }
        if self.num_row_windows != csr.num_nodes().div_ceil(self.win_size) {
            return Err(corrupt(
                "window_edge_range",
                format!(
                    "translation has {} windows but graph has {} nodes at win_size {}",
                    self.num_row_windows,
                    csr.num_nodes(),
                    self.win_size
                ),
            ));
        }
        Ok(self.window_edge_range_unchecked(csr, w))
    }

    /// [`Self::window_edge_range`] without the range checks, for internal
    /// loops where `w < num_row_windows` holds by construction.
    #[inline]
    fn window_edge_range_unchecked(&self, csr: &CsrGraph, w: usize) -> (usize, usize) {
        let lo = w * self.win_size;
        let hi = ((w + 1) * self.win_size).min(csr.num_nodes());
        (csr.node_pointer()[lo], csr.node_pointer()[hi])
    }

    /// Per-window edge spans recovered from the translation itself (no CSR
    /// needed): entry `w` is the first global edge id of window `w`, entry
    /// `num_row_windows` is the edge count. Windows tile edge space
    /// contiguously and each non-empty window's chunks start/end at its CSR
    /// edge range (a [`Self::validate`] invariant), so the spans can be read
    /// back off `block_ptr`.
    pub(crate) fn window_edge_spans(&self) -> Vec<usize> {
        let mut spans = Vec::with_capacity(self.num_row_windows + 1);
        spans.push(0usize);
        let mut cursor = 0usize;
        for w in 0..self.num_row_windows {
            let (b_lo, b_hi) = (self.win_block_start[w], self.win_block_start[w + 1]);
            if b_lo < b_hi {
                cursor = self.block_ptr[b_hi];
            }
            spans.push(cursor);
        }
        spans
    }

    /// The sorted-position range of global block `b` (Algorithm 2's
    /// `GetChunk`).
    #[inline]
    pub fn block_chunk(&self, b: usize) -> (usize, usize) {
        (self.block_ptr[b], self.block_ptr[b + 1])
    }

    /// The unique neighbor ids (condensed-column order) of global block `b`
    /// — the `sparse_AToX_index` contents.
    #[inline]
    pub fn block_atox(&self, b: usize) -> &[NodeId] {
        &self.block_atox[self.block_atox_ptr[b]..self.block_atox_ptr[b + 1]]
    }

    /// Decodes a packed coordinate to `(row_in_window, col_in_block)`.
    #[inline]
    pub fn unpack(&self, pack: u8) -> (usize, usize) {
        (pack as usize / self.blk_w, pack as usize % self.blk_w)
    }

    /// Stable FNV-1a content checksum over every field of the translation.
    ///
    /// `O(E)` but branch-free and allocation-free — cheap enough for the
    /// serving cache to verify on every hit, orders of magnitude cheaper
    /// than a full [`TranslatedGraph::validate`] pass. Any single-bit
    /// mutation of any array (a poisoned cache entry) changes the digest.
    pub fn checksum(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
        };
        eat(self.win_size as u64);
        eat(self.blk_w as u64);
        eat(self.num_row_windows as u64);
        for &v in &self.win_partition {
            eat(u64::from(v));
        }
        for &v in &self.edge_to_col {
            eat(u64::from(v));
        }
        for &v in &self.edge_to_row {
            eat(u64::from(v));
        }
        for &v in &self.win_unique {
            eat(u64::from(v));
        }
        for &v in &self.win_block_start {
            eat(v as u64);
        }
        for &v in &self.block_ptr {
            eat(v as u64);
        }
        for &v in &self.perm_orig {
            eat(u64::from(v));
        }
        for &v in &self.perm_pack {
            eat(u64::from(v));
        }
        for &v in &self.block_atox {
            eat(u64::from(v));
        }
        for &v in &self.block_atox_ptr {
            eat(v as u64);
        }
        h
    }

    /// Content checksum of row window `w` alone, normalized to be
    /// *window-local*: edge ids are hashed relative to the window's first
    /// edge and rows relative to its first row, so the digest depends only
    /// on the window's own translated structure — never on how many edges
    /// precede it. An edit elsewhere in the graph leaves it unchanged, which
    /// is what lets delta-translation verify untouched windows cheaply.
    ///
    /// Returns [`TcgError::InvalidInput`] on an out-of-range window.
    pub fn window_fingerprint(&self, w: usize) -> Result<u64, TcgError> {
        if w >= self.num_row_windows {
            return Err(TcgError::InvalidInput {
                what: "sgt window index",
                detail: format!(
                    "window {w} out of range: translation has {} row windows",
                    self.num_row_windows
                ),
            });
        }
        let spans = self.window_edge_spans();
        Ok(self.window_fingerprint_with_span(w, spans[w], spans[w + 1]))
    }

    /// [`Self::window_fingerprint`] for every window, in one `O(E)` pass.
    pub fn window_fingerprints(&self) -> Vec<u64> {
        let spans = self.window_edge_spans();
        (0..self.num_row_windows)
            .map(|w| self.window_fingerprint_with_span(w, spans[w], spans[w + 1]))
            .collect()
    }

    fn window_fingerprint_with_span(&self, w: usize, e_lo: usize, e_hi: usize) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
        };
        let row_lo = (w * self.win_size) as u64;
        eat(self.win_size as u64);
        eat(self.blk_w as u64);
        eat(u64::from(self.win_partition[w]));
        eat(u64::from(self.win_unique[w]));
        eat((e_hi - e_lo) as u64);
        for e in e_lo..e_hi {
            eat(u64::from(self.edge_to_col[e]));
            eat(u64::from(self.edge_to_row[e]).wrapping_sub(row_lo));
        }
        let (b_lo, b_hi) = (self.win_block_start[w], self.win_block_start[w + 1]);
        for b in b_lo..b_hi {
            eat((self.block_ptr[b + 1] - self.block_ptr[b]) as u64);
            for pos in self.block_ptr[b]..self.block_ptr[b + 1] {
                eat(u64::from(self.perm_pack[pos]));
                eat(u64::from(self.perm_orig[pos]).wrapping_sub(e_lo as u64));
            }
            let atox = &self.block_atox[self.block_atox_ptr[b]..self.block_atox_ptr[b + 1]];
            eat(atox.len() as u64);
            for &nid in atox {
                eat(u64::from(nid));
            }
        }
        h
    }

    /// Validates the translation against its source graph, returning
    /// [`TcgError::CorruptMeta`] on the first violated invariant.
    ///
    /// Checked invariants (the ones the TCU kernels silently rely on):
    ///
    /// - array extents: per-edge arrays match `csr.num_edges()`, per-window
    ///   arrays match `num_row_windows`, offset arrays are one longer than
    ///   what they index;
    /// - window partitioning: `win_partition[w] = ceil(win_unique[w] /
    ///   blk_w)` and `win_block_start` is its prefix sum;
    /// - chunking: `block_ptr` is monotone, tiles each window's CSR edge
    ///   range exactly, and ends at `num_edges`;
    /// - edge→condensed-column bounds: every `edge_to_col[e]` is below its
    ///   window's unique count, every `edge_to_row[e]` is inside its window;
    /// - dedup consistency: decoding each chunk position reproduces
    ///   `edge_to_row`/`edge_to_col`, `perm_orig` is a permutation of the
    ///   edge ids, and each block's `AToX` slot maps its condensed column
    ///   back to the edge's original neighbor id.
    ///
    /// Cost is `O(E)` — intended to run once per translation, before the
    /// first kernel launch, not per launch.
    pub fn validate(&self, csr: &CsrGraph) -> Result<(), TcgError> {
        let num_edges = csr.num_edges();
        let n = csr.num_nodes();
        if self.win_size == 0 || self.blk_w == 0 {
            return Err(corrupt(
                "geometry",
                format!("win_size {} x blk_w {}", self.win_size, self.blk_w),
            ));
        }
        if self.num_row_windows != n.div_ceil(self.win_size) {
            return Err(corrupt(
                "num_row_windows",
                format!(
                    "{} windows for {} nodes at win_size {}",
                    self.num_row_windows, n, self.win_size
                ),
            ));
        }
        for (what, len, expect) in [
            (
                "win_partition",
                self.win_partition.len(),
                self.num_row_windows,
            ),
            ("win_unique", self.win_unique.len(), self.num_row_windows),
            (
                "win_block_start",
                self.win_block_start.len(),
                self.num_row_windows + 1,
            ),
            ("edge_to_col", self.edge_to_col.len(), num_edges),
            ("edge_to_row", self.edge_to_row.len(), num_edges),
            ("perm_orig", self.perm_orig.len(), num_edges),
            ("perm_pack", self.perm_pack.len(), num_edges),
        ] {
            if len != expect {
                return Err(corrupt(what, format!("length {len}, expected {expect}")));
            }
        }
        if self.win_block_start.first() != Some(&0) {
            return Err(corrupt("win_block_start", "does not start at 0".into()));
        }
        for w in 0..self.num_row_windows {
            let blocks = (self.win_unique[w] as usize).div_ceil(self.blk_w);
            if self.win_partition[w] as usize != blocks {
                return Err(corrupt(
                    "win_partition",
                    format!(
                        "window {w}: {} blocks for {} unique neighbors (blk_w {})",
                        self.win_partition[w], self.win_unique[w], self.blk_w
                    ),
                ));
            }
            if self.win_block_start[w + 1] != self.win_block_start[w] + blocks {
                return Err(corrupt(
                    "win_block_start",
                    format!("window {w}: prefix sum breaks"),
                ));
            }
        }
        let total_blocks = *self.win_block_start.last().unwrap();
        if self.block_ptr.len() != total_blocks + 1 {
            return Err(corrupt(
                "block_ptr",
                format!(
                    "length {}, expected {}",
                    self.block_ptr.len(),
                    total_blocks + 1
                ),
            ));
        }
        if self.block_atox_ptr.len() != total_blocks + 1 {
            return Err(corrupt(
                "block_atox_ptr",
                format!(
                    "length {}, expected {}",
                    self.block_atox_ptr.len(),
                    total_blocks + 1
                ),
            ));
        }
        if self.block_ptr.first() != Some(&0) || *self.block_ptr.last().unwrap() != num_edges {
            return Err(corrupt(
                "block_ptr",
                format!(
                    "chunks cover {:?}, expected 0..{num_edges}",
                    (self.block_ptr.first(), self.block_ptr.last())
                ),
            ));
        }
        if self.block_atox_ptr.first() != Some(&0)
            || *self.block_atox_ptr.last().unwrap() != self.block_atox.len()
        {
            return Err(corrupt(
                "block_atox_ptr",
                "offsets do not cover block_atox".into(),
            ));
        }
        for b in 0..total_blocks {
            if self.block_ptr[b] > self.block_ptr[b + 1] {
                return Err(corrupt("block_ptr", format!("block {b}: not monotone")));
            }
            if self.block_atox_ptr[b] > self.block_atox_ptr[b + 1] {
                return Err(corrupt(
                    "block_atox_ptr",
                    format!("block {b}: not monotone"),
                ));
            }
        }
        let edge_list = csr.edge_list();
        let mut seen = vec![false; num_edges];
        for w in 0..self.num_row_windows {
            let (e_lo, e_hi) = self.window_edge_range_unchecked(csr, w);
            let (b_lo, b_hi) = (self.win_block_start[w], self.win_block_start[w + 1]);
            if b_lo < b_hi && (self.block_ptr[b_lo] != e_lo || self.block_ptr[b_hi] != e_hi) {
                return Err(corrupt(
                    "block_ptr",
                    format!("window {w}: chunks do not tile CSR edge range {e_lo}..{e_hi}"),
                ));
            }
            if b_lo == b_hi && e_lo != e_hi {
                return Err(corrupt(
                    "win_partition",
                    format!("window {w}: {} edges but zero blocks", e_hi - e_lo),
                ));
            }
            let unique = self.win_unique[w] as usize;
            for e in e_lo..e_hi {
                if self.edge_to_col[e] as usize >= unique {
                    return Err(corrupt(
                        "edge_to_col",
                        format!(
                            "edge {e} maps to condensed column {} of {unique} in window {w}",
                            self.edge_to_col[e]
                        ),
                    ));
                }
                let row = self.edge_to_row[e] as usize;
                if row < w * self.win_size || row >= ((w + 1) * self.win_size).min(n) {
                    return Err(corrupt(
                        "edge_to_row",
                        format!("edge {e}: row {row} outside window {w}"),
                    ));
                }
            }
            for b in b_lo..b_hi {
                let local_b = b - b_lo;
                let atox_len = self.block_atox_ptr[b + 1] - self.block_atox_ptr[b];
                let expect_slots = unique.saturating_sub(local_b * self.blk_w).min(self.blk_w);
                if atox_len != expect_slots {
                    return Err(corrupt(
                        "block_atox",
                        format!("block {b}: {atox_len} AToX slots, expected {expect_slots}"),
                    ));
                }
                let atox = &self.block_atox[self.block_atox_ptr[b]..self.block_atox_ptr[b + 1]];
                let (lo, hi) = (self.block_ptr[b], self.block_ptr[b + 1]);
                for pos in lo..hi {
                    let e = self.perm_orig[pos] as usize;
                    if e >= num_edges {
                        return Err(corrupt(
                            "perm_orig",
                            format!("position {pos}: edge id {e} out of range"),
                        ));
                    }
                    if seen[e] {
                        return Err(corrupt(
                            "perm_orig",
                            format!("edge {e} appears twice (not a permutation)"),
                        ));
                    }
                    seen[e] = true;
                    let (r, c) = self.unpack(self.perm_pack[pos]);
                    if w * self.win_size + r != self.edge_to_row[e] as usize {
                        return Err(corrupt(
                            "perm_pack",
                            format!("position {pos}: packed row disagrees with edge_to_row"),
                        ));
                    }
                    if local_b * self.blk_w + c != self.edge_to_col[e] as usize {
                        return Err(corrupt(
                            "perm_pack",
                            format!("position {pos}: packed column disagrees with edge_to_col"),
                        ));
                    }
                    if c >= atox.len() || atox[c] != edge_list[e] {
                        return Err(corrupt(
                            "block_atox",
                            format!(
                                "block {b}: column {c} does not map back to edge {e}'s neighbor"
                            ),
                        ));
                    }
                }
            }
        }
        if let Some(e) = seen.iter().position(|&s| !s) {
            return Err(corrupt(
                "perm_orig",
                format!("edge {e} never appears in any chunk"),
            ));
        }
        Ok(())
    }

    /// Memory footprint of the translation metadata in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.win_partition.len() * 4
            + self.win_unique.len() * 4
            + self.edge_to_col.len() * 4
            + self.edge_to_row.len() * 4
            + self.win_block_start.len() * 8
            + self.block_ptr.len() * 8
            + self.perm_orig.len() * 4
            + self.perm_pack.len()
            + self.block_atox.len() * 4
            + self.block_atox_ptr.len() * 8
    }
}

/// Per-window translation result, assembled into the global arrays after
/// all windows are processed (keeps the parallel path trivially safe).
pub(crate) struct WindowOut {
    pub(crate) unique: u32,
    pub(crate) blocks: u32,
    /// `(col, row, orig_edge, nid)` sorted by `col` (stable in edge order).
    pub(crate) sorted: Vec<(u32, NodeId, u32, NodeId)>,
}

pub(crate) fn translate_window(
    csr: &CsrGraph,
    w: usize,
    win_size: usize,
    blk_w: usize,
    edge_to_col: &mut [u32],
    edge_to_row: &mut [NodeId],
    edge_base: usize,
) -> WindowOut {
    let node_pointer = csr.node_pointer();
    let edge_list = csr.edge_list();
    let n = csr.num_nodes();
    let row_lo = w * win_size;
    let row_hi = ((w + 1) * win_size).min(n);
    let win_start = node_pointer[row_lo];
    let win_end = node_pointer[row_hi];

    // Sort + deduplicate the neighbor ids of this window (Algorithm 1
    // lines 5-6: `Sort`, `Deduplication`).
    let mut uniq: Vec<NodeId> = edge_list[win_start..win_end].to_vec();
    uniq.sort_unstable();
    uniq.dedup();

    // Edges-to-column mapping (lines 8-10): the condensed column of an edge
    // is the rank of its neighbor among the window's distinct neighbors.
    let mut sorted: Vec<(u32, NodeId, u32, NodeId)> = Vec::with_capacity(win_end - win_start);
    for r in row_lo..row_hi {
        for e in node_pointer[r]..node_pointer[r + 1] {
            let nid = edge_list[e];
            let col =
                uniq.binary_search(&nid)
                    .expect("neighbor is in the window's deduplicated set") as u32;
            edge_to_col[e - edge_base] = col;
            edge_to_row[e - edge_base] = r as NodeId;
            sorted.push((col, r as NodeId, e as u32, nid));
        }
    }
    // Column-major chunking for Algorithm 2's GetChunk.
    sorted.sort_by_key(|t| t.0);

    WindowOut {
        unique: uniq.len() as u32,
        blocks: uniq.len().div_ceil(blk_w) as u32,
        sorted,
    }
}

/// The per-block output arrays Algorithm 2 appends to, bundled so window
/// assembly has a single append target shared by from-scratch translation
/// and delta-retranslation splicing.
pub(crate) struct BlockArrays {
    pub(crate) block_ptr: Vec<usize>,
    pub(crate) perm_orig: Vec<u32>,
    pub(crate) perm_pack: Vec<u8>,
    pub(crate) block_atox: Vec<NodeId>,
    pub(crate) block_atox_ptr: Vec<usize>,
}

impl BlockArrays {
    /// Empty arrays with the leading sentinel 0 in both pointer vectors.
    pub(crate) fn with_capacity(total_blocks: usize, num_edges: usize, atox: usize) -> Self {
        let mut block_ptr = Vec::with_capacity(total_blocks + 1);
        block_ptr.push(0usize);
        let mut block_atox_ptr = Vec::with_capacity(total_blocks + 1);
        block_atox_ptr.push(0usize);
        Self {
            block_ptr,
            perm_orig: Vec::with_capacity(num_edges),
            perm_pack: Vec::with_capacity(num_edges),
            block_atox: Vec::with_capacity(atox),
            block_atox_ptr,
        }
    }
}

/// Appends one window's chunked output (Algorithm 2's `GetChunk`) onto the
/// global arrays. The append is *local*: it only reads the running tails of
/// the output vectors, so the same code path serves both from-scratch
/// assembly and delta-retranslation splicing — a touched window re-assembled
/// here is bitwise-identical to what a full translation would produce.
pub(crate) fn assemble_window_into(
    o: &WindowOut,
    w: usize,
    win_size: usize,
    blk_w: usize,
    out: &mut BlockArrays,
) {
    let row_base = (w * win_size) as u32;
    let mut cursor = 0usize;
    for b in 0..o.blocks as usize {
        let col_lo = (b * blk_w) as u32;
        let col_hi = col_lo + blk_w as u32;
        while cursor < o.sorted.len() && o.sorted[cursor].0 < col_hi {
            let (col, row, orig, nid) = o.sorted[cursor];
            let r_in_win = (row - row_base) as usize;
            let c_in_blk = (col - col_lo) as usize;
            out.perm_pack.push((r_in_win * blk_w + c_in_blk) as u8);
            out.perm_orig.push(orig);
            // AToX: first occurrence of each condensed column.
            let local = out.block_atox_ptr.last().unwrap() + c_in_blk;
            if out.block_atox.len() <= local {
                out.block_atox.resize(local + 1, NodeId::MAX);
            }
            out.block_atox[local] = nid;
            cursor += 1;
        }
        // Columns inside a block are dense (condensation), so the block
        // owns exactly `min(blk_w, unique - col_lo)` AToX slots.
        let slots = (o.unique as usize).saturating_sub(b * blk_w).min(blk_w);
        let base = *out.block_atox_ptr.last().unwrap();
        if out.block_atox.len() < base + slots {
            out.block_atox.resize(base + slots, NodeId::MAX);
        }
        out.block_atox_ptr.push(base + slots);
        out.block_ptr.push(out.perm_pack.len());
    }
    debug_assert_eq!(cursor, o.sorted.len());
}

fn assemble(
    csr: &CsrGraph,
    win_size: usize,
    blk_w: usize,
    outs: Vec<WindowOut>,
    edge_to_col: Vec<u32>,
    edge_to_row: Vec<NodeId>,
) -> TranslatedGraph {
    let num_row_windows = outs.len();
    let num_edges = csr.num_edges();
    let mut win_partition = Vec::with_capacity(num_row_windows);
    let mut win_unique = Vec::with_capacity(num_row_windows);
    let mut win_block_start = Vec::with_capacity(num_row_windows + 1);
    win_block_start.push(0usize);
    for o in &outs {
        win_partition.push(o.blocks);
        win_unique.push(o.unique);
        win_block_start.push(win_block_start.last().unwrap() + o.blocks as usize);
    }
    let total_blocks = *win_block_start.last().unwrap();

    let mut arrays = BlockArrays::with_capacity(total_blocks, num_edges, 0);
    for (w, o) in outs.iter().enumerate() {
        assemble_window_into(o, w, win_size, blk_w, &mut arrays);
    }

    TranslatedGraph {
        win_size,
        blk_w,
        num_row_windows,
        win_partition,
        edge_to_col,
        edge_to_row,
        win_unique,
        win_block_start,
        block_ptr: arrays.block_ptr,
        perm_orig: arrays.perm_orig,
        perm_pack: arrays.perm_pack,
        block_atox: arrays.block_atox,
        block_atox_ptr: arrays.block_atox_ptr,
    }
}

/// Whether `TCG_VERIFY=1` is set: every translation is then hard-validated
/// against its source graph before being returned.
fn verify_requested() -> bool {
    std::env::var("TCG_VERIFY")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Post-translation self-check run at the end of every translation path.
///
/// Under `TCG_VERIFY=1` the full [`TranslatedGraph::validate`] pass runs and
/// corruption surfaces as a typed [`TcgError::CorruptMeta`]. Otherwise the
/// check runs only in debug builds (like a `debug_assert!`), where a failure
/// means the translator itself is buggy and panicking is the right response.
/// Cost is `O(E)`, the same order as translation.
pub(crate) fn post_validate(t: &TranslatedGraph, csr: &CsrGraph) -> Result<(), TcgError> {
    if verify_requested() {
        return t.validate(csr);
    }
    #[cfg(debug_assertions)]
    if let Err(e) = t.validate(csr) {
        panic!("SGT produced a corrupt translation: {e}");
    }
    Ok(())
}

/// Entry point to the fluent SGT API: [`Sgt::builder`] mirrors
/// [`Engine::builder`] from `tcg-gnn`.
///
/// ```ignore
/// let t = Sgt::builder().window(16).block_width(8).threads(4).translate(&csr)?;
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Sgt;

impl Sgt {
    /// Starts a translation builder with the paper's TF-32 geometry
    /// (`16 × 8`) and a single thread.
    pub fn builder() -> SgtBuilder {
        SgtBuilder::default()
    }
}

/// Fluent configuration for a Sparse Graph Translation run.
///
/// Replaces the old free-function trio `translate` / `translate_with` /
/// `translate_parallel`: geometry and parallelism are named knobs, and the
/// terminal [`SgtBuilder::translate`] call returns a typed error on invalid
/// geometry instead of panicking. The builder is `Copy`, so one configured
/// instance can translate many graphs.
#[derive(Debug, Clone, Copy)]
#[must_use]
pub struct SgtBuilder {
    win_size: usize,
    blk_w: usize,
    threads: usize,
}

impl Default for SgtBuilder {
    fn default() -> Self {
        SgtBuilder {
            win_size: TC_BLK_H,
            blk_w: TC_BLK_W,
            threads: 1,
        }
    }
}

impl SgtBuilder {
    /// Row-window height (the paper's `TC_BLK_H`, 16 for TF-32).
    pub fn window(mut self, win_size: usize) -> Self {
        self.win_size = win_size;
        self
    }

    /// TCU operand tile width (the paper's `TC_BLK_W`, 8 for TF-32).
    pub fn block_width(mut self, blk_w: usize) -> Self {
        self.blk_w = blk_w;
        self
    }

    /// Host threads for the window loop. Values `<= 1` run sequentially;
    /// graphs with fewer than `2 * threads` windows fall back to the
    /// sequential path (the split overhead would dominate).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Runs Algorithm 1 (+ Algorithm 2's `GetChunk`) over `csr`.
    ///
    /// Rejects zero or byte-overflowing window geometry
    /// (`win_size * blk_w > 256`) with [`TcgError::InvalidInput`]. Row
    /// windows are independent (the paper notes SGT "can be easily
    /// parallelized"), so with `threads > 1` windows are split across scoped
    /// threads and assembly of the global arrays is a cheap serial pass —
    /// the result is bitwise-identical to the sequential path.
    pub fn translate(&self, csr: &CsrGraph) -> Result<TranslatedGraph, TcgError> {
        let (win_size, blk_w) = (self.win_size, self.blk_w);
        if win_size == 0 || blk_w == 0 {
            return Err(TcgError::InvalidInput {
                what: "sgt window geometry",
                detail: format!("win_size {win_size} x blk_w {blk_w} must be positive"),
            });
        }
        if win_size * blk_w > 256 {
            return Err(TcgError::InvalidInput {
                what: "sgt window geometry",
                detail: format!(
                    "win_size {win_size} x blk_w {blk_w} > 256: packed coordinate must fit one byte"
                ),
            });
        }
        let n = csr.num_nodes();
        let num_row_windows = n.div_ceil(win_size);
        let mut edge_to_col = vec![0u32; csr.num_edges()];
        let mut edge_to_row = vec![0 as NodeId; csr.num_edges()];

        let outs: Vec<WindowOut> = if self.threads == 1 || num_row_windows < 2 * self.threads {
            (0..num_row_windows)
                .map(|w| {
                    translate_window(
                        csr,
                        w,
                        win_size,
                        blk_w,
                        &mut edge_to_col,
                        &mut edge_to_row,
                        0,
                    )
                })
                .collect()
        } else {
            let per = num_row_windows.div_ceil(self.threads);
            let node_pointer = csr.node_pointer();

            // Split the per-edge outputs into disjoint window-aligned slices.
            let mut ec_rest: &mut [u32] = &mut edge_to_col;
            let mut er_rest: &mut [NodeId] = &mut edge_to_row;
            let mut jobs = Vec::new();
            let mut w0 = 0usize;
            while w0 < num_row_windows {
                let w1 = (w0 + per).min(num_row_windows);
                let e0 = node_pointer[w0 * win_size];
                let e1 = node_pointer[(w1 * win_size).min(n)];
                let (ec, rest) = ec_rest.split_at_mut(e1 - e0);
                ec_rest = rest;
                let (er, rest) = er_rest.split_at_mut(e1 - e0);
                er_rest = rest;
                jobs.push((w0, w1, e0, ec, er));
                w0 = w1;
            }

            let mut chunk_outs: Vec<(usize, Vec<WindowOut>)> = std::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .into_iter()
                    .map(|(w_lo, w_hi, e_base, ec, er)| {
                        scope.spawn(move || {
                            let outs: Vec<WindowOut> = (w_lo..w_hi)
                                .map(|w| translate_window(csr, w, win_size, blk_w, ec, er, e_base))
                                .collect();
                            (w_lo, outs)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sgt worker panicked"))
                    .collect()
            });

            chunk_outs.sort_by_key(|(w_lo, _)| *w_lo);
            chunk_outs.into_iter().flat_map(|(_, o)| o).collect()
        };

        let t = assemble(csr, win_size, blk_w, outs, edge_to_col, edge_to_row);
        post_validate(&t, csr)?;
        Ok(t)
    }
}

/// Runs SGT with custom window geometry.
///
/// # Panics
///
/// Panics if `win_size * blk_w > 256` (the packed-coordinate byte would
/// overflow).
#[deprecated(note = "use `Sgt::builder().window(..).block_width(..).translate(&csr)`")]
pub fn translate_with(csr: &CsrGraph, win_size: usize, blk_w: usize) -> TranslatedGraph {
    Sgt::builder()
        .window(win_size)
        .block_width(blk_w)
        .translate(csr)
        .expect("valid SGT window geometry")
}

/// Fallible [`translate_with`]: rejects bad window geometry with
/// [`TcgError::InvalidInput`] instead of panicking.
#[deprecated(note = "use `Sgt::builder().window(..).block_width(..).translate(&csr)`")]
pub fn try_translate_with(
    csr: &CsrGraph,
    win_size: usize,
    blk_w: usize,
) -> Result<TranslatedGraph, TcgError> {
    Sgt::builder()
        .window(win_size)
        .block_width(blk_w)
        .translate(csr)
}

/// Runs SGT with the paper's TF-32 geometry (`16 × 8`).
#[deprecated(note = "use `Sgt::builder().translate(&csr)`")]
pub fn translate(csr: &CsrGraph) -> TranslatedGraph {
    Sgt::builder()
        .translate(csr)
        .expect("default SGT geometry is valid")
}

/// Parallel SGT over the default geometry.
#[deprecated(note = "use `Sgt::builder().threads(n).translate(&csr)`")]
pub fn translate_parallel(csr: &CsrGraph, threads: usize) -> TranslatedGraph {
    Sgt::builder()
        .threads(threads)
        .translate(csr)
        .expect("default SGT geometry is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcg_graph::gen;

    /// The paper's Figure 4 example, adapted: an 8-node graph, window = 4.
    fn figure4_like() -> CsrGraph {
        // Rows 0..4 reference scattered columns {1, 5, 6}, {5}, {1, 6}, {6}.
        CsrGraph::from_raw(
            8,
            vec![0, 3, 4, 6, 7, 7, 7, 7, 7],
            vec![1, 5, 6, 5, 1, 6, 6],
        )
        .unwrap()
    }

    #[test]
    fn condenses_columns_by_rank() {
        let g = figure4_like();
        let t = Sgt::builder()
            .window(4)
            .block_width(2)
            .translate(&g)
            .unwrap();
        // Window 0: distinct neighbors {1, 5, 6} → cols {0, 1, 2}.
        assert_eq!(t.win_unique[0], 3);
        assert_eq!(t.win_partition[0], 2); // ceil(3/2)
        assert_eq!(t.edge_to_col[0..7], [0, 1, 2, 1, 0, 2, 2]);
        assert_eq!(t.edge_to_row.to_vec(), vec![0, 0, 0, 1, 2, 2, 3]);
        // Window 1 is empty.
        assert_eq!(t.win_unique[1], 0);
        assert_eq!(t.win_partition[1], 0);
    }

    #[test]
    fn chunks_partition_edges_by_column_frame() {
        let g = figure4_like();
        let t = Sgt::builder()
            .window(4)
            .block_width(2)
            .translate(&g)
            .unwrap();
        // Block 0 of window 0 owns cols {0, 1}: edges with col 0 or 1.
        let (lo, hi) = t.block_chunk(0);
        assert!(t.perm_pack[lo..hi].iter().all(|&p| t.unpack(p).1 < 2));
        // Block 1 owns col 2, which is local column 0 of that block.
        let (lo2, hi2) = t.block_chunk(1);
        assert_eq!(lo2, hi);
        assert!(t.perm_pack[lo2..hi2].iter().all(|&p| t.unpack(p).1 == 0));
        assert_eq!(hi2, 7, "all 7 edges chunked");
        // AToX of block 0 is {1, 5}; of block 1 is {6}.
        assert_eq!(t.block_atox(0), &[1, 5]);
        assert_eq!(t.block_atox(1), &[6]);
    }

    #[test]
    fn perm_is_a_permutation_consistent_with_maps() {
        let g = gen::rmat_default(2048, 20_000, 2).unwrap();
        let t = Sgt::builder().translate(&g).unwrap();
        let mut seen = vec![false; g.num_edges()];
        for b in 0..t.total_tc_blocks() as usize {
            let w = t
                .win_block_start
                .partition_point(|&s| s <= b)
                .saturating_sub(1);
            let local_b = b - t.win_block_start[w];
            let atox = t.block_atox(b);
            let (lo, hi) = t.block_chunk(b);
            for pos in lo..hi {
                let e = t.perm_orig[pos] as usize;
                assert!(!seen[e]);
                seen[e] = true;
                let (r, c) = t.unpack(t.perm_pack[pos]);
                assert_eq!(
                    (w * t.win_size + r) as u32,
                    t.edge_to_row[e],
                    "row reconstruction"
                );
                assert_eq!(
                    (local_b * t.blk_w + c) as u32,
                    t.edge_to_col[e],
                    "column reconstruction"
                );
                assert_eq!(atox[c], g.edge_list()[e], "AToX maps column to id");
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn block_chunks_tile_the_window_ranges() {
        let g = gen::citation(1000, 8000, 3).unwrap();
        let t = Sgt::builder().translate(&g).unwrap();
        assert_eq!(*t.block_ptr.last().unwrap(), g.num_edges());
        for w in 0..t.num_row_windows {
            let (e_lo, e_hi) = t.window_edge_range(&g, w).unwrap();
            let b_lo = t.win_block_start[w];
            let b_hi = t.win_block_start[w + 1];
            if b_lo == b_hi {
                continue;
            }
            assert_eq!(t.block_ptr[b_lo], e_lo, "window {w} chunk start");
            assert_eq!(t.block_ptr[b_hi], e_hi, "window {w} chunk end");
            for b in b_lo..b_hi {
                let (lo, hi) = t.block_chunk(b);
                let frame = (b - b_lo) * t.blk_w;
                for pos in lo..hi {
                    let e = t.perm_orig[pos] as usize;
                    let c = t.edge_to_col[e] as usize;
                    assert!(c >= frame && c < frame + t.blk_w);
                }
            }
        }
    }

    #[test]
    fn window_edge_range_checks_bounds_and_shape() {
        // 40 nodes → 3 windows at win 16; the last window is ragged
        // (rows 32..40 only).
        let g = gen::erdos_renyi(40, 200, 5).unwrap();
        let t = Sgt::builder().translate(&g).unwrap();
        assert_eq!(t.num_row_windows, 3);
        let (lo, hi) = t.window_edge_range(&g, 2).unwrap();
        assert_eq!(lo, g.node_pointer()[32], "ragged window starts at row 32");
        assert_eq!(hi, g.num_edges(), "ragged window ends at the edge count");
        // One-past-the-end window is a typed error, not a panic or a
        // zero-length range.
        assert!(matches!(
            t.window_edge_range(&g, t.num_row_windows),
            Err(TcgError::InvalidInput { .. })
        ));
        assert!(t.window_edge_range(&g, usize::MAX).is_err());
        // A graph with the wrong node count is detected as corrupt metadata.
        let other = gen::erdos_renyi(80, 200, 5).unwrap();
        assert!(matches!(
            t.window_edge_range(&other, 0),
            Err(TcgError::CorruptMeta { .. })
        ));
        // Empty windows: an edgeless graph spans (0, 0) in every window and
        // still bounds-checks its window index.
        let z = CsrGraph::from_raw(33, vec![0; 34], vec![]).unwrap();
        let tz = Sgt::builder().translate(&z).unwrap();
        assert_eq!(tz.num_row_windows, 3);
        for w in 0..tz.num_row_windows {
            assert_eq!(tz.window_edge_range(&z, w).unwrap(), (0, 0));
        }
        assert!(tz.window_edge_range(&z, tz.num_row_windows).is_err());
    }

    #[test]
    fn same_neighbor_same_column_within_window() {
        let g = gen::erdos_renyi(300, 3000, 1).unwrap();
        let t = Sgt::builder().translate(&g).unwrap();
        for w in 0..t.num_row_windows {
            let (lo, hi) = t.window_edge_range(&g, w).unwrap();
            let mut col_of = std::collections::HashMap::new();
            for e in lo..hi {
                let nid = g.edge_list()[e];
                let col = t.edge_to_col[e];
                assert!((col as usize) < t.win_unique[w] as usize);
                if let Some(&prev) = col_of.get(&nid) {
                    assert_eq!(prev, col, "neighbor {nid} got two columns");
                } else {
                    col_of.insert(nid, col);
                }
            }
            // Columns are exactly 0..unique.
            let mut cols: Vec<u32> = col_of.values().copied().collect();
            cols.sort_unstable();
            let expect: Vec<u32> = (0..t.win_unique[w]).collect();
            assert_eq!(cols, expect);
        }
    }

    #[test]
    fn column_order_preserves_neighbor_order() {
        let g = gen::rmat_default(512, 4000, 2).unwrap();
        let t = Sgt::builder().translate(&g).unwrap();
        for w in 0..t.num_row_windows {
            let (lo, hi) = t.window_edge_range(&g, w).unwrap();
            for e1 in lo..hi {
                for e2 in lo..hi {
                    let (n1, n2) = (g.edge_list()[e1], g.edge_list()[e2]);
                    if n1 < n2 {
                        assert!(t.edge_to_col[e1] < t.edge_to_col[e2]);
                    }
                }
                if hi - lo > 64 {
                    break; // keep quadratic check bounded
                }
            }
        }
    }

    #[test]
    fn partition_matches_unique_count() {
        let g = gen::citation(1000, 8000, 3).unwrap();
        let t = Sgt::builder().translate(&g).unwrap();
        for w in 0..t.num_row_windows {
            assert_eq!(
                t.win_partition[w],
                (t.win_unique[w] as usize).div_ceil(TC_BLK_W) as u32
            );
        }
        assert_eq!(
            t.total_tc_blocks() as usize,
            *t.win_block_start.last().unwrap()
        );
    }

    #[test]
    fn edge_to_row_matches_csr() {
        let g = gen::erdos_renyi(200, 2000, 4).unwrap();
        let t = Sgt::builder().translate(&g).unwrap();
        let mut e = 0usize;
        for v in 0..g.num_nodes() {
            for _ in g.neighbors(v) {
                assert_eq!(t.edge_to_row[e] as usize, v);
                e += 1;
            }
        }
    }

    #[test]
    fn sddmm_block_fusion() {
        let g = figure4_like();
        let t16 = Sgt::builder().translate(&g).unwrap();
        assert!(t16.total_sddmm_blocks() <= t16.total_tc_blocks().max(1));
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = gen::rmat_default(4096, 60_000, 5).unwrap();
        let seq = Sgt::builder().translate(&g).unwrap();
        for threads in [2, 3, 4, 7] {
            let par = Sgt::builder().threads(threads).translate(&g).unwrap();
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_falls_back_on_tiny_graphs() {
        let g = gen::erdos_renyi(40, 200, 6).unwrap();
        assert_eq!(
            Sgt::builder().translate(&g).unwrap(),
            Sgt::builder().threads(8).translate(&g).unwrap()
        );
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_raw(0, vec![0], vec![]).unwrap();
        let t = Sgt::builder().translate(&g).unwrap();
        assert_eq!(t.num_row_windows, 0);
        assert_eq!(t.total_tc_blocks(), 0);
        assert_eq!(t.block_ptr, vec![0]);
    }

    #[test]
    fn isolated_nodes_only() {
        let g = CsrGraph::from_raw(40, vec![0; 41], vec![]).unwrap();
        let t = Sgt::builder().translate(&g).unwrap();
        assert_eq!(t.num_row_windows, 3);
        assert!(t.win_partition.iter().all(|&b| b == 0));
        assert!(t.perm_orig.is_empty());
    }

    #[test]
    fn try_translate_rejects_bad_geometry() {
        let g = figure4_like();
        assert!(matches!(
            Sgt::builder().window(0).translate(&g),
            Err(TcgError::InvalidInput { .. })
        ));
        assert!(matches!(
            Sgt::builder().window(64).translate(&g),
            Err(TcgError::InvalidInput { .. })
        ));
        assert!(Sgt::builder().translate(&g).is_ok());
    }

    #[test]
    fn validate_accepts_genuine_translations() {
        for (g, label) in [
            (figure4_like(), "figure4"),
            (gen::rmat_default(2048, 20_000, 2).unwrap(), "rmat"),
            (gen::citation(1000, 8000, 3).unwrap(), "citation"),
            (CsrGraph::from_raw(0, vec![0], vec![]).unwrap(), "empty"),
            (
                CsrGraph::from_raw(40, vec![0; 41], vec![]).unwrap(),
                "isolated",
            ),
        ] {
            let t = Sgt::builder().translate(&g).unwrap();
            assert!(t.validate(&g).is_ok(), "{label}");
        }
    }

    #[test]
    fn validate_catches_targeted_corruptions() {
        let g = gen::citation(600, 5000, 9).unwrap();
        let base = Sgt::builder().translate(&g).unwrap();
        assert!(base.validate(&g).is_ok());

        // Out-of-bounds condensed column.
        let mut t = base.clone();
        t.edge_to_col[0] = u32::MAX;
        assert!(matches!(t.validate(&g), Err(TcgError::CorruptMeta { .. })));

        // Partition inconsistent with unique count.
        let mut t = base.clone();
        t.win_partition[0] += 1;
        assert!(matches!(t.validate(&g), Err(TcgError::CorruptMeta { .. })));

        // Broken chunk prefix.
        let mut t = base.clone();
        *t.block_ptr.last_mut().unwrap() += 1;
        assert!(matches!(t.validate(&g), Err(TcgError::CorruptMeta { .. })));

        // Duplicate edge in the permutation.
        let mut t = base.clone();
        if t.perm_orig.len() >= 2 {
            t.perm_orig[1] = t.perm_orig[0];
        }
        assert!(matches!(t.validate(&g), Err(TcgError::CorruptMeta { .. })));

        // AToX pointing at the wrong neighbor id.
        let mut t = base.clone();
        if let Some(v) = t.block_atox.first_mut() {
            *v = v.wrapping_add(1);
        }
        assert!(matches!(t.validate(&g), Err(TcgError::CorruptMeta { .. })));

        // Truncated per-edge array.
        let mut t = base.clone();
        t.perm_pack.pop();
        assert!(matches!(t.validate(&g), Err(TcgError::CorruptMeta { .. })));
    }

    #[test]
    fn metadata_size_accounts_all_arrays() {
        let g = gen::erdos_renyi(1000, 10_000, 7).unwrap();
        let t = Sgt::builder().translate(&g).unwrap();
        assert!(t.memory_bytes() > g.num_edges() * 8);
    }
}
