//! Sparse Graph Translation (SGT) — the paper's core algorithmic idea.
//!
//! SGT (Algorithm 1 in the paper) walks the adjacency matrix in *row
//! windows* of `TC_BLK_H = 16` rows. Within a window it collects every
//! referenced neighbor id, sorts and deduplicates them, and assigns each
//! distinct neighbor a consecutive *condensed column*. Non-zeros that were
//! scattered over up to `N` columns now occupy `nnz_unique` consecutive
//! columns, so the number of `16×8` TCU tiles that must be traversed drops
//! from `O(N / 8)` to `O(nnz_unique / 8)` per window — and each surviving
//! tile is much denser.
//!
//! The translation is pure metadata: [`TranslatedGraph`] keeps the original
//! CSR untouched and adds `winPartition` (TC blocks per window),
//! `edgeToCol` (condensed column of each edge) and `edgeToRow` (source row
//! of each edge, used by the kernels' shared-memory staging, Listing 2).
//! Output correctness is unaffected because condensation only *renames*
//! columns within a window and the kernels gather the matching rows of the
//! dense matrix through `sparse_AToX_index`.
//!
//! [`census()`] quantifies the effect for Figure 7(a); [`overhead`] provides
//! the preprocessing-cost accounting for Figure 7(b).

pub mod census;
pub mod delta;
pub mod overhead;
pub mod translate;

pub use census::{census, BlockCensus};
pub use delta::{DeltaReport, EdgeDelta};
#[allow(deprecated)]
pub use translate::{
    translate, translate_parallel, translate_with, try_translate_with, Sgt, SgtBuilder,
    TranslatedGraph,
};

/// Row-window height — `M` of the TF-32 MMA shape (paper: `TC_BLK_H = 16`).
pub const TC_BLK_H: usize = 16;
/// TCU operand tile width — `K` of the MMA shape (paper: `TC_BLK_W = 8`).
pub const TC_BLK_W: usize = 8;
