#!/usr/bin/env bash
# CI gate: build, tier-1 tests, full workspace tests, formatting, lints.
#
# Usage: scripts/ci.sh [--quick]
#   --quick   skip the full-workspace test pass (tier-1 only)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

step() { printf '\n==> %s\n' "$*"; }

step "cargo build --release --workspace"
cargo build --release --workspace

step "tier-1 tests (root package)"
cargo test --release -q

if [[ $quick -eq 0 ]]; then
    step "workspace tests"
    cargo test --workspace -q
fi

step "chaos smoke: fixed-seed fault schedules through the CLI"
# Two deterministic schedules; training must complete (exit 0) and report
# the injected-fault accounting under both.
TCG_FAULT_RATE=0.05 TCG_FAULT_SEED=2023 \
    ./target/release/tcgnn train Pubmed/0.05 --epochs 3 | grep -q 'faults: '
TCG_FAULT_RATE=0.2 TCG_FAULT_SEED=4099 \
    ./target/release/tcgnn train Pubmed/0.05 --epochs 3 --backend dgl | grep -q 'faults: '
step "chaos integration tests"
cargo test --release -q --test chaos

step "serve smoke: dynamic batching + SGT translation cache through the CLI"
serve_out=$(./target/release/tcgnn serve Cora,Cora/2 --requests 48 --rate 2000 --epochs 2)
# The latency histogram must be populated...
lat_count=$(sed -n 's/.*"count": \([0-9]*\).*/\1/p' <<<"$serve_out" | head -1)
[[ -n "$lat_count" && "$lat_count" -ge 1 ]] || {
    echo "serve smoke: empty latency histogram" >&2
    exit 1
}
# ...and repeat dispatches must have hit the SGT cache at least once.
cache_hits=$(sed -n 's/.*"hits": \([0-9]*\).*/\1/p' <<<"$serve_out" | head -1)
[[ -n "$cache_hits" && "$cache_hits" -ge 1 ]] || {
    echo "serve smoke: no SGT cache hits" >&2
    exit 1
}

step "chaos serve: injected faults must degrade batches, never fail requests"
chaos_out=$(TCG_FAULT_RATE=0.2 TCG_FAULT_SEED=7 \
    ./target/release/tcgnn serve Cora --requests 32 --rate 1000 --epochs 2)
grep -q '"failed": 0,' <<<"$chaos_out" || {
    echo "chaos serve: requests failed under fault injection" >&2
    exit 1
}

step "verify: oracle conformance matrix (every backend x kernel x family)"
# Full differential matrix against the golden oracle, plus the metamorphic
# suite; nonzero exit (with a minimized repro) on any divergence.
./target/release/tcgnn verify --seed 2023

step "parallel execution: determinism suite + conformance matrix at TCG_THREADS=4"
# The parallel launcher must be invisible: the same conformance matrix and
# a chaos schedule must pass with block bodies fanned over 4 workers, and
# 8-vs-1-thread runs must be bitwise identical (logits, kernel reports,
# cost totals).
cargo test --release -q --test parallel_determinism
TCG_THREADS=4 ./target/release/tcgnn verify --seed 2023
TCG_THREADS=4 TCG_FAULT_RATE=0.05 TCG_FAULT_SEED=2023 \
    ./target/release/tcgnn train Pubmed/0.05 --epochs 3 | grep -q 'faults: '

step "verify: 30s differential fuzz smoke (fixed seed)"
cargo run --release -q -p tcg-oracle --bin fuzz_kernels -- --seed 2023 --budget-ms 30000

step "observability: metrics export, hotspot profile, perf sentinel"
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
# Profiled serve smoke: Prometheus metrics file plus Perfetto trace with
# per-request span trees. The metrics file must schema-check (tested via
# the library parser below) and the trace must be valid JSON with the
# request track present.
TCG_PROFILE=1 TCG_RESULTS_DIR="$obs_dir" \
    ./target/release/tcgnn serve Cora --requests 32 --rate 2000 --epochs 2 \
    --metrics "$obs_dir/serve.prom" >/dev/null
grep -q '^tcg_serve_requests_total 32$' "$obs_dir/serve.prom" || {
    echo "observability: metrics file missing/miscounting requests" >&2
    exit 1
}
grep -q '^# TYPE tcg_serve_latency_ms summary$' "$obs_dir/serve.prom" || {
    echo "observability: latency summary family missing" >&2
    exit 1
}
python3 -c "import json,sys; d=json.load(open(sys.argv[1])); assert any(e.get('ph')=='b' for e in d['traceEvents']), 'no request spans'" \
    "$obs_dir/serve-cli.trace.json" || {
    echo "observability: Perfetto trace malformed or missing request spans" >&2
    exit 1
}
# Metrics schema check through the shared parser (exercised by unit tests).
cargo test --release -q -p tcg-serve metrics
# tcgnn top renders the dashboard.
./target/release/tcgnn top Cora --requests 16 --rate 2000 --epochs 2 \
    | grep -q 'tcgnn top' || {
    echo "observability: top dashboard did not render" >&2
    exit 1
}
# Hotspot profile on a registry subset: ranked table + reconciliation +
# well-formed collapsed-stack artifact (frames 'tcgnn;<worker>;<phase> ns').
TCG_RESULTS_DIR="$obs_dir" \
    ./target/release/tcgnn profile --hotspots --datasets Cora --epochs 1 \
    | grep -q 'reconciliation: .* (OK)' || {
    echo "observability: hotspot reconciliation failed" >&2
    exit 1
}
grep -Eq '^tcgnn;(main|worker-[0-9]+);[a-z_]+ [0-9]+$' "$obs_dir/profile-hotspots.folded" || {
    echo "observability: malformed collapsed-stack artifact" >&2
    exit 1
}
# Perf sentinel, warn tier: fresh results vs committed baselines. A FAIL
# verdict exits nonzero and gates CI; warnings are reported but pass.
./target/release/tcgnn bench --check

step "resilience: chaos-serve with breakers at TCG_THREADS=4"
# Full containment stack under seeded overload + faults: the property/
# integration suite (breaker purity, backoff thread-invariance, typed
# cancellation, brownout ladder, quarantine bitwise-equality) ...
TCG_THREADS=4 cargo test --release -q --test resilience
# ...then the CLI path: burst arrivals with a deadline only the head of
# the queue can meet, 30% fault rate. Every response must be a correct
# answer or a typed shed/cancel (failed == 0 is the no-wrong-logit gate:
# wrong logits are impossible by construction — cancelled batches discard
# their outputs and quarantined translations are rebuilt — so the only
# failure mode left is a typed error), with nonzero cancellations and
# breaker openings proving both containment paths actually fired.
resil_out=$(TCG_THREADS=4 TCG_FAULT_RATE=0.3 TCG_FAULT_SEED=7 \
    ./target/release/tcgnn serve Cora --requests 128 --rate 100000 \
    --deadline 0.4 --low-every 3 --epochs 2 --resilience)
sed -n '/^{/,$p' <<<"$resil_out" | python3 -c "
import json, sys
d = json.load(sys.stdin)
r = d['resilience']
assert d['failed'] == 0, f'wrong-path responses under chaos: {d[\"failed\"]}'
assert d['on_time'] + d['late'] + d['shed'] + d['cancelled'] == d['total_requests'], \
    'untyped outcome leak'
assert d['cancelled'] > 0, 'deadline cancellation never fired'
assert r['breaker']['opened'] > 0, 'circuit breaker never opened'
assert r['breaker']['rerouted_batches'] > 0, 'open breaker never rerouted a batch'
print(f\"resilience gate: {d['cancelled']} cancelled, \"
      f\"{r['breaker']['opened']} breaker openings, \"
      f\"{r['breaker']['rerouted_batches']} rerouted batches, 0 failed\")
" || {
    echo "resilience: chaos-serve containment gate failed" >&2
    exit 1
}

step "hybrid: per-window dispatch conformance + tune-threshold bench gate"
# The conformance matrix above already runs the hybrid backend column
# (BackendKind::ALL); here the dispatch-specific suites: stitching/purity
# property tests, 8-vs-1-thread mixed launches with the ECC window-degrade
# chaos case, then the bench sentinel over the committed BENCH_hybrid
# baselines (whose _meta carries the fitted tune thresholds; the full
# sweep is `cargo run --release -p tcg-bench --bin bench_hybrid`).
cargo test --release -q --test hybrid_dispatch
cargo run --release -q -p tcg-bench --bin bench_hybrid -- --check

step "dynamic graphs: metamorphic edit-script suite + churn bench gate"
# Incremental ≡ from-scratch translation (bitwise) over random edit scripts
# on all 10 adversarial families, plus the serve-level mutation semantics —
# with block bodies fanned over 4 workers and every delta hard-validated.
TCG_VERIFY=1 TCG_THREADS=4 cargo test --release -q --test delta_translation
# CLI churn smoke: mutations must all apply and resolve through the
# delta-translation path (touched windows retranslate, the rest reuse).
churn_out=$(./target/release/tcgnn serve Cora --requests 32 --rate 2000 --epochs 2 --churn 3)
sed -n '/^{/,$p' <<<"$churn_out" | python3 -c "
import json, sys
d = json.load(sys.stdin)
m = d['mutations']
assert m['requested'] == 3 and m['applied'] == 3, f'churn events lost: {m}'
assert d['sgt_cache']['delta_translations'] >= 1, 'mutation never took the delta path'
assert m['windows_preserved'] > m['windows_touched'], \
    f'window reuse missing: {m[\"windows_touched\"]} touched vs {m[\"windows_preserved\"]} preserved'
print(f\"churn gate: {m['applied']} mutations, {m['windows_touched']} windows retranslated, \"
      f\"{m['windows_preserved']} preserved\")
" || {
    echo "dynamic graphs: CLI churn smoke failed" >&2
    exit 1
}
# Churn-bench sentinel over the committed BENCH_churn baselines (the full
# run is \`cargo run --release -p tcg-bench --bin bench_churn\`).
cargo run --release -q -p tcg-bench --bin bench_churn -- --check

step "dist: sharded-execution bitwise equality + scaling baselines"
# Bitwise gate across the 10 adversarial oracle families and the fig7b
# dataset suite at 2 and 4 devices under both partitioners, with block
# bodies fanned over 4 workers — sharding must be invisible to the math.
TCG_THREADS=4 cargo test --release -q -p tcg-dist
# Scaling-curve sentinel over the committed BENCH_dist baselines (the full
# 1M-node workload is `cargo run --release -p tcg-bench --bin bench_dist`).
cargo run --release -q -p tcg-bench --bin bench_dist -- --check

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

step "CI PASSED"
