#!/usr/bin/env bash
# CI gate: build, tier-1 tests, full workspace tests, formatting, lints.
#
# Usage: scripts/ci.sh [--quick]
#   --quick   skip the full-workspace test pass (tier-1 only)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

step() { printf '\n==> %s\n' "$*"; }

step "cargo build --release --workspace"
cargo build --release --workspace

step "tier-1 tests (root package)"
cargo test --release -q

if [[ $quick -eq 0 ]]; then
    step "workspace tests"
    cargo test --workspace -q
fi

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

step "CI PASSED"
