//! Parallel execution must be invisible: at any thread count the engine
//! produces bitwise-identical logits, kernel reports, and cost totals.
//!
//! The parallel launcher gives each worker a private L1 (valid because L1
//! is flushed at every block boundary) and replays L2 probes in block-id
//! order, so nothing observable may depend on scheduling. This test pins
//! that across all backends — including the hybrid per-window dispatcher,
//! whose mixed launches fan out over the same disjoint row-window slices —
//! and the ten adversarial graph families.

use tc_gnn::gnn::{Backend, Engine, GcnModel};
use tc_gnn::gpusim::KernelReport;
use tc_gnn::oracle::advgen::Family;
use tc_gnn::tensor::{init, DenseMatrix};

const FEAT: usize = 12;
const HIDDEN: usize = 8;
const CLASSES: usize = 5;

struct Run {
    logits: DenseMatrix,
    cost_total_ms: f64,
    spmm_report: Option<KernelReport>,
    sddmm_report: Option<KernelReport>,
}

fn run(family: Family, backend: Backend, threads: usize) -> Run {
    let g = family.generate(7);
    let n = g.num_nodes();
    let x = init::uniform(n, FEAT, -1.0, 1.0, 3);
    let mut eng = Engine::builder(g)
        .backend(backend)
        .threads(threads)
        .build()
        .expect("adversarial graphs are symmetric");
    let model = GcnModel::new(FEAT, HIDDEN, CLASSES, 4);
    let (logits, cost) = model.infer(&mut eng, &x);
    // Drive the SDDMM path too (GCN inference alone never runs it).
    let xh = init::uniform(n, HIDDEN, -1.0, 1.0, 5);
    let _ = eng.sddmm(&xh, &xh).expect("dims agree");
    Run {
        logits,
        cost_total_ms: cost.total_ms(),
        spmm_report: eng.last_spmm_report.clone(),
        sddmm_report: eng.last_sddmm_report.clone(),
    }
}

#[test]
fn eight_threads_bitwise_match_one_thread_everywhere() {
    for family in Family::ALL {
        for backend in Backend::all_with_hybrid() {
            let seq = run(family, backend, 1);
            let par = run(family, backend, 8);
            let cell = format!("{}/{}", family.name(), backend.name());
            assert_eq!(
                seq.logits.as_slice(),
                par.logits.as_slice(),
                "logits diverged in {cell}"
            );
            assert_eq!(
                seq.cost_total_ms.to_bits(),
                par.cost_total_ms.to_bits(),
                "cost total diverged in {cell}: {} vs {}",
                seq.cost_total_ms,
                par.cost_total_ms
            );
            // KernelReport includes the raw KernelStats counters, the
            // derived time/cycles, and the cache hit rates — all of which
            // must survive the parallel L1/L2 split unchanged.
            assert_eq!(
                seq.spmm_report, par.spmm_report,
                "SpMM kernel report diverged in {cell}"
            );
            assert_eq!(
                seq.sddmm_report, par.sddmm_report,
                "SDDMM kernel report diverged in {cell}"
            );
        }
    }
}

/// Chaos case: an ECC fault landing in a TCU-dispatched window of a hybrid
/// launch degrades only that window to the CUDA-core body via the existing
/// retry path — and the whole recovery (output bits, fault accounting,
/// per-window degrade counter) is identical at 8 threads and 1.
#[test]
fn hybrid_ecc_window_degrade_is_thread_count_invariant() {
    use tc_gnn::fault::{FaultConfig, FaultPlan};

    let run = |threads: usize| {
        let g = Family::PowerLaw.generate(7);
        let n = g.num_nodes();
        let x = init::uniform(n, FEAT, -1.0, 1.0, 3);
        let mut eng = Engine::builder(g)
            .backend(Backend::Hybrid)
            .threads(threads)
            .build()
            .expect("adversarial graphs are symmetric");
        let profiler = tc_gnn::profile::shared("hybrid-chaos");
        eng.attach_profiler(profiler.clone());
        eng.attach_fault_plan(FaultPlan::new(
            5,
            FaultConfig {
                ecc_rate: 1.0,
                ..FaultConfig::none()
            },
        ));
        let (out, _) = eng.spmm(&x, None).expect("dims agree");
        let report = eng.fault_report();
        let window_degrades = profiler
            .read()
            .unwrap()
            .named_counter("tcg_hybrid_window_degrades_total");
        (out, report.degraded, report.ecc_flips, window_degrades)
    };

    let (out_seq, degraded_seq, flips_seq, windows_seq) = run(1);
    let (out_par, degraded_par, flips_par, windows_par) = run(8);

    assert!(flips_seq > 0, "the fault schedule never flipped a bit");
    assert!(
        windows_seq > 0,
        "the ECC flip never degraded a hybrid window"
    );
    assert!(out_seq.as_slice().iter().all(|v| v.is_finite()));
    assert_eq!(
        out_seq.as_slice(),
        out_par.as_slice(),
        "degraded hybrid output diverged across thread counts"
    );
    assert_eq!(
        (degraded_seq, flips_seq, windows_seq),
        (degraded_par, flips_par, windows_par),
        "fault accounting diverged across thread counts"
    );
}

#[test]
fn thread_count_is_plumbed_through_the_builder() {
    let g = Family::PowerLaw.generate(11);
    let eng = Engine::builder(g).threads(8).build().unwrap();
    assert_eq!(eng.threads(), 8);
    let g = Family::PowerLaw.generate(11);
    let eng = Engine::builder(g).build().unwrap();
    // No explicit setting → the builder falls back to TCG_THREADS (which
    // resolves to 1 when unset, e.g. in a plain `cargo test` run).
    assert_eq!(eng.threads(), tc_gnn::gpusim::threads_from_env().max(1));
}
