//! Integration tests for the tcg-profile tracing layer: the trace must
//! reconcile exactly with the trainer's cost model, exports must be
//! deterministic and schema-valid, and the nsight-style table must carry
//! the hardware counters for both kernel families.

use tc_gnn::gnn::{train_gcn, Backend, Engine, TrainConfig};
use tc_gnn::gpusim::DeviceSpec;
use tc_gnn::graph::datasets::{DatasetSpec, GraphClass};
use tc_gnn::graph::Dataset;
use tc_gnn::profile::{
    chrome_trace_json, metrics_json, nsight_table, shared, Phase, SharedProfiler,
};

fn tiny_dataset() -> Dataset {
    DatasetSpec {
        name: "profiling-test",
        class: GraphClass::TypeI,
        num_nodes: 300,
        num_edges: 2400,
        feat_dim: 32,
        num_classes: 4,
    }
    .materialize(7)
    .expect("synthetic dataset")
}

/// Two-epoch GCN run with a profiler attached; returns the profiler and
/// the train result.
fn profiled_gcn(backend: Backend) -> (SharedProfiler, tc_gnn::gnn::TrainResult) {
    let ds = tiny_dataset();
    let mut eng = Engine::builder(ds.graph.clone())
        .backend(backend)
        .device(DeviceSpec::rtx3090())
        .build()
        .expect("graph is symmetric");
    let profiler = shared(backend.name());
    eng.attach_profiler(profiler.clone());
    let result = train_gcn(&mut eng, &ds, TrainConfig::gcn_paper().with_epochs(2));
    (profiler, result)
}

#[test]
fn trace_reconciles_with_cost_model_on_all_backends() {
    for backend in Backend::all() {
        let (profiler, result) = profiled_gcn(backend);
        let p = profiler.read().unwrap();

        // Every millisecond the cost model charged must appear as exactly
        // one event, so per-phase sums reconcile to FP tolerance.
        let total = result
            .epochs
            .iter()
            .fold(tc_gnn::gnn::Cost::default(), |acc, e| acc + e.cost);
        let tol = 1e-9;
        let agg = p.phase_total_ms(Phase::Aggregation);
        assert!(
            (agg - total.aggregation_ms).abs() <= tol * total.aggregation_ms.max(1.0),
            "{backend:?}: aggregation events {agg} vs cost {}",
            total.aggregation_ms
        );
        let upd = p.phase_total_ms(Phase::Update);
        assert!(
            (upd - total.update_ms).abs() <= tol * total.update_ms.max(1.0),
            "{backend:?}: update events {upd} vs cost {}",
            total.update_ms
        );
        let oth = p.phase_total_ms(Phase::Other);
        assert!(
            (oth - total.other_ms).abs() <= tol * total.other_ms.max(1.0),
            "{backend:?}: other events {oth} vs cost {}",
            total.other_ms
        );

        // The host track carries exactly the preprocessing (SGT) cost.
        assert_eq!(p.phase_total_ms(Phase::Host), result.preprocessing_ms);

        // Per-epoch rollups reconcile against each EpochStats.
        assert_eq!(p.rollups().len(), result.epochs.len());
        for (rollup, stats) in p.rollups().iter().zip(&result.epochs) {
            assert!(
                (rollup.aggregation_ms - stats.cost.aggregation_ms).abs()
                    <= tol * stats.cost.aggregation_ms.max(1.0),
                "{backend:?} epoch {}: rollup {} vs cost {}",
                rollup.epoch,
                rollup.aggregation_ms,
                stats.cost.aggregation_ms
            );
            assert!(
                (rollup.total_ms() - stats.cost.total_ms()).abs()
                    <= tol * stats.cost.total_ms().max(1.0)
            );
        }
    }
}

#[test]
fn chrome_trace_sum_matches_aggregation_cost() {
    // Acceptance check: summed aggregation-phase durations in the exported
    // Chrome trace equal the TrainResult's aggregation cost.
    let (profiler, result) = profiled_gcn(Backend::TcGnn);
    let p = profiler.read().unwrap();
    let v: serde_json::Value =
        serde_json::from_str(&chrome_trace_json(&p)).expect("trace is valid JSON");
    let events = v
        .get("traceEvents")
        .expect("traceEvents key")
        .as_array()
        .expect("traceEvents is an array");
    let mut agg_us = 0.0;
    for e in events {
        if e.get("ph").and_then(serde_json::Value::as_str) == Some("X")
            && e.get("cat").and_then(serde_json::Value::as_str) == Some("aggregation")
        {
            agg_us += e.get("dur").unwrap().as_f64().unwrap();
        }
    }
    let expect_ms: f64 = result.epochs.iter().map(|e| e.cost.aggregation_ms).sum();
    assert!(
        (agg_us / 1000.0 - expect_ms).abs() <= 1e-9 * expect_ms.max(1.0),
        "trace {} ms vs cost {} ms",
        agg_us / 1000.0,
        expect_ms
    );
}

#[test]
fn chrome_trace_export_is_deterministic_and_schema_valid() {
    let (p1, _) = profiled_gcn(Backend::TcGnn);
    let (p2, _) = profiled_gcn(Backend::TcGnn);
    let json1 = chrome_trace_json(&p1.read().unwrap());
    let json2 = chrome_trace_json(&p2.read().unwrap());
    // Byte-identical across identical runs (the golden-file property; the
    // simulation is deterministic and the export carries no wall-clock).
    assert_eq!(json1, json2);
    let m1 = metrics_json(&p1.read().unwrap());
    let m2 = metrics_json(&p2.read().unwrap());
    assert_eq!(m1, m2);

    // Schema: parseable, with the Chrome-trace required fields.
    let v: serde_json::Value = serde_json::from_str(&json1).expect("valid JSON");
    assert_eq!(
        v.get("displayTimeUnit").and_then(serde_json::Value::as_str),
        Some("ms")
    );
    let events = v.get("traceEvents").unwrap().as_array().unwrap();
    assert!(!events.is_empty());
    let mut saw_metadata = false;
    let mut saw_complete = false;
    let mut prev_end = 0.0f64;
    for e in events {
        let ph = e.get("ph").and_then(serde_json::Value::as_str).unwrap();
        assert!(e.get("pid").is_some());
        assert!(e.get("name").is_some());
        match ph {
            "M" => saw_metadata = true,
            "X" => {
                saw_complete = true;
                let ts = e.get("ts").unwrap().as_f64().unwrap();
                let dur = e.get("dur").unwrap().as_f64().unwrap();
                let tid = e.get("tid").unwrap().as_f64().unwrap();
                assert!((1.0..=4.0).contains(&tid), "tid {tid} out of track range");
                assert!(dur >= 0.0);
                // Serial stream: events are laid end-to-end on one clock.
                assert!(
                    (ts - prev_end).abs() < 1e-9,
                    "event not contiguous: ts {ts} vs {prev_end}"
                );
                prev_end = ts + dur;
            }
            other => panic!("unexpected event type {other}"),
        }
    }
    assert!(saw_metadata && saw_complete);
}

#[test]
fn nsight_table_reports_hardware_counters_for_both_kernel_families() {
    // TC-GNN: the SpMM rows must show tensor-core MMA traffic.
    let (p_tc, _) = profiled_gcn(Backend::TcGnn);
    let p = p_tc.read().unwrap();
    let table = nsight_table(&p);
    for col in ["DRAM rd", "DRAM wr", "Shm txn", "TCU MMA", "Launches"] {
        assert!(table.contains(col), "missing column {col}:\n{table}");
    }
    assert!(table.contains("aggregation/spmm"));
    assert!(table.contains("update/gemm_xw"));
    assert!(table.contains("host/sgt_preprocess"));
    use tc_gnn::profile::MetricsRegistry;
    // The TCU and shared-memory counters are only nonzero for the
    // tensor-core kernel — the cuSPARSE-class CUDA-core kernel genuinely
    // uses neither, and the table must still report the columns.
    let assert_counters = |reg: &MetricsRegistry, tcu: bool, label: &str| {
        let key = "aggregation/spmm";
        assert!(
            reg.counter(key, "dram_read_bytes") > 0,
            "{label}: no DRAM reads"
        );
        assert_eq!(
            reg.counter(key, "shared_transactions") > 0,
            tcu,
            "{label}: shared_transactions"
        );
        assert_eq!(
            reg.counter(key, "tcu_mma_instructions") > 0,
            tcu,
            "{label}: tcu_mma_instructions"
        );
    };
    assert_counters(p.registry(), true, "TC-GNN");

    // cuSPARSE-class (DGL): same columns, CUDA-core kernel → no MMAs.
    let (p_dgl, _) = profiled_gcn(Backend::DglLike);
    let p = p_dgl.read().unwrap();
    let table = nsight_table(&p);
    assert!(table.contains("aggregation/spmm"));
    assert_counters(p.registry(), false, "DGL");
}

#[test]
fn hotspot_phase_totals_reconcile_with_window_attributions() {
    // The host-side hotspot profiler adds every scope's elapsed
    // nanoseconds to its phase total AND to the current row-window
    // accumulator in the same thread-local sheet, so the two sums must be
    // *exactly* equal — the host-time mirror of the trace↔cost invariant
    // above. The accumulator is process-global; the invariant survives
    // concurrent tests because sheets flush phase and window time
    // together, never one without the other.
    use tc_gnn::gpusim::hotspot;

    hotspot::set_enabled(true);
    let _ = hotspot::take_report(); // drain anything a previous test left
    let ds = tiny_dataset();
    let mut eng = Engine::builder(ds.graph.clone())
        .backend(Backend::TcGnn)
        .device(DeviceSpec::rtx3090())
        .build()
        .expect("graph is symmetric");
    let _ = train_gcn(&mut eng, &ds, TrainConfig::gcn_paper().with_epochs(1));
    hotspot::set_enabled(false);
    let report = hotspot::take_report();

    assert!(!report.is_empty(), "profiled run produced no samples");
    assert_eq!(
        report.total_phase_ns(),
        report.total_window_ns(),
        "per-phase host ns must reconcile exactly with per-window host ns"
    );
    // The ranked table is built from the same totals.
    let ranked_total: u64 = report.ranked_phases().iter().map(|(_, ns, _)| ns).sum();
    assert_eq!(ranked_total, report.total_phase_ns());
    // Row-window attribution carries the SGT telemetry the hybrid
    // dispatcher needs: nnz and distinct columns on real windows.
    let real_windows: Vec<_> = report
        .windows
        .iter()
        .filter(|(id, _)| **id != hotspot::OUTSIDE_WINDOW)
        .collect();
    assert!(!real_windows.is_empty(), "no per-window attributions");
    assert!(
        real_windows.iter().any(|(_, w)| w.nnz > 0),
        "windows carry no nnz annotations"
    );
    let table = tc_gnn::profile::hotspot_table(&report);
    assert!(
        table.contains("(OK)"),
        "table must report reconciliation:\n{table}"
    );
}

#[test]
fn detached_engine_records_nothing() {
    let ds = tiny_dataset();
    let mut eng = Engine::builder(ds.graph.clone())
        .backend(Backend::TcGnn)
        .device(DeviceSpec::rtx3090())
        .build()
        .expect("graph is symmetric");
    assert!(eng.profiler().is_none());
    let r = train_gcn(&mut eng, &ds, TrainConfig::gcn_paper().with_epochs(1));
    assert!(r.avg_epoch_ms() > 0.0);
    assert!(eng.profiler().is_none());
}

#[test]
fn engine_retains_reports_for_spmm_and_sddmm() {
    // Satellite regression: the engine must keep the most recent report
    // for SDDMM (and fused attention), not only SpMM.
    let ds = tiny_dataset();
    let mut eng = Engine::builder(ds.graph.clone())
        .backend(Backend::TcGnn)
        .device(DeviceSpec::rtx3090())
        .build()
        .expect("graph is symmetric");
    assert!(eng.last_spmm_report.is_none());
    assert!(eng.last_sddmm_report.is_none());
    assert!(eng.last_fused_report.is_none());
    let x = tc_gnn::tensor::init::uniform(300, 16, -1.0, 1.0, 5);
    eng.spmm(&x, None).unwrap();
    assert!(eng.last_spmm_report.is_some());
    eng.sddmm(&x, &x).unwrap();
    assert!(eng.last_sddmm_report.is_some());
    eng.fused_attention(&x, &x, 1.0).unwrap();
    assert!(eng.last_fused_report.is_some());
}
