//! Property tests of the Sparse Graph Translation invariants.

use proptest::prelude::*;
use tc_gnn::sgt::{census, Sgt, TC_BLK_H, TC_BLK_W};

fn graph_strategy() -> impl Strategy<Value = tc_gnn::graph::CsrGraph> {
    (16usize..400, 1usize..12, 0u64..10_000, 0usize..3).prop_map(|(n, deg, seed, family)| {
        let e = n * deg;
        match family {
            0 => tc_gnn::graph::gen::erdos_renyi(n, e, seed),
            1 => tc_gnn::graph::gen::rmat_default(n.next_power_of_two(), e, seed),
            _ => tc_gnn::graph::gen::community(n.max(32), e, 4, 16, seed),
        }
        .expect("generator succeeds")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn translation_is_a_window_local_column_renaming(g in graph_strategy()) {
        let t = Sgt::builder().translate(&g).unwrap();
        // Every edge appears once in the permutation; coordinates decode
        // back to the original (row, neighbor) pair.
        let mut seen = vec![false; g.num_edges()];
        for w in 0..t.num_row_windows {
            for b in t.win_block_start[w]..t.win_block_start[w + 1] {
                let atox = t.block_atox(b);
                let (lo, hi) = t.block_chunk(b);
                for pos in lo..hi {
                    let e = t.perm_orig[pos] as usize;
                    prop_assert!(!seen[e]);
                    seen[e] = true;
                    let (r, c) = t.unpack(t.perm_pack[pos]);
                    prop_assert_eq!(t.edge_to_row[e] as usize, w * TC_BLK_H + r);
                    prop_assert_eq!(atox[c], g.edge_list()[e]);
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn block_count_is_exactly_ceil_unique_over_width(g in graph_strategy()) {
        let t = Sgt::builder().translate(&g).unwrap();
        for w in 0..t.num_row_windows {
            prop_assert_eq!(
                t.win_partition[w] as usize,
                (t.win_unique[w] as usize).div_ceil(TC_BLK_W)
            );
        }
    }

    #[test]
    fn all_blocks_but_last_per_window_are_column_full(g in graph_strategy()) {
        // Condensation means every block except a window's last has all 8
        // columns populated — the density improvement of Figure 4.
        let t = Sgt::builder().translate(&g).unwrap();
        for w in 0..t.num_row_windows {
            let b_lo = t.win_block_start[w];
            let b_hi = t.win_block_start[w + 1];
            for b in b_lo..b_hi {
                let expected = if b + 1 == b_hi {
                    let rem = t.win_unique[w] as usize % TC_BLK_W;
                    if rem == 0 { TC_BLK_W } else { rem }
                } else {
                    TC_BLK_W
                };
                prop_assert_eq!(t.block_atox(b).len(), expected);
            }
        }
    }

    #[test]
    fn census_reduction_is_nonnegative(g in graph_strategy()) {
        let c = census(&g);
        prop_assert!(c.blocks_with_sgt <= c.blocks_without_sgt);
        prop_assert!(c.reduction_pct() >= 0.0);
        // With-SGT block count must equal the translation's.
        let t = Sgt::builder().translate(&g).unwrap();
        prop_assert_eq!(c.blocks_with_sgt, t.total_tc_blocks());
    }

    #[test]
    fn parallel_translation_is_deterministic(g in graph_strategy()) {
        let a = Sgt::builder().translate(&g).unwrap();
        let b = Sgt::builder().threads(3).translate(&g).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn validate_rejects_any_single_field_mutation(
        g in graph_strategy(),
        mutation in 0usize..7,
        raw_pick in 0usize..1_000_000,
    ) {
        use tc_gnn::fault::TcgError;
        if g.num_edges() < 2 {
            return;
        }
        let base = Sgt::builder().translate(&g).unwrap();
        prop_assert!(base.validate(&g).is_ok());
        let pick = |len: usize| raw_pick % len;
        let mut t = base.clone();
        match mutation {
            // Condensed column outside any block.
            0 => { let i = pick(t.edge_to_col.len()); t.edge_to_col[i] = u32::MAX; }
            // Source row outside the graph.
            1 => {
                let i = pick(t.edge_to_row.len());
                t.edge_to_row[i] = t.edge_to_row[i].wrapping_add(g.num_nodes() as u32 + 1);
            }
            // Partition out of step with the unique-neighbor census.
            2 => { let w = pick(t.win_partition.len()); t.win_partition[w] += 1; }
            // Chunk prefix no longer sums to the edge count.
            3 => { let b = pick(t.block_ptr.len()); t.block_ptr[b] += 1; }
            // Duplicate edge id breaks the permutation.
            4 => {
                let i = pick(t.perm_orig.len() - 1);
                t.perm_orig[i + 1] = t.perm_orig[i];
            }
            // AToX slot no longer names the edge's original neighbor.
            5 => {
                let k = pick(t.block_atox.len());
                t.block_atox[k] = t.block_atox[k].wrapping_add(1);
            }
            // Truncated per-edge array.
            _ => { t.perm_pack.pop(); }
        }
        prop_assert!(
            matches!(t.validate(&g), Err(TcgError::CorruptMeta { .. })),
            "mutation {} went undetected", mutation
        );
    }
}
