//! Oracle conformance: degenerate graphs across every kernel × backend,
//! plus the full adversarial matrix that `tcgnn verify` runs in CI.

use tc_gnn::graph::{CooGraph, CsrGraph};
use tc_gnn::oracle::{run_case, run_matrix, BackendKind, KernelKind, MatrixConfig};

/// Runs every kernel × backend cell on `g` and asserts conformance.
fn assert_all_cells_conform(name: &str, g: &CsrGraph) {
    for kernel in KernelKind::ALL {
        for backend in BackendKind::ALL {
            match run_case(kernel, backend, g, 16, 77) {
                Ok(None) => {}
                Ok(Some(d)) => panic!(
                    "{name}: {} on {} diverged: {d}",
                    kernel.name(),
                    backend.name()
                ),
                Err(e) => panic!(
                    "{name}: {} on {} errored: {e}",
                    kernel.name(),
                    backend.name()
                ),
            }
        }
    }
}

#[test]
fn zero_edge_graph_conforms_on_every_kernel() {
    // 40 isolated nodes: every kernel must produce all-zero aggregation and
    // the softmax path must survive rows with no logits at all.
    let g = CsrGraph::from_raw(40, vec![0; 41], Vec::new()).expect("valid empty CSR");
    assert_eq!(g.num_edges(), 0);
    assert_all_cells_conform("zero-edge", &g);
}

#[test]
fn single_row_window_graph_conforms_on_every_kernel() {
    // 10 nodes < TC_BLK_H = 16: the whole graph is one row window, so the
    // window loop and the tail-window handling are the same code path.
    let g = tc_gnn::graph::gen::erdos_renyi(10, 30, 5).expect("generator");
    assert!(g.num_nodes() <= 16);
    assert_all_cells_conform("one-row-window", &g);
}

#[test]
fn exact_window_multiple_graph_conforms_on_every_kernel() {
    // Exactly 16·k rows: no ragged tail window; off-by-one bugs in the
    // window partition show up only here.
    let g = tc_gnn::graph::gen::erdos_renyi(64, 400, 6).expect("generator");
    assert_eq!(g.num_nodes() % 16, 0);
    assert_all_cells_conform("exact-window-multiple", &g);
}

#[test]
fn row_wider_than_one_tc_block_conforms_on_every_kernel() {
    // One hub row with far more neighbors than TC_BLK_W = 8 forces a single
    // row window to span many condensed column blocks.
    let mut coo = CooGraph::new(40);
    for v in 1..40 {
        coo.push_edge(0, v);
    }
    coo.symmetrize();
    let g = coo.into_csr().expect("valid");
    assert!(g.degree(0) > 8, "hub must exceed one TC-block width");
    assert_all_cells_conform("wide-row", &g);
}

#[test]
fn full_conformance_matrix_passes() {
    // The same matrix `tcgnn verify` runs: every adversarial family ×
    // kernel × backend, plus the metamorphic suite.
    let report = run_matrix(&MatrixConfig::default());
    assert!(report.passed(), "\n{}", report.render());
}
