//! Sanity laws the simulated performance model must obey: scaling trends,
//! determinism, device sensitivity. These pin down the *shape* of the cost
//! model that the figure reproductions rely on.

use tc_gnn::gpusim::{DeviceSpec, KernelReport, Launcher};
use tc_gnn::kernels::common::{SpmmKernel, SpmmProblem};
use tc_gnn::kernels::spmm::{CusparseCsrSpmm, TcgnnSpmm};

fn run_tcgnn(g: &tc_gnn::graph::CsrGraph, d: usize, device: DeviceSpec) -> KernelReport {
    let x = tc_gnn::tensor::init::uniform(g.num_nodes(), d, -1.0, 1.0, 5);
    let prob = SpmmProblem::new(g, None, &x).expect("dims");
    let mut l = Launcher::new(device);
    TcgnnSpmm::new(g).execute(&mut l, &prob).expect("runs").1
}

#[test]
fn reports_are_deterministic() {
    let g = tc_gnn::graph::gen::rmat_default(2048, 20_000, 1).expect("generator");
    let a = run_tcgnn(&g, 32, DeviceSpec::rtx3090());
    let b = run_tcgnn(&g, 32, DeviceSpec::rtx3090());
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.time_ms, b.time_ms);
}

#[test]
fn more_edges_cost_more() {
    let small = tc_gnn::graph::gen::erdos_renyi(4096, 30_000, 2).expect("generator");
    let large = tc_gnn::graph::gen::erdos_renyi(4096, 120_000, 2).expect("generator");
    let t_small = run_tcgnn(&small, 32, DeviceSpec::rtx3090());
    let t_large = run_tcgnn(&large, 32, DeviceSpec::rtx3090());
    assert!(
        t_large.time_ms > 1.5 * t_small.time_ms,
        "4x edges: {} vs {}",
        t_large.time_ms,
        t_small.time_ms
    );
    // DRAM bytes grow sublinearly here (X fits L2), but the transaction
    // stream must scale with the edge count.
    assert!(t_large.stats.gl_load_transactions > 2 * t_small.stats.gl_load_transactions);
}

#[test]
fn wider_embeddings_cost_more() {
    let g = tc_gnn::graph::gen::rmat_default(8192, 80_000, 3).expect("generator");
    let narrow = run_tcgnn(&g, 16, DeviceSpec::rtx3090());
    let wide = run_tcgnn(&g, 128, DeviceSpec::rtx3090());
    assert!(wide.time_ms > 2.0 * narrow.time_ms);
    assert!(wide.stats.tcu_flops > 4 * narrow.stats.tcu_flops);
}

#[test]
fn a100_is_not_slower_than_3090() {
    let g = tc_gnn::graph::gen::rmat_default(16_384, 160_000, 4).expect("generator");
    let on_3090 = run_tcgnn(&g, 64, DeviceSpec::rtx3090());
    let on_a100 = run_tcgnn(&g, 64, DeviceSpec::a100());
    assert!(
        on_a100.time_ms <= on_3090.time_ms * 1.05,
        "A100 {} ms vs 3090 {} ms",
        on_a100.time_ms,
        on_3090.time_ms
    );
}

#[test]
fn simulated_times_are_physically_plausible() {
    // Lower bound: DRAM traffic over peak bandwidth. Upper bound: generous
    // constant over the same (latency-bound kernels sit well above 1).
    let g = tc_gnn::graph::gen::rmat_default(16_384, 160_000, 6).expect("generator");
    for d in [16usize, 64] {
        let r = run_tcgnn(&g, d, DeviceSpec::rtx3090());
        let bw_floor_ms = r.stats.dram_bytes() as f64 / 936e6;
        assert!(
            r.time_ms >= bw_floor_ms,
            "cannot beat the bandwidth roofline: {} < {}",
            r.time_ms,
            bw_floor_ms
        );
        assert!(
            r.time_ms < 1000.0 * bw_floor_ms.max(1e-4),
            "implausibly slow: {} ms",
            r.time_ms
        );
    }
}

#[test]
fn cost_conservation_between_cache_levels() {
    // Every load transaction is an L1 hit or an L1 miss; every L1 miss is
    // an L2 hit or an L2 miss; DRAM reads equal L2 misses × 32 B.
    let g = tc_gnn::graph::gen::citation(8192, 70_000, 7).expect("generator");
    let x = tc_gnn::tensor::init::uniform(g.num_nodes(), 32, -1.0, 1.0, 8);
    let prob = SpmmProblem::new(&g, None, &x).expect("dims");
    for kernel in [
        Box::new(CusparseCsrSpmm) as Box<dyn SpmmKernel>,
        Box::new(TcgnnSpmm::new(&g)),
    ] {
        let mut l = Launcher::new(DeviceSpec::rtx3090());
        let (_, r) = kernel.execute(&mut l, &prob).expect("runs");
        let s = &r.stats;
        assert_eq!(s.l1_hits + s.l1_misses, s.gl_load_transactions);
        assert_eq!(s.l2_hits + s.l2_misses, s.l1_misses);
        assert_eq!(s.dram_read_bytes, s.l2_misses * 32);
    }
}

#[test]
fn occupancy_and_hit_rate_are_fractions() {
    let g = tc_gnn::graph::gen::community(4096, 40_000, 8, 24, 9).expect("generator");
    let r = run_tcgnn(&g, 48, DeviceSpec::rtx3090());
    assert!((0.0..=1.0).contains(&r.occupancy));
    assert!((0.0..=1.0).contains(&r.l1_hit_rate));
    assert!(!r.bound_by.is_empty());
}
