//! Property-based cross-validation: every kernel must equal the CPU
//! reference on randomized graphs, features and edge weights.

use proptest::prelude::*;
use tc_gnn::gpusim::{DeviceSpec, Launcher};
use tc_gnn::kernels::common::{reference_sddmm, reference_spmm, SpmmKernel, SpmmProblem};
use tc_gnn::kernels::sddmm::{CudaCoreSddmm, SddmmKernel, TcgnnSddmm};
use tc_gnn::kernels::spmm::{
    BlockedEllSpmm, CusparseCsrSpmm, GeSpmm, ScatterGatherSpmm, TcgnnSpmm, TritonBlockSparseSpmm,
    TsparseLikeSpmm,
};
use tc_gnn::oracle::approx::KERNEL_ABS_TOL;
use tc_gnn::tensor::DenseMatrix;

/// Random-graph strategy: structure family × size × density × dim.
fn graph_strategy() -> impl Strategy<Value = (tc_gnn::graph::CsrGraph, usize, u64)> {
    (0usize..4, 24usize..180, 2usize..10, 1usize..40, 0u64..1000).prop_map(
        |(family, n, avg_deg, d, seed)| {
            let e = n * avg_deg;
            let g = match family {
                0 => tc_gnn::graph::gen::erdos_renyi(n, e, seed),
                1 => tc_gnn::graph::gen::rmat_default(n.next_power_of_two(), e, seed),
                2 => tc_gnn::graph::gen::citation(n, e, seed),
                _ => tc_gnn::graph::gen::community(n.max(32), e, 4, 12, seed),
            }
            .expect("generator succeeds");
            (g, d, seed)
        },
    )
}

fn spmm_kernels(g: &tc_gnn::graph::CsrGraph) -> Vec<(&'static str, Box<dyn SpmmKernel>)> {
    vec![
        ("cusparse", Box::new(CusparseCsrSpmm)),
        ("ge-spmm", Box::new(GeSpmm)),
        ("scatter", Box::new(ScatterGatherSpmm)),
        ("tcgnn", Box::new(TcgnnSpmm::new(g))),
        ("tsparse", Box::new(TsparseLikeSpmm::default())),
        ("triton", Box::new(TritonBlockSparseSpmm)),
        ("blocked-ell", Box::new(BlockedEllSpmm::default())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_spmm_kernels_match_reference((g, d, seed) in graph_strategy()) {
        let x = tc_gnn::tensor::init::uniform(g.num_nodes(), d, -1.0, 1.0, seed);
        let prob = SpmmProblem::new(&g, None, &x).expect("dims");
        let reference = reference_spmm(&prob);
        for (name, kernel) in spmm_kernels(&g) {
            let mut l = Launcher::new(DeviceSpec::rtx3090());
            let (out, report) = kernel.execute(&mut l, &prob).expect("feasible at this size");
            let diff = out.max_abs_diff(&reference).expect("same shape");
            prop_assert!(diff < KERNEL_ABS_TOL, "{name}: max diff {diff}");
            prop_assert!(report.time_ms > 0.0, "{name}: zero time");
        }
    }

    #[test]
    fn weighted_spmm_kernels_match_reference((g, d, seed) in graph_strategy()) {
        let x = tc_gnn::tensor::init::uniform(g.num_nodes(), d, -1.0, 1.0, seed);
        let vals: Vec<f32> = (0..g.num_edges()).map(|e| ((e * 37 + 11) % 23) as f32 * 0.1 - 0.5).collect();
        let prob = SpmmProblem::new(&g, Some(&vals), &x).expect("dims");
        let reference = reference_spmm(&prob);
        for (name, kernel) in spmm_kernels(&g) {
            let mut l = Launcher::new(DeviceSpec::rtx3090());
            let (out, _) = kernel.execute(&mut l, &prob).expect("feasible at this size");
            let diff = out.max_abs_diff(&reference).expect("same shape");
            prop_assert!(diff < KERNEL_ABS_TOL, "{name} weighted: max diff {diff}");
        }
    }

    #[test]
    fn sddmm_kernels_match_reference((g, d, seed) in graph_strategy()) {
        let xa = tc_gnn::tensor::init::uniform(g.num_nodes(), d, -1.0, 1.0, seed);
        let xb = tc_gnn::tensor::init::uniform(g.num_nodes(), d, -1.0, 1.0, seed ^ 7);
        let reference = reference_sddmm(&g, &xa, &xb);
        let kernels: Vec<(&str, Box<dyn SddmmKernel>)> = vec![
            ("cuda-core", Box::new(CudaCoreSddmm)),
            ("tcgnn", Box::new(TcgnnSddmm::new(&g))),
        ];
        for (name, kernel) in kernels {
            let mut l = Launcher::new(DeviceSpec::rtx3090());
            let (vals, _) = kernel.execute(&mut l, &g, &xa, &xb).expect("dims ok");
            for (i, (a, r)) in vals.iter().zip(&reference).enumerate() {
                prop_assert!((a - r).abs() < KERNEL_ABS_TOL, "{name} edge {i}: {a} vs {r}");
            }
        }
    }

    #[test]
    fn sgt_preserves_aggregation_semantics((g, d, seed) in graph_strategy()) {
        // The paper's correctness claim: SGT "can always yield the correct
        // results as the original sparse algorithm".
        let x = tc_gnn::tensor::init::uniform(g.num_nodes(), d, -1.0, 1.0, seed);
        let translated = tc_gnn::sgt::Sgt::builder().translate(&g).unwrap();
        let kernel = TcgnnSpmm::from_translated(translated);
        let prob = SpmmProblem::new(&g, None, &x).expect("dims");
        let mut l = Launcher::new(DeviceSpec::rtx3090());
        let (out, _) = kernel.execute(&mut l, &prob).expect("runs");
        let diff = out.max_abs_diff(&reference_spmm(&prob)).expect("same shape");
        prop_assert!(diff < KERNEL_ABS_TOL);
    }
}

#[test]
fn kernels_handle_star_graph() {
    // One hub connected to everyone: maximal divergence + dense window.
    let n = 200u32;
    let mut coo = tc_gnn::graph::CooGraph::new(n as usize);
    for v in 1..n {
        coo.push_edge(0, v);
    }
    coo.symmetrize();
    let g = coo.into_csr().expect("valid");
    let x = tc_gnn::tensor::init::uniform(n as usize, 12, -1.0, 1.0, 9);
    let prob = SpmmProblem::new(&g, None, &x).expect("dims");
    let reference = reference_spmm(&prob);
    for (name, kernel) in spmm_kernels(&g) {
        let mut l = Launcher::new(DeviceSpec::rtx3090());
        let (out, _) = kernel.execute(&mut l, &prob).expect("feasible");
        assert!(
            out.max_abs_diff(&reference).expect("shape") < KERNEL_ABS_TOL,
            "{name} fails on star graph"
        );
    }
}

#[test]
fn kernels_handle_zero_features() {
    let g = tc_gnn::graph::gen::erdos_renyi(100, 800, 1).expect("generator");
    let x = DenseMatrix::zeros(100, 8);
    let prob = SpmmProblem::new(&g, None, &x).expect("dims");
    for (name, kernel) in spmm_kernels(&g) {
        let mut l = Launcher::new(DeviceSpec::rtx3090());
        let (out, _) = kernel.execute(&mut l, &prob).expect("feasible");
        assert!(
            out.as_slice().iter().all(|&v| v == 0.0),
            "{name}: zero input must give zero output"
        );
    }
}
