//! End-to-end chaos tests: GCN training on the TC-GNN backend must
//! complete under a deterministic injected fault schedule, recover via
//! retry/fallback/rollback, and leave a fully reconciled audit trail —
//! every injected fault visible both in the [`FaultReport`] and as an
//! instant marker in the exported Perfetto timeline.

use tc_gnn::fault::{FaultConfig, FaultPlan};
use tc_gnn::gnn::{train_gcn, Backend, Engine, GcnModel, RecoveryPolicy, TrainConfig, TrainResult};
use tc_gnn::gpusim::DeviceSpec;
use tc_gnn::graph::datasets::{DatasetSpec, GraphClass};
use tc_gnn::graph::Dataset;
use tc_gnn::profile::{chrome_trace_json, shared, EventKind, SharedProfiler};
use tc_gnn::serve::{
    poisson_trace, serve, LoadgenConfig, ResilienceConfig, ServableModel, ServeConfig, ServedGraph,
    Session,
};

fn tiny_dataset() -> Dataset {
    DatasetSpec {
        name: "chaos-test",
        class: GraphClass::TypeI,
        num_nodes: 300,
        num_edges: 2400,
        feat_dim: 32,
        num_classes: 4,
    }
    .materialize(7)
    .expect("synthetic dataset")
}

const EPOCHS: u32 = 6;

/// One GCN training run on the TC-GNN backend with a profiler attached
/// and, optionally, a fault schedule.
fn chaos_gcn(plan: Option<(u64, FaultConfig)>, ecc_scan: bool) -> (SharedProfiler, TrainResult) {
    let ds = tiny_dataset();
    let mut eng = Engine::builder(ds.graph.clone())
        .backend(Backend::TcGnn)
        .device(DeviceSpec::rtx3090())
        .build()
        .expect("graph is symmetric");
    let profiler = shared("chaos");
    eng.attach_profiler(profiler.clone());
    if let Some((seed, config)) = plan {
        eng.attach_fault_plan(FaultPlan::new(seed, config));
    }
    eng.set_recovery_policy(RecoveryPolicy {
        ecc_scan,
        ..RecoveryPolicy::default()
    });
    let result = train_gcn(&mut eng, &ds, TrainConfig::gcn_paper().with_epochs(EPOCHS));
    (profiler, result)
}

#[test]
fn gcn_training_survives_injected_schedule() {
    let schedule = (2023u64, FaultConfig::uniform(0.05));
    let (_, clean) = chaos_gcn(None, true);
    let (profiler, faulty) = chaos_gcn(Some(schedule), true);

    // The schedule actually fired and exercised the degradation path.
    assert!(
        faulty.fault_report.total_injected() > 0,
        "schedule injected nothing: {:?}",
        faulty.fault_report
    );
    assert!(faulty.fault_report.degraded > 0, "no op ever degraded");

    // Training completed: every epoch ran, every loss is finite, and the
    // model still learns (final accuracy within 2% of the fault-free run).
    assert_eq!(faulty.epochs.len() as u32, EPOCHS);
    assert!(faulty.epochs.iter().all(|e| e.loss.is_finite()));
    let clean_acc = clean.epochs.last().unwrap().train_accuracy;
    let faulty_acc = faulty.epochs.last().unwrap().train_accuracy;
    assert!(
        (clean_acc - faulty_acc).abs() <= 0.02,
        "accuracy drifted: fault-free {clean_acc} vs chaos {faulty_acc}"
    );

    // Audit trail: one Fault instant per injected fault, one Fallback
    // instant per degraded op, and all of them survive the trace export.
    let p = profiler.read().unwrap();
    let faults = p.events_of_kind(EventKind::Fault).count() as u64;
    let fallbacks = p.events_of_kind(EventKind::Fallback).count() as u64;
    assert_eq!(faults, faulty.fault_report.total_injected());
    assert_eq!(fallbacks, faulty.fault_report.degraded);

    let v: serde_json::Value =
        serde_json::from_str(&chrome_trace_json(&p)).expect("trace is valid JSON");
    let instants = v
        .get("traceEvents")
        .and_then(serde_json::Value::as_array)
        .expect("traceEvents array")
        .iter()
        .filter(|e| e.get("ph").and_then(serde_json::Value::as_str) == Some("i"))
        .count() as u64;
    assert_eq!(instants, faults + fallbacks);
}

#[test]
fn chaos_run_is_byte_identical_across_repeats() {
    let schedule = (2023u64, FaultConfig::uniform(0.05));
    let (_, a) = chaos_gcn(Some(schedule), true);
    let (_, b) = chaos_gcn(Some(schedule), true);

    let ra = serde_json::to_string(&a.fault_report).unwrap();
    let rb = serde_json::to_string(&b.fault_report).unwrap();
    assert_eq!(ra, rb, "FaultReport must be byte-identical across runs");
    assert_eq!(a.epochs_rolled_back, b.epochs_rolled_back);
    for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
        assert_eq!(ea.loss.to_bits(), eb.loss.to_bits());
        assert_eq!(ea.train_accuracy.to_bits(), eb.train_accuracy.to_bits());
    }
}

/// Serving under the same chaos regime, with the full resilience stack on:
/// every injected fault is absorbed (nothing fails), every breaker
/// transition leaves an instant marker that survives the Perfetto export,
/// and the whole run — routing, retries, reroutes — is byte-identical
/// across repeats.
#[test]
fn chaos_serve_leaves_breaker_audit_trail_in_timeline() {
    let run = || {
        let ds = tiny_dataset();
        let graph = ServedGraph {
            name: "chaos-serve".to_string(),
            csr: ds.graph,
            features: ds.features,
        };
        let mut session = Session::new(
            ServableModel::Gcn(GcnModel::new(32, 8, 4, 11)),
            vec![graph],
            4,
        );
        let cfg = ServeConfig {
            backend: Backend::TcGnn,
            streams: 2,
            fault: Some(FaultConfig::uniform(0.7)),
            fault_seed: 2023,
            resilience: Some(ResilienceConfig::default()),
            ..ServeConfig::default()
        };
        let trace = poisson_trace(
            &[300],
            &LoadgenConfig {
                rate_rps: 2_000.0,
                requests: 40,
                deadline_ms: None,
                seed: 9,
                ..LoadgenConfig::default()
            },
        );
        let profiler = shared("chaos-serve");
        let report = serve(&mut session, &cfg, &trace, Some(&profiler));
        (profiler, report)
    };
    let (profiler, report) = run();

    assert!(
        report.faults.total_injected() > 0,
        "schedule injected nothing: {:?}",
        report.faults
    );
    assert_eq!(report.failed, 0, "resilience must absorb every fault");
    assert_eq!(report.answered, report.total_requests);
    let rs = report.resilience.expect("resilience summary present");
    assert!(rs.breaker.opened > 0, "breaker never tripped: {rs:?}");

    // Every breaker transition is an instant in the timeline, and the
    // export keeps all of them alongside the fault/fallback markers.
    let p = profiler.read().unwrap();
    let breaker_instants = p.events_of_kind(EventKind::Breaker).count();
    assert_eq!(breaker_instants, rs.breaker_transitions);
    let v: serde_json::Value =
        serde_json::from_str(&chrome_trace_json(&p)).expect("trace is valid JSON");
    let instants = v
        .get("traceEvents")
        .and_then(serde_json::Value::as_array)
        .expect("traceEvents array")
        .iter()
        .filter(|e| e.get("ph").and_then(serde_json::Value::as_str) == Some("i"))
        .count() as u64;
    assert_eq!(
        instants,
        report.faults.total_injected() + report.faults.degraded + breaker_instants as u64
    );

    let (_, report_b) = run();
    assert_eq!(report.to_json(), report_b.to_json());
}

#[test]
fn unscanned_ecc_flips_trigger_deterministic_rollback() {
    // With the ECC output scan disabled, a flip that lands in a backward
    // aggregation poisons the weight gradients; the trainer must catch it
    // after the optimizer step, roll the epoch back, and replay it on the
    // suppressed CUDA-core path — the same number of times every run.
    let schedule = (
        4099u64,
        FaultConfig {
            ecc_rate: 0.4,
            ..FaultConfig::none()
        },
    );
    let (_, a) = chaos_gcn(Some(schedule), false);
    let (_, b) = chaos_gcn(Some(schedule), false);

    assert!(a.epochs_rolled_back > 0, "schedule never poisoned an epoch");
    assert_eq!(a.epochs_rolled_back, b.epochs_rolled_back);
    assert_eq!(
        serde_json::to_string(&a.fault_report).unwrap(),
        serde_json::to_string(&b.fault_report).unwrap()
    );
    assert!(a.epochs.iter().all(|e| e.loss.is_finite()));
    let first = a.epochs.first().unwrap().loss;
    let last = a.epochs.last().unwrap().loss;
    assert!(last < first, "training must still learn: {first} -> {last}");
}
