//! Dynamic graphs: the incremental-translation metamorphic law over every
//! adversarial family, and serve-level mutation semantics — window-granular
//! cache reuse, barrier consistency, and byte-identical reruns.

use tc_gnn::gnn::{Backend, GcnModel};
use tc_gnn::oracle::delta::format_script;
use tc_gnn::oracle::Family;
use tc_gnn::oracle::{check_incremental, random_edit_script, shrink_edit_script, DeltaCheck};
use tc_gnn::serve::{
    churn_schedule, poisson_trace, serve_with_mutations, ChurnConfig, GraphMutation, LoadgenConfig,
    ServableModel, ServeConfig, ServedGraph, Session,
};
use tc_gnn::sgt::EdgeDelta;

// ---------------------------------------------------------------------------
// Metamorphic law: incremental ≡ from-scratch, on every adversarial family
// ---------------------------------------------------------------------------

/// Random edit scripts on every adversarial family: chaining
/// `apply_delta` must stay bitwise-identical (checksum + struct equality +
/// `validate`) to translating each evolved graph from scratch. Failures are
/// shrunk to a minimal script before reporting.
#[test]
fn incremental_translation_matches_scratch_on_all_families() {
    for fam in Family::ALL {
        for seed in [1u64, 42] {
            let g = fam.generate(seed);
            let script = random_edit_script(&g, seed.wrapping_mul(31), 4, 3);
            match check_incremental(&g, &script) {
                DeltaCheck::Ok => {}
                DeltaCheck::InvalidScript { step, detail } => panic!(
                    "{} seed {seed}: generator produced an invalid script at step {step}: \
                     {detail}",
                    fam.name()
                ),
                DeltaCheck::Diverged { step, detail } => {
                    let min = shrink_edit_script(&g, &script, 200);
                    panic!(
                        "{} seed {seed}: incremental diverged from scratch at step {step}: \
                         {detail}\nminimized script ({} steps):\n{}",
                        fam.name(),
                        min.len(),
                        format_script(&min)
                    );
                }
            }
        }
    }
}

/// The law also holds for scripts that drain a graph: delete every edge of
/// a window, then refill it — empty windows must splice correctly in both
/// directions.
#[test]
fn incremental_translation_survives_window_drain_and_refill() {
    let g = Family::PowerLaw.generate(7);
    // Drain window 0 completely (both edge directions), then re-insert.
    let mut drain = EdgeDelta::new();
    for v in 0..16.min(g.num_nodes()) {
        for &nb in g.neighbors(v) {
            drain.push_delete(v as u32, nb);
            if (nb as usize) < 16 {
                // The reverse edge will be pushed when its own source row
                // comes up; skip double-deleting intra-window pairs here.
                continue;
            }
            drain.push_delete(nb, v as u32);
        }
    }
    let mut refill = EdgeDelta::new();
    for &(s, d) in drain.deletes() {
        refill.push_insert(s, d);
    }
    let script = vec![drain, refill];
    match check_incremental(&g, &script) {
        DeltaCheck::Ok => {}
        other => panic!("drain/refill script failed: {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Serve-level mutation semantics
// ---------------------------------------------------------------------------

fn mutating_fixture() -> (ServableModel, Vec<ServedGraph>) {
    let mk = |name: &'static str, nodes: usize, edges: usize, seed: u64| {
        let g = tc_gnn::graph::gen::rmat_default(nodes, edges, seed).expect("rmat");
        let features = tc_gnn::tensor::init::uniform(nodes, 16, -1.0, 1.0, seed ^ 0xfea7);
        ServedGraph {
            name: name.to_string(),
            csr: g,
            features,
        }
    };
    let model = ServableModel::Gcn(GcnModel::new(16, 8, 4, 11));
    (
        model,
        vec![mk("dyn-a", 200, 1600, 3), mk("dyn-b", 150, 900, 4)],
    )
}

/// A mutation mid-trace must resolve through the *delta* cache path: the
/// touched windows retranslate, every other window's cached state is
/// preserved (counted as window hits), and the report's version stamp
/// moves.
#[test]
fn serve_mutation_preserves_untouched_window_cache_state() {
    let cfg = ServeConfig {
        backend: Backend::TcGnn,
        streams: 2,
        ..ServeConfig::default()
    };
    let (model, graphs) = mutating_fixture();
    let before_version = graphs[0].csr.fingerprint().as_u64();
    let trace = poisson_trace(
        &[200, 150],
        &LoadgenConfig {
            rate_rps: 2_000.0,
            requests: 48,
            deadline_ms: None,
            seed: 17,
            ..LoadgenConfig::default()
        },
    );
    let mid = trace[trace.len() / 2].arrival_ms;
    let mutations = vec![GraphMutation {
        at_ms: mid,
        graph: 0,
        delta: churn_schedule(
            &[graphs[0].csr.clone()],
            &ChurnConfig {
                events: 1,
                rate_eps: 1000.0,
                batch: 2,
                seed: 23,
            },
        )
        .remove(0)
        .delta,
    }];
    let mut session = Session::new(model, graphs, 4);
    let report = serve_with_mutations(&mut session, &cfg, &trace, &mutations, None);

    assert_eq!(report.mutations.requested, 1);
    assert_eq!(report.mutations.applied, 1);
    assert_eq!(report.mutations.rejected, 0);
    assert_eq!(report.answered, report.total_requests, "no request lost");
    // The post-mutation resolution went through the delta path, not a full
    // retranslation: touched windows recomputed, the rest preserved.
    assert!(
        report.cache.delta_translations >= 1,
        "mutation must resolve via delta translation, got stats {:?}",
        report.cache
    );
    assert!(report.mutations.windows_touched >= 1);
    assert!(
        report.mutations.windows_preserved > report.mutations.windows_touched,
        "most windows must be preserved: touched {} vs preserved {}",
        report.mutations.windows_touched,
        report.mutations.windows_preserved
    );
    assert!(report.mutations.delta_translate_ms > 0.0);
    // Window-granular counters: preserved windows count as window hits.
    assert!(
        report.cache.window_hits >= report.mutations.windows_preserved as u64,
        "preserved windows must surface as window hits"
    );
    // The version stamp moved for the mutated graph only.
    let versions: std::collections::HashMap<_, _> = report.graph_versions.iter().cloned().collect();
    assert_ne!(versions["dyn-a"], before_version, "version must advance");
    assert_eq!(
        versions["dyn-b"],
        session.graphs()[1].csr.fingerprint().as_u64()
    );
}

/// An invalid delta (insert of an existing edge) is rejected and counted;
/// the serve run itself is unaffected.
#[test]
fn serve_rejects_invalid_mutations_without_failing() {
    let cfg = ServeConfig {
        backend: Backend::TcGnn,
        streams: 2,
        ..ServeConfig::default()
    };
    let (model, graphs) = mutating_fixture();
    let (s, d) = graphs[0].csr.iter_edges().next().unwrap();
    let trace = poisson_trace(
        &[200, 150],
        &LoadgenConfig {
            rate_rps: 2_000.0,
            requests: 24,
            seed: 9,
            ..LoadgenConfig::default()
        },
    );
    let mutations = vec![GraphMutation {
        at_ms: trace[trace.len() / 2].arrival_ms,
        graph: 0,
        delta: EdgeDelta::new().insert(s, d),
    }];
    let mut session = Session::new(model, graphs, 4);
    let report = serve_with_mutations(&mut session, &cfg, &trace, &mutations, None);
    assert_eq!(report.mutations.requested, 1);
    assert_eq!(report.mutations.applied, 0);
    assert_eq!(report.mutations.rejected, 1);
    assert_eq!(report.answered, report.total_requests);
    assert_eq!(report.cache.delta_translations, 0);
}

/// Mutating serve runs stay deterministic: same trace + same schedule ⇒
/// byte-identical reports, on both the TCU and the hybrid backend (where
/// the dispatch mask is refreshed only for touched windows).
#[test]
fn mutating_serve_runs_are_byte_identical() {
    for backend in [Backend::TcGnn, Backend::Hybrid] {
        let cfg = ServeConfig {
            backend,
            streams: 2,
            ..ServeConfig::default()
        };
        let run = || {
            let (model, graphs) = mutating_fixture();
            let csrs: Vec<_> = graphs.iter().map(|g| g.csr.clone()).collect();
            let trace = poisson_trace(
                &[200, 150],
                &LoadgenConfig {
                    rate_rps: 1_500.0,
                    requests: 40,
                    seed: 31,
                    ..LoadgenConfig::default()
                },
            );
            let mutations = churn_schedule(
                &csrs,
                &ChurnConfig {
                    events: 4,
                    rate_eps: 300.0,
                    batch: 3,
                    seed: 8,
                },
            );
            let mut session = Session::new(model, graphs, 4);
            let report = serve_with_mutations(&mut session, &cfg, &trace, &mutations, None);
            assert_eq!(report.mutations.requested, 4);
            assert_eq!(report.mutations.applied, 4);
            report.to_json()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "{backend:?}: mutating serve reports diverged");
    }
}

/// Barrier consistency point: mutations scheduled after every arrival are
/// applied once the trace drains, so the final session state reflects the
/// whole schedule even when no request observes it.
#[test]
fn mutations_after_last_arrival_still_apply() {
    let cfg = ServeConfig {
        backend: Backend::TcGnn,
        streams: 1,
        ..ServeConfig::default()
    };
    let (model, graphs) = mutating_fixture();
    let csr0 = graphs[0].csr.clone();
    let trace = poisson_trace(
        &[200, 150],
        &LoadgenConfig {
            rate_rps: 2_000.0,
            requests: 8,
            seed: 2,
            ..LoadgenConfig::default()
        },
    );
    let last = trace.last().unwrap().arrival_ms;
    let schedule = churn_schedule(
        std::slice::from_ref(&csr0),
        &ChurnConfig {
            events: 2,
            rate_eps: 500.0,
            batch: 2,
            seed: 77,
        },
    );
    let mutations: Vec<GraphMutation> = schedule
        .into_iter()
        .map(|m| GraphMutation {
            at_ms: last + 10.0 + m.at_ms,
            ..m
        })
        .collect();
    let mut session = Session::new(model, graphs, 4);
    let report = serve_with_mutations(&mut session, &cfg, &trace, &mutations, None);
    assert_eq!(report.mutations.applied, 2);
    // The session's graph really evolved: replay the schedule offline.
    let mut expect = csr0;
    for m in &mutations {
        expect = m.delta.apply_to(&expect).expect("valid schedule");
    }
    assert_eq!(
        session.graphs()[0].csr.fingerprint(),
        expect.fingerprint(),
        "final graph state must equal the offline replay of the schedule"
    );
    let versions: std::collections::HashMap<_, _> = report.graph_versions.iter().cloned().collect();
    assert_eq!(versions["dyn-a"], expect.fingerprint().as_u64());
}
