//! Integration tests of the tcg-resilience layer: deadline propagation and
//! checkpoint cancellation, per-stream circuit breakers over the
//! TCU→CUDA-core degradation path, the brownout shedding ladder, and
//! poisoned-translation quarantine — all deterministic under the
//! virtual-time/seed regime, and all producing *typed* outcomes: under
//! chaos every response is either an answer or an explicit shed/cancel,
//! never a wrong logit and never a silent failure.

use proptest::prelude::*;
use tc_gnn::fault::{BreakerConfig, BreakerRoute, CircuitBreaker, FaultConfig, RetryPolicy};
use tc_gnn::gnn::{Backend, GcnModel};
use tc_gnn::graph::datasets::{DatasetSpec, GraphClass};
use tc_gnn::serve::{
    poisson_trace, serve, BrownoutConfig, LoadgenConfig, Outcome, Priority, ResilienceConfig,
    ServableModel, ServeConfig, ServedGraph, Session, ShedReason,
};

fn fixture() -> (ServableModel, Vec<ServedGraph>) {
    let mk = |name: &'static str, nodes: usize, edges: usize, seed: u64| {
        let ds = DatasetSpec {
            name,
            class: GraphClass::TypeI,
            num_nodes: nodes,
            num_edges: edges,
            feat_dim: 16,
            num_classes: 4,
        }
        .materialize(seed)
        .expect("synthetic dataset");
        ServedGraph {
            name: name.to_string(),
            csr: ds.graph,
            features: ds.features,
        }
    };
    let model = ServableModel::Gcn(GcnModel::new(16, 8, 4, 11));
    (
        model,
        vec![mk("res-a", 200, 1600, 3), mk("res-b", 150, 900, 4)],
    )
}

fn serve_json(cfg: &ServeConfig, trace: &[tc_gnn::serve::Request]) -> String {
    let (model, graphs) = fixture();
    let mut session = Session::new(model, graphs, 4);
    serve(&mut session, cfg, trace, None).to_json()
}

// ---------------------------------------------------------------------------
// Circuit breaker: pure fold of the fault trace
// ---------------------------------------------------------------------------

/// Reference encoding of the breaker state machine, deliberately written as
/// a standalone fold so the production `CircuitBreaker` is checked against
/// an independent formulation, not against itself.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RefState {
    Closed(u32),
    Open(f64),
    Half,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Routes, stats, transitions, and the final state are a pure function
    /// of the `(time, faulted)` observation sequence: two replays agree
    /// bit-for-bit, any prefix replay yields a transition-list prefix, and
    /// the whole trajectory matches an independent reference fold.
    #[test]
    fn breaker_is_a_pure_fold_of_its_fault_trace(
        threshold in 1u32..4,
        cooldown in 1.0f64..8.0,
        faults in proptest::collection::vec((0u8..2).prop_map(|b| b == 1), 0..80),
    ) {
        let cfg = BreakerConfig {
            failure_threshold: threshold,
            cooldown_ms: cooldown,
        };
        // Drive the production breaker with the serve-side protocol:
        // route at batch start, report at batch end, fallback batches
        // always report clean.
        let drive = |obs: &[bool]| {
            let mut br = CircuitBreaker::new(cfg);
            let mut routes = Vec::new();
            for (i, &faulted) in obs.iter().enumerate() {
                let now = i as f64;
                let route = br.route(now);
                routes.push(route);
                br.on_result(now + 0.5, faulted && route == BreakerRoute::Primary);
            }
            (routes, br)
        };
        let (routes_a, br_a) = drive(&faults);
        let (routes_b, br_b) = drive(&faults);
        prop_assert_eq!(&routes_a, &routes_b);
        prop_assert_eq!(br_a.stats(), br_b.stats());
        prop_assert_eq!(br_a.transitions().len(), br_b.transitions().len());
        let cut = faults.len() / 2;
        let (_, br_prefix) = drive(&faults[..cut]);
        prop_assert!(
            br_a.transitions().starts_with(br_prefix.transitions()),
            "prefix replay must yield a transition-list prefix"
        );

        // Independent reference fold.
        let mut state = RefState::Closed(0);
        let mut expected_routes = Vec::new();
        for (i, &f) in faults.iter().enumerate() {
            let now = i as f64;
            let route = match state {
                RefState::Closed(_) | RefState::Half => BreakerRoute::Primary,
                RefState::Open(until) if now >= until => {
                    state = RefState::Half;
                    BreakerRoute::Primary
                }
                RefState::Open(_) => BreakerRoute::Fallback,
            };
            expected_routes.push(route);
            let faulted = f && route == BreakerRoute::Primary;
            let t = now + 0.5;
            state = match state {
                RefState::Closed(n) if faulted => {
                    if n + 1 >= threshold {
                        RefState::Open(t + cooldown)
                    } else {
                        RefState::Closed(n + 1)
                    }
                }
                RefState::Closed(_) => RefState::Closed(0),
                RefState::Half if faulted => RefState::Open(t + cooldown),
                RefState::Half => RefState::Closed(0),
                open => open,
            };
        }
        prop_assert_eq!(routes_a, expected_routes);
        let expected_label = match state {
            RefState::Closed(_) => "closed",
            RefState::Open(_) => "open",
            RefState::Half => "half_open",
        };
        prop_assert_eq!(br_a.state().label(), expected_label);
    }
}

/// Seeded backoff jitter is a pure function of `(seed, sequence, attempt)`:
/// fanning the schedule computation over 8 threads reproduces the
/// single-threaded schedule bit-for-bit.
#[test]
fn retry_backoff_is_identical_across_thread_counts() {
    let policy = RetryPolicy::default().with_jitter(0.25, 42);
    let schedule = |seq_range: std::ops::Range<u64>| -> Vec<u64> {
        seq_range
            .flat_map(|s| (1..=3u32).map(move |a| policy.delay_ms(s, a).to_bits()))
            .collect()
    };
    let solo = schedule(0..64);
    let fanned: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8u64)
            .map(|t| scope.spawn(move || schedule(t * 8..(t + 1) * 8)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    assert_eq!(solo, fanned, "backoff schedule depends on thread count");
}

// ---------------------------------------------------------------------------
// Deadline propagation & cancellation
// ---------------------------------------------------------------------------

#[test]
fn dead_requests_are_cancelled_at_checkpoints_not_executed_late() {
    let resilience = ResilienceConfig {
        deadline_cancellation: true,
        breaker: None,
        brownout: None,
        retry_jitter_frac: 0.0,
        spot_check_every: 0,
    };
    let cfg_on = ServeConfig {
        backend: Backend::TcGnn,
        streams: 1,
        queue_capacity: 256,
        resilience: Some(resilience),
        ..ServeConfig::default()
    };
    let cfg_off = ServeConfig {
        resilience: None,
        ..cfg_on.clone()
    };
    // Burst overload: everything arrives at once with a deadline only the
    // first few batches can meet, so the tail is dead before it runs.
    let trace = poisson_trace(
        &[200, 150],
        &LoadgenConfig {
            rate_rps: 100_000.0,
            requests: 64,
            deadline_ms: Some(1.0),
            seed: 13,
            ..LoadgenConfig::default()
        },
    );
    let (model, graphs) = fixture();
    let mut session = Session::new(model, graphs, 4);
    let on = serve(&mut session, &cfg_on, &trace, None);
    let (model, graphs) = fixture();
    let mut session = Session::new(model, graphs, 4);
    let off = serve(&mut session, &cfg_off, &trace, None);

    assert!(on.cancelled > 0, "overload must cancel dead requests");
    assert_eq!(
        on.on_time + on.late + on.shed + on.cancelled,
        on.total_requests,
        "every request gets exactly one typed outcome"
    );
    let rs = on.resilience.expect("resilience summary present");
    assert_eq!(rs.cancelled(), on.cancelled);
    for r in &on.responses {
        if let Outcome::Cancelled {
            deadline_ms,
            cancelled_at_ms,
            ..
        } = &r.outcome
        {
            assert!(
                cancelled_at_ms >= deadline_ms,
                "request {} cancelled before its deadline died",
                r.id
            );
            let err = r.outcome.error().expect("cancel maps to a typed error");
            assert!(err.to_string().contains("cancelled at"));
        }
    }
    // Cancellation only removes work, so the stream drains no later, and
    // nothing the legacy path answered on time is lost.
    assert!(on.makespan_ms <= off.makespan_ms);
    assert_eq!(off.cancelled, 0);
    assert!(on.on_time >= off.on_time);
    // Byte-identical across repeats.
    assert_eq!(serve_json(&cfg_on, &trace), serve_json(&cfg_on, &trace));
}

// ---------------------------------------------------------------------------
// Circuit breaker end-to-end: persistent faults open it, batches reroute
// ---------------------------------------------------------------------------

#[test]
fn breaker_opens_and_reroutes_batches_under_persistent_faults() {
    let cfg = ServeConfig {
        backend: Backend::TcGnn,
        streams: 1,
        fault: Some(FaultConfig::uniform(0.8)),
        fault_seed: 42,
        resilience: Some(ResilienceConfig {
            deadline_cancellation: false,
            breaker: Some(BreakerConfig::default()),
            brownout: None,
            retry_jitter_frac: 0.25,
            spot_check_every: 0,
        }),
        ..ServeConfig::default()
    };
    let trace = poisson_trace(
        &[200, 150],
        &LoadgenConfig {
            rate_rps: 1_000.0,
            requests: 48,
            deadline_ms: None,
            seed: 5,
            ..LoadgenConfig::default()
        },
    );
    let (model, graphs) = fixture();
    let mut session = Session::new(model, graphs, 4);
    let report = serve(&mut session, &cfg, &trace, None);

    assert_eq!(report.answered, 48, "every request must still be answered");
    assert_eq!(report.failed, 0);
    let rs = report.resilience.expect("resilience summary present");
    assert!(
        rs.breaker.opened > 0,
        "persistent faults must trip the breaker: {rs:?}"
    );
    assert!(
        rs.breaker.rerouted_batches > 0,
        "an open breaker must reroute whole batches: {rs:?}"
    );
    assert!(rs.breaker_transitions > 0);
    assert!(report.faults.total_injected() > 0);
    // Byte-identical across repeats, jittered retries and all.
    assert_eq!(serve_json(&cfg, &trace), serve_json(&cfg, &trace));
}

// ---------------------------------------------------------------------------
// Brownout: graduated shedding by priority class
// ---------------------------------------------------------------------------

#[test]
fn brownout_sheds_low_priority_first_and_never_critical() {
    let cfg = ServeConfig {
        backend: Backend::TcGnn,
        streams: 1,
        queue_capacity: 8,
        resilience: Some(ResilienceConfig {
            deadline_cancellation: false,
            breaker: None,
            brownout: Some(BrownoutConfig {
                shrink_at: 0.25,
                shed_low_at: 0.5,
                // Fractions top out at 1.0, so level 3 is unreachable here:
                // the test isolates the "shed low only" rung of the ladder.
                shed_all_at: 2.0,
                shrink_factor: 1,
                wait_p99_ms: f64::INFINITY,
            }),
            retry_jitter_frac: 0.0,
            spot_check_every: 0,
        }),
        ..ServeConfig::default()
    };
    let trace = poisson_trace(
        &[200, 150],
        &LoadgenConfig {
            rate_rps: 100_000.0,
            requests: 64,
            deadline_ms: None,
            seed: 17,
            low_every: 2,
            critical_every: 7,
        },
    );
    let (model, graphs) = fixture();
    let mut session = Session::new(model, graphs, 4);
    let report = serve(&mut session, &cfg, &trace, None);

    let rs = report.resilience.expect("resilience summary present");
    assert!(
        rs.brownout.shed_low > 0,
        "sustained overload must shed low-priority arrivals: {rs:?}"
    );
    assert_eq!(
        rs.brownout.shed_normal, 0,
        "the ladder never reached level 3, so normal traffic survives"
    );
    assert!(rs.brownout.max_level >= 2);
    for r in &report.responses {
        if let Outcome::Shed {
            reason: ShedReason::Brownout { priority, .. },
        } = &r.outcome
        {
            assert_ne!(
                *priority,
                Priority::Critical,
                "request {} was critical yet brownout-shed",
                r.id
            );
        }
    }
    assert_eq!(
        report.on_time + report.late + report.shed + report.cancelled,
        report.total_requests
    );
    assert_eq!(serve_json(&cfg, &trace), serve_json(&cfg, &trace));
}

// ---------------------------------------------------------------------------
// Poisoned-translation quarantine, end to end
// ---------------------------------------------------------------------------

#[test]
fn poisoned_cache_entry_is_quarantined_and_answers_stay_bitwise_correct() {
    let resilience = ResilienceConfig {
        deadline_cancellation: false,
        breaker: None,
        brownout: None,
        retry_jitter_frac: 0.0,
        spot_check_every: 1,
    };
    let cfg = ServeConfig {
        backend: Backend::TcGnn,
        streams: 1,
        resilience: Some(resilience),
        ..ServeConfig::default()
    };
    let warmup = poisson_trace(
        &[200],
        &LoadgenConfig {
            rate_rps: 1_000.0,
            requests: 8,
            deadline_ms: None,
            seed: 23,
            ..LoadgenConfig::default()
        },
    );
    let main_trace = poisson_trace(
        &[200],
        &LoadgenConfig {
            rate_rps: 1_000.0,
            requests: 16,
            deadline_ms: None,
            seed: 29,
            ..LoadgenConfig::default()
        },
    );

    let (model, graphs) = fixture();
    let graphs = vec![graphs.into_iter().next().expect("first graph")];
    let fp = graphs[0].csr.fingerprint();
    let mut session = Session::new(model, graphs, 4);
    let _ = serve(&mut session, &cfg, &warmup, None);
    // Bit-flip the resident translation behind the cache's back — the
    // stored checksum goes stale, exactly like silent memory corruption.
    assert!(
        session.cache_mut().corrupt_resident(fp, |t| {
            t.edge_to_col[0] ^= 1;
        }),
        "warmup must have left the translation resident"
    );
    let poisoned = serve(&mut session, &cfg, &main_trace, None);
    assert!(
        poisoned.cache.poison_detected >= 1,
        "corruption must be detected: {:?}",
        poisoned.cache
    );
    assert_eq!(
        poisoned.cache.poison_detected,
        poisoned.cache.poison_recovered
    );
    assert_eq!(poisoned.answered, 16);

    // A clean reference session (never corrupted) over the same trace must
    // produce the same classes: quarantine + retranslation fully heals.
    let (model, graphs) = fixture();
    let graphs = vec![graphs.into_iter().next().expect("first graph")];
    let mut clean_session = Session::new(model, graphs, 4);
    let clean = serve(&mut clean_session, &cfg, &main_trace, None);
    let classes = |resp: &[tc_gnn::serve::Response]| -> Vec<(u64, usize)> {
        resp.iter()
            .filter_map(|r| match &r.outcome {
                Outcome::Served { class, .. } | Outcome::Late { class, .. } => Some((r.id, *class)),
                _ => None,
            })
            .collect()
    };
    assert_eq!(
        classes(&poisoned.responses),
        classes(&clean.responses),
        "a recovered poisoned cache must answer exactly like a clean one"
    );
}

// ---------------------------------------------------------------------------
// Chaos + full resilience stack: typed outcomes only, byte-identical
// ---------------------------------------------------------------------------

#[test]
fn chaos_serve_with_full_resilience_is_deterministic_and_typed() {
    let cfg = ServeConfig {
        backend: Backend::TcGnn,
        streams: 2,
        queue_capacity: 32,
        fault: Some(FaultConfig::uniform(0.3)),
        fault_seed: 42,
        resilience: Some(ResilienceConfig::default()),
        ..ServeConfig::default()
    };
    let trace = poisson_trace(
        &[200, 150],
        &LoadgenConfig {
            rate_rps: 5_000.0,
            requests: 48,
            deadline_ms: Some(20.0),
            seed: 31,
            low_every: 3,
            critical_every: 11,
        },
    );
    let (model, graphs) = fixture();
    let mut session = Session::new(model, graphs, 4);
    let report = serve(&mut session, &cfg, &trace, None);

    assert_eq!(report.failed, 0, "faults must never fail a request");
    assert_eq!(
        report.on_time + report.late + report.shed + report.cancelled,
        report.total_requests,
        "every request resolves to exactly one typed outcome"
    );
    // Shed/cancelled responses carry machine-readable reasons.
    for r in &report.responses {
        match &r.outcome {
            Outcome::Shed { .. } | Outcome::Cancelled { .. } => {
                assert!(r.outcome.error().is_some());
            }
            _ => {}
        }
    }
    assert_eq!(serve_json(&cfg, &trace), serve_json(&cfg, &trace));
}
