//! Property tests over the data-structure substrate: graph containers,
//! generators, dense algebra.

use proptest::prelude::*;
use tc_gnn::graph::{CooGraph, CsrGraph};
use tc_gnn::tensor::gemm::{gemm, gemm_naive};
use tc_gnn::tensor::DenseMatrix;

/// Rebuilds `g` through `from_raw` — which re-checks every CSR invariant
/// (monotone pointers, sorted duplicate-free neighbor lists, ids in range)
/// — and asserts the rebuilt graph is identical.
fn assert_csr_invariants(g: &CsrGraph) {
    let rebuilt = CsrGraph::from_raw(
        g.num_nodes(),
        g.node_pointer().to_vec(),
        g.edge_list().to_vec(),
    )
    .expect("mutated CSR must still satisfy every construction invariant");
    assert_eq!(&rebuilt, g);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn coo_to_csr_preserves_edge_set(
        n in 2usize..100,
        edges in prop::collection::vec((0u32..100, 0u32..100), 0..400)
    ) {
        let mut coo = CooGraph::new(n);
        let mut expect: Vec<(u32, u32)> = Vec::new();
        for (a, b) in edges {
            let (a, b) = (a % n as u32, b % n as u32);
            coo.push_edge(a, b);
            expect.push((a, b));
        }
        expect.sort_unstable();
        expect.dedup();
        let csr = coo.into_csr().expect("valid");
        let got: Vec<(u32, u32)> = csr.iter_edges().collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn transpose_is_an_involution(
        n in 2usize..80,
        edges in prop::collection::vec((0u32..80, 0u32..80), 0..300)
    ) {
        let mut coo = CooGraph::new(n);
        for (a, b) in edges {
            coo.push_edge(a % n as u32, b % n as u32);
        }
        let csr = coo.into_csr().expect("valid");
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn transpose_permutation_is_bijective(
        n in 2usize..80,
        edges in prop::collection::vec((0u32..80, 0u32..80), 1..300)
    ) {
        let mut coo = CooGraph::new(n);
        for (a, b) in edges {
            coo.push_edge(a % n as u32, b % n as u32);
        }
        let csr = coo.into_csr().expect("valid");
        let perm = csr.transpose_permutation();
        let mut seen = vec![false; csr.num_edges()];
        for &p in &perm {
            prop_assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gcn_norm_values_are_positive_and_bounded(
        n in 2usize..80,
        edges in prop::collection::vec((0u32..80, 0u32..80), 1..300)
    ) {
        let mut coo = CooGraph::new(n);
        for (a, b) in edges {
            coo.push_edge(a % n as u32, b % n as u32);
        }
        coo.symmetrize();
        let csr = coo.into_csr().expect("valid");
        for v in csr.gcn_norm_edge_values() {
            prop_assert!(v > 0.0 && v <= 1.0);
        }
    }

    #[test]
    fn blocked_gemm_matches_naive(
        m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1000
    ) {
        let a = tc_gnn::tensor::init::uniform(m, k, -2.0, 2.0, seed);
        let b = tc_gnn::tensor::init::uniform(k, n, -2.0, 2.0, seed ^ 1);
        let c1 = gemm(&a, &b).expect("dims");
        let c2 = gemm_naive(&a, &b).expect("dims");
        prop_assert!(c1.max_abs_diff(&c2).expect("shape") < 1e-3);
    }

    #[test]
    fn gemm_distributes_over_addition(
        m in 1usize..16, k in 1usize..16, n in 1usize..16, seed in 0u64..1000
    ) {
        let a = tc_gnn::tensor::init::uniform(m, k, -1.0, 1.0, seed);
        let b1 = tc_gnn::tensor::init::uniform(k, n, -1.0, 1.0, seed ^ 2);
        let b2 = tc_gnn::tensor::init::uniform(k, n, -1.0, 1.0, seed ^ 3);
        let mut b_sum = b1.clone();
        b_sum.add_assign(&b2).expect("shape");
        let lhs = gemm(&a, &b_sum).expect("dims");
        let mut rhs = gemm(&a, &b1).expect("dims");
        rhs.add_assign(&gemm(&a, &b2).expect("dims")).expect("shape");
        prop_assert!(lhs.max_abs_diff(&rhs).expect("shape") < 1e-3);
    }

    #[test]
    fn tile_padded_never_reads_out_of_bounds(
        rows in 1usize..20, cols in 1usize..20,
        r0 in 0usize..30, c0 in 0usize..30,
        h in 1usize..8, w in 1usize..8
    ) {
        let m = DenseMatrix::from_fn(rows, cols, |r, c| (r * cols + c) as f32);
        let t = m.tile_padded(r0, c0, h, w);
        prop_assert_eq!(t.shape(), (h, w));
        for r in 0..h {
            for c in 0..w {
                let expect = if r0 + r < rows && c0 + c < cols {
                    ((r0 + r) * cols + (c0 + c)) as f32
                } else {
                    0.0
                };
                prop_assert_eq!(t.get(r, c), expect);
            }
        }
    }
}

#[test]
fn every_table4_spec_materializes() {
    // Smoke: the full registry, at a steep scale divisor, produces valid
    // datasets of every structural class.
    for spec in tc_gnn::graph::datasets::TABLE4.iter() {
        let ds = spec.scaled(64).materialize(3).expect("materializes");
        assert!(ds.graph.is_symmetric(), "{}", spec.name);
        assert_eq!(ds.features.rows(), ds.num_nodes());
        assert!(ds.labels.iter().all(|&l| (l as usize) < spec.num_classes));
    }
}

// ---------------------------------------------------------------------------
// CSR mutation laws: insert_edge / remove_edge keep every invariant and
// round-trip through induced_subgraph
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Toggling random directed edges one at a time must keep the CSR
    /// well-formed after every single step: monotone pointers, sorted
    /// duplicate-free neighbor lists, consistent `has_edge`, and a
    /// fingerprint that moves on every mutation.
    #[test]
    fn edge_toggles_preserve_csr_invariants(
        n in 2usize..80,
        base in prop::collection::vec((0u32..80, 0u32..80), 0..200),
        toggles in prop::collection::vec((0u32..80, 0u32..80), 1..40),
    ) {
        let mut coo = CooGraph::new(n);
        for (a, b) in base {
            coo.push_edge(a % n as u32, b % n as u32);
        }
        let mut g = coo.into_csr().expect("valid base graph");
        for (a, b) in toggles {
            let (s, d) = (a % n as u32, b % n as u32);
            let before = g.fingerprint();
            let had = g.has_edge(s as usize, d);
            if had {
                prop_assert_eq!(g.remove_edge(s, d).expect("in range"), true);
            } else {
                prop_assert_eq!(g.insert_edge(s, d).expect("in range"), true);
            }
            prop_assert_eq!(g.has_edge(s as usize, d), !had);
            prop_assert_ne!(g.fingerprint(), before, "fingerprint must move");
            assert_csr_invariants(&g);
        }
    }

    /// Inserting an absent edge and removing it again is the identity, down
    /// to the version fingerprint; re-inserting/re-removing reports `false`
    /// idempotently without perturbing the graph.
    #[test]
    fn insert_then_remove_round_trips(
        n in 2usize..80,
        base in prop::collection::vec((0u32..80, 0u32..80), 0..200),
        s in 0u32..80, d in 0u32..80,
    ) {
        let mut coo = CooGraph::new(n);
        for (a, b) in base {
            coo.push_edge(a % n as u32, b % n as u32);
        }
        let orig = coo.into_csr().expect("valid base graph");
        let (s, d) = (s % n as u32, d % n as u32);
        let mut g = orig.clone();
        if g.has_edge(s as usize, d) {
            prop_assert!(g.remove_edge(s, d).unwrap());
            prop_assert!(!g.remove_edge(s, d).unwrap(), "double remove is a no-op");
            prop_assert!(g.insert_edge(s, d).unwrap());
        } else {
            prop_assert!(g.insert_edge(s, d).unwrap());
            prop_assert!(!g.insert_edge(s, d).unwrap(), "double insert is a no-op");
            prop_assert!(g.remove_edge(s, d).unwrap());
        }
        prop_assert_eq!(&g, &orig, "toggle twice must restore the graph");
        prop_assert_eq!(g.fingerprint(), orig.fingerprint());
    }

    /// A mutated CSR restricted through `induced_subgraph` must renumber
    /// densely and carry exactly the surviving edges — mutations compose
    /// with the shrinker's primitive.
    #[test]
    fn mutated_graphs_round_trip_through_induced_subgraph(
        n in 4usize..60,
        base in prop::collection::vec((0u32..60, 0u32..60), 0..150),
        toggles in prop::collection::vec((0u32..60, 0u32..60), 1..20),
        keep_seed in prop::collection::vec(0u8..2, 60..61),
    ) {
        let mut coo = CooGraph::new(n);
        for (a, b) in base {
            coo.push_edge(a % n as u32, b % n as u32);
        }
        let mut g = coo.into_csr().expect("valid base graph");
        for (a, b) in toggles {
            let (s, d) = (a % n as u32, b % n as u32);
            if g.has_edge(s as usize, d) {
                g.remove_edge(s, d).unwrap();
            } else {
                g.insert_edge(s, d).unwrap();
            }
        }
        let keep: Vec<bool> = keep_seed[..n].iter().map(|&b| b == 1).collect();
        let sub = g.induced_subgraph(&keep);
        assert_csr_invariants(&sub);
        // Dense renumbering of kept nodes, in node order.
        let mut new_id = vec![u32::MAX; n];
        let mut next = 0u32;
        for (v, &k) in keep.iter().enumerate() {
            if k {
                new_id[v] = next;
                next += 1;
            }
        }
        prop_assert_eq!(sub.num_nodes(), next as usize);
        let mut expect: Vec<(u32, u32)> = g
            .iter_edges()
            .filter(|&(s, t)| keep[s as usize] && keep[t as usize])
            .map(|(s, t)| (new_id[s as usize], new_id[t as usize]))
            .collect();
        expect.sort_unstable();
        let got: Vec<(u32, u32)> = sub.iter_edges().collect();
        prop_assert_eq!(got, expect, "surviving edges must renumber exactly");
    }
}
