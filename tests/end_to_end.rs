//! Cross-crate integration: dataset → SGT → kernels → GNN training.

use tc_gnn::gnn::{train_agnn, train_gcn, Backend, Engine, TrainConfig};
use tc_gnn::gpusim::DeviceSpec;
use tc_gnn::graph::datasets::spec_by_name;
use tc_gnn::oracle::approx::LOSS_ABS_TOL;

fn cora_small() -> tc_gnn::graph::Dataset {
    spec_by_name("Cora")
        .expect("registry")
        .scaled(4)
        .materialize(2024)
        .expect("synthetic dataset")
}

#[test]
fn gcn_converges_on_synthetic_cora() {
    let ds = cora_small();
    let mut eng = Engine::builder(ds.graph.clone())
        .backend(Backend::TcGnn)
        .device(DeviceSpec::rtx3090())
        .build()
        .expect("graph is symmetric");
    let cfg = TrainConfig {
        hidden: 16,
        layers: 2,
        epochs: 40,
        lr: 0.02,
        seed: 3,
    };
    let r = train_gcn(&mut eng, &ds, cfg);
    assert!(r.loss_drop() > 0.3, "loss must fall: {}", r.loss_drop());
    let chance = 1.0 / ds.spec.num_classes as f64;
    assert!(
        r.final_accuracy() > 2.0 * chance,
        "accuracy {} must beat chance {}",
        r.final_accuracy(),
        chance
    );
}

#[test]
fn agnn_converges_on_synthetic_cora() {
    let ds = cora_small();
    let mut eng = Engine::builder(ds.graph.clone())
        .backend(Backend::TcGnn)
        .device(DeviceSpec::rtx3090())
        .build()
        .expect("graph is symmetric");
    let cfg = TrainConfig {
        hidden: 16,
        layers: 2,
        epochs: 30,
        lr: 0.02,
        seed: 4,
    };
    let r = train_agnn(&mut eng, &ds, cfg);
    assert!(r.loss_drop() > 0.15, "loss must fall: {}", r.loss_drop());
    assert!(r.final_accuracy() > 1.5 / ds.spec.num_classes as f64);
}

#[test]
fn backends_train_to_equivalent_losses() {
    // The backends differ only in *how* aggregation runs (plus TF-32
    // rounding on the TCU path); training trajectories must agree closely.
    let ds = cora_small();
    let cfg = TrainConfig {
        hidden: 8,
        layers: 2,
        epochs: 12,
        lr: 0.02,
        seed: 5,
    };
    let losses: Vec<f64> = Backend::all()
        .iter()
        .map(|&b| {
            let mut eng = Engine::builder(ds.graph.clone())
                .backend(b)
                .device(DeviceSpec::rtx3090())
                .build()
                .expect("graph is symmetric");
            train_gcn(&mut eng, &ds, cfg)
                .epochs
                .last()
                .expect("ran")
                .loss
        })
        .collect();
    for l in &losses[1..] {
        assert!(
            (l - losses[0]).abs() < LOSS_ABS_TOL,
            "backend losses diverged: {losses:?}"
        );
    }
}

#[test]
fn tcgnn_outperforms_both_frameworks_end_to_end() {
    // The headline Figure 6 direction on a Type I dataset.
    let ds = cora_small();
    let cfg = TrainConfig::gcn_paper().with_epochs(2);
    let run = |b| {
        let mut eng = Engine::builder(ds.graph.clone())
            .backend(b)
            .device(DeviceSpec::rtx3090())
            .build()
            .expect("graph is symmetric");
        train_gcn(&mut eng, &ds, cfg).avg_epoch_ms()
    };
    let dgl = run(Backend::DglLike);
    let pyg = run(Backend::PygLike);
    let tc = run(Backend::TcGnn);
    assert!(tc < dgl, "TC-GNN {tc} ms vs DGL {dgl} ms");
    assert!(tc < pyg, "TC-GNN {tc} ms vs PyG {pyg} ms");
}

#[test]
fn sgt_overhead_amortizes_over_training() {
    // Figure 7(b): one-time SGT is a small fraction of a long run.
    let ds = cora_small();
    let mut eng = Engine::builder(ds.graph.clone())
        .backend(Backend::TcGnn)
        .device(DeviceSpec::rtx3090())
        .build()
        .expect("graph is symmetric");
    let r = train_gcn(&mut eng, &ds, TrainConfig::gcn_paper().with_epochs(2));
    let epoch_ms = r.avg_epoch_ms();
    let pct = tc_gnn::sgt::overhead::overhead_pct(r.preprocessing_ms, epoch_ms, 200);
    assert!(pct < 20.0, "SGT should amortize over 200 epochs: {pct:.1}%");
}
