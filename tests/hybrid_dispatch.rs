//! Property tests of the hybrid per-window dispatcher.
//!
//! Two families of invariants, over random graphs:
//!
//! - **Stitching**: for *any* forced per-window dispatch mask, the mixed
//!   launch's output is bitwise identical to stitching the two pure-backend
//!   outputs window by window — the hybrid kernels replay the chosen pure
//!   kernel's functional arithmetic exactly, so mixing is free of
//!   cross-window interference.
//! - **Decision purity**: the dispatcher's choice is a pure function of
//!   window geometry — the same window gets the same backend across
//!   repeated evaluations and across sequential vs parallel translation at
//!   any thread count.

use proptest::prelude::*;
use tc_gnn::gpusim::{DeviceSpec, Launcher};
use tc_gnn::kernels::common::SpmmKernel;
use tc_gnn::kernels::hybrid::{DispatchPolicy, KernelClass, WindowBackend};
use tc_gnn::kernels::sddmm::{CudaCoreSddmm, HybridSddmm, SddmmKernel, TcgnnSddmm};
use tc_gnn::kernels::spmm::{CusparseCsrSpmm, HybridSpmm, TcgnnSpmm};
use tc_gnn::kernels::SpmmProblem;
use tc_gnn::sgt::{Sgt, TC_BLK_H};
use tc_gnn::tensor::init;

fn graph_strategy() -> impl Strategy<Value = tc_gnn::graph::CsrGraph> {
    (16usize..320, 1usize..10, 0u64..10_000, 0usize..3).prop_map(|(n, deg, seed, family)| {
        let e = n * deg;
        match family {
            0 => tc_gnn::graph::gen::erdos_renyi(n, e, seed),
            1 => tc_gnn::graph::gen::rmat_default(n.next_power_of_two(), e, seed),
            _ => tc_gnn::graph::gen::community(n.max(32), e, 4, 16, seed),
        }
        .expect("generator succeeds")
    })
}

/// Derives an arbitrary dispatch mask from a seed (splitmix-style), so the
/// mask space is sampled independently of the policy.
fn mask_from_seed(windows: usize, seed: u64) -> Vec<WindowBackend> {
    let mut s = seed;
    (0..windows)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (s >> 33) & 1 == 0 {
                WindowBackend::Tcu
            } else {
                WindowBackend::CudaCore
            }
        })
        .collect()
}

fn launcher() -> Launcher {
    Launcher::new(DeviceSpec::rtx3090())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn spmm_mixed_launch_stitches_pure_outputs_bitwise(
        g in graph_strategy(),
        mask_seed in 0u64..u64::MAX,
        dim in (1usize..5).prop_map(|k| k * 8),
        weighted_bit in 0u8..2,
    ) {
        let weighted = weighted_bit == 1;
        let n = g.num_nodes();
        let x = init::uniform(n, dim, -1.0, 1.0, 21);
        let vals: Vec<f32> = (0..g.num_edges())
            .map(|e| 0.05 + (e % 13) as f32 * 0.07)
            .collect();
        let prob = SpmmProblem::new(&g, weighted.then_some(vals.as_slice()), &x).unwrap();
        let t = Sgt::builder().translate(&g).unwrap();
        let mask = mask_from_seed(t.num_row_windows, mask_seed);

        let (out_h, _) = HybridSpmm::from_translated(t.clone())
            .with_mask(mask.clone())
            .execute(&mut launcher(), &prob)
            .unwrap();
        let (out_t, _) = TcgnnSpmm::from_translated(t)
            .execute(&mut launcher(), &prob)
            .unwrap();
        let (out_c, _) = CusparseCsrSpmm.execute(&mut launcher(), &prob).unwrap();

        for (w, &wb) in mask.iter().enumerate() {
            let lo = w * TC_BLK_H * dim;
            let hi = ((w + 1) * TC_BLK_H).min(n) * dim;
            let want = match wb {
                WindowBackend::Tcu => &out_t,
                WindowBackend::CudaCore => &out_c,
            };
            prop_assert_eq!(
                &out_h.as_slice()[lo..hi],
                &want.as_slice()[lo..hi],
                "window {} ({:?}) diverged from its pure backend",
                w,
                wb
            );
        }
    }

    #[test]
    fn sddmm_mixed_launch_stitches_pure_outputs_bitwise(
        g in graph_strategy(),
        mask_seed in 0u64..u64::MAX,
        dim in (0usize..3).prop_map(|i| [8usize, 16, 32][i]),
    ) {
        let n = g.num_nodes();
        let xa = init::uniform(n, dim, -1.0, 1.0, 31);
        let xb = init::uniform(n, dim, -1.0, 1.0, 32);
        let t = Sgt::builder().translate(&g).unwrap();
        let mask = mask_from_seed(t.num_row_windows, mask_seed);

        let (out_h, _) = HybridSddmm::from_translated(t.clone())
            .with_mask(mask.clone())
            .execute(&mut launcher(), &g, &xa, &xb)
            .unwrap();
        let (out_t, _) = TcgnnSddmm::from_translated(t)
            .execute(&mut launcher(), &g, &xa, &xb)
            .unwrap();
        let (out_c, _) = CudaCoreSddmm.execute(&mut launcher(), &g, &xa, &xb).unwrap();

        // A window owns the contiguous CSR edge range of its rows.
        let ptr = g.node_pointer();
        for (w, &wb) in mask.iter().enumerate() {
            let lo = ptr[w * TC_BLK_H];
            let hi = ptr[((w + 1) * TC_BLK_H).min(n)];
            let want = match wb {
                WindowBackend::Tcu => &out_t,
                WindowBackend::CudaCore => &out_c,
            };
            let same = out_h[lo..hi]
                .iter()
                .zip(&want[lo..hi])
                .all(|(a, b)| a.to_bits() == b.to_bits());
            prop_assert!(
                same,
                "window {} ({:?}) edge values diverged from its pure backend",
                w,
                wb
            );
        }
    }

    #[test]
    fn dispatch_decision_is_pure_in_window_geometry(
        g in graph_strategy(),
        dim in (0usize..3).prop_map(|i| [8usize, 16, 32][i]),
        threads in 1usize..9,
    ) {
        // Same window → same choice, across repeated evaluations and across
        // sequential vs parallel translation at any thread count.
        let t_seq = Sgt::builder().translate(&g).unwrap();
        let t_par = Sgt::builder().threads(threads).translate(&g).unwrap();
        for class in [KernelClass::Spmm, KernelClass::Sddmm] {
            let policy = DispatchPolicy::default_for(class);
            let a = policy.mask(&t_seq, &g, dim);
            let b = policy.mask(&t_seq, &g, dim);
            let c = policy.mask(&t_par, &g, dim);
            prop_assert_eq!(&a, &b, "re-evaluation changed the mask ({})", class.label());
            prop_assert_eq!(
                &a, &c,
                "translation thread count changed the mask ({})",
                class.label()
            );
        }
    }
}
