//! Integration tests of the serving subsystem: LRU cache laws under
//! arbitrary access sequences, end-to-end determinism of a multi-stream
//! serve run (timelines and reports must be byte-identical across runs),
//! and chaos serving absorbing every injected fault.

use std::sync::Arc;

use proptest::prelude::*;
use tc_gnn::fault::FaultConfig;
use tc_gnn::gnn::{Backend, GcnModel};
use tc_gnn::graph::datasets::{DatasetSpec, GraphClass};
use tc_gnn::graph::GraphVersion;
use tc_gnn::profile::{chrome_trace_json, shared};
use tc_gnn::serve::{
    poisson_trace, serve, CachedTranslation, LoadgenConfig, ServableModel, ServeConfig,
    ServedGraph, Session, TranslationCache,
};

// ---------------------------------------------------------------------------
// LRU cache laws
// ---------------------------------------------------------------------------

fn dummy_entry(ms: f64) -> CachedTranslation {
    let g = tc_gnn::graph::CsrGraph::from_raw(2, vec![0, 1, 2], vec![1, 0]).expect("tiny graph");
    let t = tc_gnn::sgt::Sgt::builder()
        .translate(&g)
        .expect("tiny graph translates");
    CachedTranslation::new(Arc::new(t), ms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replays an arbitrary access sequence against the cache and a naive
    /// reference LRU; residency, order, and counters must agree, and the
    /// size bound must hold at every step.
    #[test]
    fn cache_matches_reference_lru(
        capacity in 0usize..5,
        accesses in proptest::collection::vec(0u64..8, 0..60),
    ) {
        let mut cache = TranslationCache::new(capacity);
        // Reference model: Vec ordered least- to most-recently used.
        let mut reference: Vec<GraphVersion> = Vec::new();
        let (mut hits, mut misses, mut evictions) = (0u64, 0u64, 0u64);
        for &raw in &accesses {
            let fp = GraphVersion::from_u64(raw);
            let sgt_ms = 1.0 + raw as f64;
            if let Some(pos) = reference.iter().position(|&r| r == fp) {
                let v = reference.remove(pos);
                reference.push(v);
                hits += 1;
                prop_assert!(cache.lookup(fp).is_some());
            } else {
                misses += 1;
                prop_assert!(cache.lookup(fp).is_none());
                cache.insert(fp, dummy_entry(sgt_ms));
                if capacity > 0 {
                    reference.push(fp);
                    if reference.len() > capacity {
                        reference.remove(0);
                        evictions += 1;
                    }
                }
            }
            prop_assert!(cache.len() <= capacity);
            prop_assert_eq!(cache.resident(), reference.clone());
        }
        let s = cache.stats();
        prop_assert_eq!((s.hits, s.misses, s.evictions), (hits, misses, evictions));
        prop_assert_eq!(s.hits + s.misses, accesses.len() as u64);
    }

    /// A hit must return the exact translation inserted under that
    /// fingerprint, not some other resident entry.
    #[test]
    fn cache_returns_the_entry_inserted(fps in proptest::collection::vec(0u64..6, 1..20)) {
        let mut cache = TranslationCache::new(4);
        for &raw in &fps {
            let fp = GraphVersion::from_u64(raw);
            if let Some(got) = cache.lookup(fp) {
                prop_assert_eq!(got.sgt_ms, raw as f64);
            } else {
                cache.insert(fp, dummy_entry(raw as f64));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Cache-hit answers are bitwise-identical to cold-translation answers
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A response computed from a cache-hit translation must be *bitwise*
    /// identical to one computed by a cold engine that runs SGT itself —
    /// the cache may only save time, never perturb a single logit bit.
    #[test]
    fn cache_hit_answers_bitwise_equal_cold_answers(
        nodes in 60usize..160,
        avg_deg in 3usize..9,
        seed in 0u64..500,
    ) {
        let ds = DatasetSpec {
            name: "cache-vs-cold",
            class: GraphClass::TypeI,
            num_nodes: nodes,
            num_edges: nodes * avg_deg,
            feat_dim: 16,
            num_classes: 4,
        }
        .materialize(seed)
        .expect("synthetic dataset");
        let model = ServableModel::Gcn(GcnModel::new(16, 8, 4, 11));
        let device = tc_gnn::gpusim::DeviceSpec::rtx3090();

        // Cold path: the engine runs Algorithm 1 itself.
        let mut cold = tc_gnn::gnn::Engine::builder(ds.graph.clone())
        .backend(Backend::TcGnn)
        .device(device.clone())
        .build()
        .expect("graph is symmetric");
        let (cold_logits, _) = model.infer(&mut cold, &ds.features);

        // Cached path: translate through the serving cache, then *hit* it —
        // the engine consumes the shared cached translation.
        let mut cache = TranslationCache::new(2);
        let cold_res = cache.get_or_translate(&ds.graph);
        prop_assert!(!cold_res.hit(), "first access must miss");
        let warm_res = cache.get_or_translate(&ds.graph);
        prop_assert!(warm_res.hit(), "second access must hit");
        prop_assert_eq!(warm_res.paid_ms, 0.0, "a hit must pay no SGT time");
        let translation = warm_res.translation;
        let mut warm = tc_gnn::gnn::Engine::builder(ds.graph.clone())
            .backend(Backend::TcGnn)
            .device(device)
            .translation((*translation).clone())
            .build()
            .expect("translation matches the graph");
        let (warm_logits, _) = model.infer(&mut warm, &ds.features);

        prop_assert_eq!(cold_logits.rows(), warm_logits.rows());
        prop_assert_eq!(cold_logits.cols(), warm_logits.cols());
        for (i, (c, w)) in cold_logits
            .as_slice()
            .iter()
            .zip(warm_logits.as_slice())
            .enumerate()
        {
            prop_assert_eq!(
                c.to_bits(),
                w.to_bits(),
                "logit {} differs: cold {:e} vs cache-hit {:e}",
                i, c, w
            );
        }
    }
}

// ---------------------------------------------------------------------------
// End-to-end serve determinism
// ---------------------------------------------------------------------------

fn serving_fixture() -> (ServableModel, Vec<ServedGraph>) {
    let mk = |name: &'static str, nodes: usize, edges: usize, seed: u64| {
        let ds = DatasetSpec {
            name,
            class: GraphClass::TypeI,
            num_nodes: nodes,
            num_edges: edges,
            feat_dim: 16,
            num_classes: 4,
        }
        .materialize(seed)
        .expect("synthetic dataset");
        ServedGraph {
            name: name.to_string(),
            csr: ds.graph,
            features: ds.features,
        }
    };
    // Untrained (seeded) weights: serving determinism does not depend on
    // training having happened first.
    let model = ServableModel::Gcn(GcnModel::new(16, 8, 4, 11));
    (
        model,
        vec![mk("srv-a", 200, 1600, 3), mk("srv-b", 150, 900, 4)],
    )
}

fn serve_once(cfg: &ServeConfig, trace: &[tc_gnn::serve::Request]) -> (String, String) {
    let (model, graphs) = serving_fixture();
    let mut session = Session::new(model, graphs, 4);
    let profiler = shared("serve-test");
    let report = serve(&mut session, cfg, trace, Some(&profiler));
    let timeline = chrome_trace_json(&profiler.read().expect("profiler lock"));
    (timeline, report.to_json())
}

/// Same session inputs + same trace ⇒ byte-identical per-stream timelines
/// and reports, worker threads notwithstanding.
#[test]
fn serve_runs_are_byte_identical() {
    let cfg = ServeConfig {
        backend: Backend::TcGnn,
        streams: 3,
        ..ServeConfig::default()
    };
    let trace = poisson_trace(
        &[200, 150],
        &LoadgenConfig {
            rate_rps: 2_000.0,
            requests: 48,
            deadline_ms: Some(25.0),
            seed: 99,
            ..LoadgenConfig::default()
        },
    );
    let (timeline_a, report_a) = serve_once(&cfg, &trace);
    let (timeline_b, report_b) = serve_once(&cfg, &trace);
    assert_eq!(timeline_a, timeline_b, "per-stream timelines diverged");
    assert_eq!(report_a, report_b, "serve reports diverged");
    // The timelines really are multi-stream: every configured stream left
    // its own named track.
    for stream in 0..3 {
        assert!(
            timeline_a.contains(&format!("stream-{stream}")),
            "stream {stream} track missing from timeline"
        );
    }
}

/// Request-scoped tracing: every kernel event recorded during a profiled
/// serve run carries the trace ids of the requests its batch did work for,
/// the ids cover the whole trace, and the per-request span trees (and the
/// Perfetto export embedding them) are byte-identical across reruns.
#[test]
fn profiled_serve_propagates_request_trace_ids() {
    let cfg = ServeConfig {
        backend: Backend::TcGnn,
        streams: 2,
        ..ServeConfig::default()
    };
    let trace = poisson_trace(
        &[200, 150],
        &LoadgenConfig {
            rate_rps: 2_000.0,
            requests: 24,
            deadline_ms: None,
            seed: 21,
            ..LoadgenConfig::default()
        },
    );
    let run = || {
        let (model, graphs) = serving_fixture();
        let mut session = Session::new(model, graphs, 4);
        let profiler = shared("serve-test");
        let report = serve(&mut session, &cfg, &trace, Some(&profiler));
        let p = profiler.read().expect("profiler lock");
        assert!(!p.events().is_empty(), "profiled serve recorded no events");
        let mut seen = std::collections::BTreeSet::new();
        for e in p.events() {
            assert!(
                !e.trace.is_empty(),
                "kernel event {:?} carries no request trace ids",
                e.name
            );
            seen.extend(e.trace.iter().copied());
        }
        let all: std::collections::BTreeSet<u64> = trace.iter().map(|r| r.id).collect();
        assert_eq!(seen, all, "kernel-event trace ids must cover every request");
        assert_eq!(
            p.request_trees().len(),
            report.answered as usize,
            "one span tree per answered request"
        );
        (format!("{:?}", p.request_trees()), chrome_trace_json(&p))
    };
    let (trees_a, timeline_a) = run();
    let (trees_b, timeline_b) = run();
    assert_eq!(
        trees_a, trees_b,
        "request span trees diverged across reruns"
    );
    assert_eq!(timeline_a, timeline_b, "profiled timelines diverged");
    // The export embeds the request track and per-request async spans.
    assert!(timeline_a.contains("requests"), "request track missing");
    assert!(timeline_a.contains("req-"), "per-request spans missing");
}

/// Determinism also holds under fault injection: the chaos schedule is part
/// of the seeded state, not a source of nondeterminism.
#[test]
fn chaos_serve_is_deterministic_and_never_fails_requests() {
    let cfg = ServeConfig {
        backend: Backend::TcGnn,
        streams: 2,
        fault: Some(FaultConfig::uniform(0.2)),
        fault_seed: 42,
        ..ServeConfig::default()
    };
    let trace = poisson_trace(
        &[200, 150],
        &LoadgenConfig {
            rate_rps: 1_000.0,
            requests: 32,
            deadline_ms: None,
            seed: 5,
            ..LoadgenConfig::default()
        },
    );
    let (model, graphs) = serving_fixture();
    let mut session = Session::new(model, graphs, 4);
    let report = serve(&mut session, &cfg, &trace, None);
    assert_eq!(report.answered, 32, "every request must be answered");
    assert_eq!(
        report.failed, 0,
        "injected faults must degrade batches, not fail requests"
    );
    assert!(
        report.faults.total_injected() > 0,
        "a 20% fault rate over 32 requests should inject something"
    );
    let (timeline_a, json_a) = serve_once(&cfg, &trace);
    let (timeline_b, json_b) = serve_once(&cfg, &trace);
    assert_eq!(timeline_a, timeline_b);
    assert_eq!(json_a, json_b);
}
