//! Quickstart: translate a graph with SGT and run one TC-GNN aggregation.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use tc_gnn::gpusim::{DeviceSpec, Launcher};
use tc_gnn::kernels::common::{SpmmKernel, SpmmProblem};
use tc_gnn::kernels::spmm::{CusparseCsrSpmm, TcgnnSpmm};
use tc_gnn::sgt;

fn main() {
    // 1. A graph: synthetic citation network, Cora-sized.
    let graph = tc_gnn::graph::gen::citation(2_708, 10_858, 42).expect("generator");
    println!(
        "graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // 2. Sparse Graph Translation (the paper's Algorithm 1): one-time
    //    preprocessing that condenses each 16-row window's columns.
    let translated = sgt::Sgt::builder().translate(&graph).unwrap();
    let census = sgt::census(&graph);
    println!(
        "SGT: {} row windows, {} TCU blocks ({}% fewer than without SGT)",
        translated.num_row_windows,
        translated.total_tc_blocks(),
        census.reduction_pct().round()
    );

    // 3. Node features and an aggregation problem.
    let x = tc_gnn::tensor::init::uniform(graph.num_nodes(), 16, -1.0, 1.0, 7);
    let prob = SpmmProblem::new(&graph, None, &x).expect("dims match");

    // 4. Run the TC-GNN tensor-core kernel and the cuSPARSE-class baseline
    //    on the simulated RTX 3090.
    let mut launcher = Launcher::new(DeviceSpec::rtx3090());
    let (out_tc, report_tc) = TcgnnSpmm::from_translated(translated)
        .execute(&mut launcher, &prob)
        .expect("kernel runs");
    let mut launcher = Launcher::new(DeviceSpec::rtx3090());
    let (out_base, report_base) = CusparseCsrSpmm
        .execute(&mut launcher, &prob)
        .expect("kernel runs");

    println!(
        "TC-GNN SpMM:   {:.4} ms simulated ({} tensor-core MMAs, bound by {})",
        report_tc.time_ms, report_tc.stats.tcu_mma_instructions, report_tc.bound_by
    );
    println!(
        "cuSPARSE SpMM: {:.4} ms simulated (bound by {})",
        report_base.time_ms, report_base.bound_by
    );
    println!(
        "speedup: {:.2}x | results agree to {:.2e}",
        report_base.time_ms / report_tc.time_ms,
        out_tc.max_abs_diff(&out_base).expect("same shape")
    );
}
