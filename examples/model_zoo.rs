//! The model zoo: GCN, GraphSAGE, GIN and AGNN on the same dataset across
//! all three backends — the "GCN acceleration benefits a broad range of
//! GNNs" claim (§6 Benchmarks), made runnable.
//!
//! ```bash
//! cargo run --release --example model_zoo
//! ```

use tc_gnn::gnn::{train_agnn, train_gcn, train_gin, train_sage, Backend, Engine, TrainConfig};
use tc_gnn::gpusim::DeviceSpec;

fn main() {
    let ds = tc_gnn::graph::datasets::spec_by_name("Pubmed")
        .expect("known dataset")
        .scaled(2)
        .materialize(42)
        .expect("synthetic dataset");
    println!(
        "dataset: Pubmed/2 ({} nodes, {} edges, {} dims)\n",
        ds.num_nodes(),
        ds.num_edges(),
        ds.spec.feat_dim
    );

    let cfg = TrainConfig::gcn_paper().with_epochs(5);
    println!(
        "{:10} {:>12} {:>12} {:>12} {:>14}",
        "model", "DGL (ms)", "PyG (ms)", "TC-GNN (ms)", "speedup v DGL"
    );
    type Runner = fn(&mut Engine, &tc_gnn::graph::Dataset, TrainConfig) -> tc_gnn::gnn::TrainResult;
    let models: [(&str, Runner); 4] = [
        ("GCN", train_gcn),
        ("GraphSAGE", train_sage),
        ("GIN", train_gin),
        ("AGNN", train_agnn),
    ];
    for (name, runner) in models {
        let mut ms = [0.0f64; 3];
        for (i, b) in Backend::all().iter().enumerate() {
            let mut eng = Engine::builder(ds.graph.clone())
                .backend(*b)
                .device(DeviceSpec::rtx3090())
                .build()
                .expect("graph is symmetric");
            let r = runner(&mut eng, &ds, cfg);
            ms[i] = r.avg_epoch_ms();
            assert!(r.loss_drop() > 0.0, "{name} on {b:?} must learn");
        }
        println!(
            "{:10} {:>12.3} {:>12.3} {:>12.3} {:>13.2}x",
            name,
            ms[0],
            ms[1],
            ms[2],
            ms[0] / ms[2]
        );
    }
}
