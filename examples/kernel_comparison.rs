//! Every SpMM kernel in the repository on one graph — the paper's Table 3 /
//! Table 5 landscape in one run.
//!
//! ```bash
//! cargo run --release --example kernel_comparison
//! ```

use tc_gnn::gpusim::{DeviceSpec, Launcher};
use tc_gnn::kernels::common::{SpmmKernel, SpmmProblem};
use tc_gnn::kernels::spmm::{
    BlockedEllSpmm, CusparseCsrSpmm, DenseGemmSpmm, GeSpmm, ScatterGatherSpmm, TcgnnSpmm,
    TritonBlockSparseSpmm, TsparseLikeSpmm,
};

fn main() {
    let g = tc_gnn::graph::gen::rmat_default(8_192, 120_000, 3).expect("generator");
    let d = 16usize;
    let x = tc_gnn::tensor::init::uniform(g.num_nodes(), d, -1.0, 1.0, 4);
    let prob = SpmmProblem::new(&g, None, &x).expect("dims match");
    println!(
        "SpMM on R-MAT: |V| = {}, |E| = {}, D = {d}  (simulated RTX 3090)\n",
        g.num_nodes(),
        g.num_edges()
    );

    let kernels: Vec<(&str, Box<dyn SpmmKernel>)> = vec![
        ("cuSPARSE CSR (scalar)", Box::new(CusparseCsrSpmm)),
        ("GE-SpMM (tuned CUDA core)", Box::new(GeSpmm)),
        ("torch-scatter (PyG)", Box::new(ScatterGatherSpmm)),
        ("dense GEMM (CUDA core)", Box::new(DenseGemmSpmm::default())),
        ("dense GEMM (TCU)", Box::new(DenseGemmSpmm::tcu())),
        (
            "Blocked-ELL bSpMM (TCU)",
            Box::new(BlockedEllSpmm::default()),
        ),
        (
            "tSparse-like (hybrid TCU)",
            Box::new(TsparseLikeSpmm::default()),
        ),
        ("Triton block-sparse (TCU)", Box::new(TritonBlockSparseSpmm)),
        ("TC-GNN (SGT + TCU)", Box::new(TcgnnSpmm::new(&g))),
    ];

    let mut reference: Option<tc_gnn::tensor::DenseMatrix> = None;
    let mut tc_time = 0.0;
    let mut results = Vec::new();
    for (name, kernel) in &kernels {
        let mut launcher = Launcher::new(DeviceSpec::rtx3090());
        match kernel.execute(&mut launcher, &prob) {
            Ok((out, report)) => {
                if let Some(r) = &reference {
                    assert!(
                        out.max_abs_diff(r).expect("same shape") < 0.05,
                        "{name} disagrees with the first kernel"
                    );
                } else {
                    reference = Some(out);
                }
                if *name == "TC-GNN (SGT + TCU)" {
                    tc_time = report.time_ms;
                }
                results.push((name.to_string(), Some(report)));
            }
            Err(e) => results.push((format!("{name} [{e}]"), None)),
        }
    }

    println!(
        "{:30} {:>10} {:>18} {:>8} {:>9}",
        "kernel", "sim ms", "bound by", "occ", "L1 hit"
    );
    for (name, report) in &results {
        match report {
            Some(r) => println!(
                "{:30} {:>10.4} {:>18} {:>7.0}% {:>8.0}%",
                name,
                r.time_ms,
                r.bound_by,
                100.0 * r.occupancy,
                100.0 * r.l1_hit_rate
            ),
            None => println!("{name:30} {:>10}", "n/a"),
        }
    }
    if tc_time > 0.0 {
        println!("\nspeedups over TC-GNN's {tc_time:.4} ms:");
        for (name, report) in &results {
            if let Some(r) = report {
                println!("  {:30} {:.2}x", name, r.time_ms / tc_time);
            }
        }
    }
}
