//! Anatomy of a Sparse Graph Translation: what SGT does to different graph
//! structures (the paper's Figure 4 / Figure 7a story, interactive).
//!
//! ```bash
//! cargo run --release --example sgt_analysis
//! ```

use tc_gnn::graph::stats::{graph_stats, neighbor_sharing_ratio};
use tc_gnn::sgt::{census, overhead, Sgt};

fn main() {
    let n = 16_384;
    let e = 160_000;
    let graphs = [
        (
            "uniform (Erdős–Rényi)",
            tc_gnn::graph::gen::erdos_renyi(n, e, 1).expect("generator"),
        ),
        (
            "power-law (R-MAT / Type III)",
            tc_gnn::graph::gen::rmat_default(n, e, 1).expect("generator"),
        ),
        (
            "citation (Type I)",
            tc_gnn::graph::gen::citation(n, e, 1).expect("generator"),
        ),
        (
            "communities (Type II)",
            tc_gnn::graph::gen::community(n, e, 16, 48, 1).expect("generator"),
        ),
    ];

    println!(
        "{:28} {:>8} {:>8} {:>10} {:>10} {:>9} {:>9}",
        "graph", "edges", "gini", "sharing", "blocks-", "blocks+", "reduction"
    );
    for (name, g) in &graphs {
        let s = graph_stats(g);
        let c = census(g);
        let sharing = neighbor_sharing_ratio(g, 16);
        println!(
            "{:28} {:>8} {:>8.2} {:>10.2} {:>10} {:>9} {:>8.1}%",
            name,
            s.num_edges,
            s.degree_gini,
            sharing,
            c.blocks_without_sgt,
            c.blocks_with_sgt,
            c.reduction_pct()
        );
    }

    println!("\nTranslation detail for the R-MAT graph:");
    let g = &graphs[1].1;
    let t = Sgt::builder().translate(g).unwrap();
    let (_, wall_ms) = overhead::measure_ms(g);
    println!("  row windows:        {}", t.num_row_windows);
    println!("  TCU blocks:         {}", t.total_tc_blocks());
    println!("  SDDMM blocks:       {}", t.total_sddmm_blocks());
    println!("  metadata size:      {} KiB", t.memory_bytes() / 1024);
    println!("  wall-clock (host):  {:.2} ms", wall_ms);
    println!("  modeled (ref host): {:.2} ms", overhead::model_ms(g));
    let dense = t
        .win_partition
        .iter()
        .zip(&t.win_unique)
        .filter(|&(&b, _)| b > 0)
        .map(|(&b, &u)| u as f64 / (b as f64 * 8.0))
        .sum::<f64>()
        / t.win_partition.iter().filter(|&&b| b > 0).count().max(1) as f64;
    println!(
        "  avg block column occupancy after SGT: {:.0}%",
        100.0 * dense
    );
}
