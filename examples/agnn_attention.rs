//! Attention GNN (AGNN) training — the SDDMM-heavy workload: edge
//! attention from cosine similarities, row softmax, weighted aggregation.
//!
//! ```bash
//! cargo run --release --example agnn_attention
//! ```

use tc_gnn::gnn::{train_agnn, Backend, Engine, TrainConfig};
use tc_gnn::gpusim::DeviceSpec;
use tc_gnn::graph::datasets::{DatasetSpec, GraphClass};

fn main() {
    // A blog-catalog-like graph: dense, irregular, attention-friendly.
    let spec = DatasetSpec {
        name: "mini-blog",
        class: GraphClass::TypeIII,
        num_nodes: 8_000,
        num_edges: 180_000,
        feat_dim: 128,
        num_classes: 12,
    };
    let ds = spec.materialize(7).expect("synthetic dataset");
    println!(
        "dataset: {} nodes, {} edges, avg degree {:.1}\n",
        ds.num_nodes(),
        ds.num_edges(),
        ds.num_edges() as f64 / ds.num_nodes() as f64
    );

    let cfg = TrainConfig::agnn_paper().with_epochs(10);
    for backend in Backend::all() {
        let mut eng = Engine::builder(ds.graph.clone())
            .backend(backend)
            .device(DeviceSpec::rtx3090())
            .build()
            .expect("graph is symmetric");
        let r = train_agnn(&mut eng, &ds, cfg);
        let c = r.avg_epoch_cost();
        println!(
            "{:8}  epoch {:.3} ms | sparse attention pipeline {:.3} ms ({:.0}%) | final acc {:.1}%",
            r.backend,
            r.avg_epoch_ms(),
            c.aggregation_ms,
            100.0 * r.aggregation_fraction(),
            100.0 * r.final_accuracy(),
        );
    }

    println!("\nThe attention pipeline per layer: SDDMM (cosine logits) -> edge");
    println!("softmax -> value-weighted SpMM; TC-GNN runs the first and last on");
    println!("tensor cores over one shared SGT translation.");
}
