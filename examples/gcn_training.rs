//! End-to-end GCN training on a synthetic Cora, comparing all three
//! backends — a miniature of the paper's Figure 6 workflow.
//!
//! ```bash
//! cargo run --release --example gcn_training
//! ```

use tc_gnn::gnn::{train_gcn, Backend, Engine, TrainConfig};
use tc_gnn::gpusim::DeviceSpec;

fn main() {
    let spec = tc_gnn::graph::datasets::spec_by_name("Cora").expect("known dataset");
    let ds = spec.materialize(42).expect("synthetic dataset");
    println!(
        "dataset: {} ({} nodes, {} edges, {} feature dims, {} classes)\n",
        spec.name,
        ds.num_nodes(),
        ds.num_edges(),
        spec.feat_dim,
        spec.num_classes
    );

    let cfg = TrainConfig::gcn_paper().with_epochs(20);
    let mut baseline_ms = 0.0;
    for backend in Backend::all() {
        let mut eng = Engine::builder(ds.graph.clone())
            .backend(backend)
            .device(DeviceSpec::rtx3090())
            .build()
            .expect("graph is symmetric");
        let r = train_gcn(&mut eng, &ds, cfg);
        if backend == Backend::DglLike {
            baseline_ms = r.avg_epoch_ms();
        }
        let c = r.avg_epoch_cost();
        println!(
            "{:8}  epoch {:.3} ms (aggregation {:.3}, update {:.3}, other {:.3})",
            r.backend,
            r.avg_epoch_ms(),
            c.aggregation_ms,
            c.update_ms,
            c.other_ms
        );
        println!(
            "          loss {:.3} -> {:.3}, train accuracy {:.1}%, speedup over DGL {:.2}x",
            r.epochs.first().expect("ran").loss,
            r.epochs.last().expect("ran").loss,
            100.0 * r.final_accuracy(),
            baseline_ms / r.avg_epoch_ms()
        );
        if backend == Backend::TcGnn {
            println!(
                "          one-time SGT preprocessing: {:.3} ms ({:.2}% of this 20-epoch run)",
                r.preprocessing_ms,
                100.0 * r.preprocessing_ms / r.total_ms()
            );
        }
    }
}
